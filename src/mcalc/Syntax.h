//===- Syntax.h - The M language of Section 6.2 (Figure 5) ------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for M, the paper's A-normal-form target language
/// (Figure 5):
///
/// \code
///   y ::= p | i                       pointer / integer variables
///   t ::= t y | t n | λy.t | y | let p = t1 in t2
///       | let! y = t1 in t2 | case t1 of I#[y] → t2 | error
///       | I#[y] | I#[n] | n
///   w ::= λy.t | I#[n] | n            values
/// \endcode
///
/// M is representation-monomorphic: every variable is *either* a pointer
/// variable (register class P) or an integer variable (register class I) —
/// the two metavariable sorts of the paper. Functions are called only on
/// variables or literals (ANF), so every data movement has a known width.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_MCALC_SYNTAX_H
#define LEVITY_MCALC_SYNTAX_H

#include "support/Arena.h"
#include "support/Symbol.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>

namespace levity {
namespace mcalc {

/// The two sorts of M variables: each corresponds to a machine register
/// class, so substitution always moves data of known width (Section 6.2).
enum class VarSort : uint8_t {
  Ptr, ///< p — points to a heap object (thunk or value).
  Int  ///< i — holds an unboxed machine integer.
};

/// y — a sorted variable.
struct MVar {
  Symbol Name;
  VarSort Sort = VarSort::Ptr;

  bool isPtr() const { return Sort == VarSort::Ptr; }
  bool isInt() const { return Sort == VarSort::Int; }

  friend bool operator==(const MVar &A, const MVar &B) {
    return A.Name == B.Name && A.Sort == B.Sort;
  }
  friend bool operator!=(const MVar &A, const MVar &B) { return !(A == B); }

  std::string str() const { return std::string(Name.str()); }
};

/// t — an M term.
class Term {
public:
  enum class TermKind : uint8_t {
    AppVar, ///< t y
    AppLit, ///< t n
    Lam,    ///< λy.t
    Var,    ///< y
    Let,    ///< let p = t1 in t2   (lazy: allocates a thunk)
    LetBang,///< let! y = t1 in t2  (strict: evaluates t1 first)
    Case,   ///< case t1 of I#[y] → t2
    Error,  ///< error
    ConVar, ///< I#[y]
    ConLit, ///< I#[n]
    Lit,    ///< n
    Prim    ///< a1 ⊕# a2 over integer atoms (variables or literals)
  };

  TermKind kind() const { return Kind; }

  std::string str() const;

protected:
  explicit Term(TermKind Kind) : Kind(Kind) {}

private:
  TermKind Kind;
};

class AppVarTerm : public Term {
public:
  AppVarTerm(const Term *Fn, MVar Arg)
      : Term(TermKind::AppVar), Fn(Fn), Arg(Arg) {}

  const Term *fn() const { return Fn; }
  MVar arg() const { return Arg; }

  static bool classof(const Term *T) { return T->kind() == TermKind::AppVar; }

private:
  const Term *Fn;
  MVar Arg;
};

class AppLitTerm : public Term {
public:
  AppLitTerm(const Term *Fn, int64_t Lit)
      : Term(TermKind::AppLit), Fn(Fn), Lit(Lit) {}

  const Term *fn() const { return Fn; }
  int64_t lit() const { return Lit; }

  static bool classof(const Term *T) { return T->kind() == TermKind::AppLit; }

private:
  const Term *Fn;
  int64_t Lit;
};

class LamTerm : public Term {
public:
  LamTerm(MVar Param, const Term *Body)
      : Term(TermKind::Lam), Param(Param), Body(Body) {}

  MVar param() const { return Param; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Lam; }

private:
  MVar Param;
  const Term *Body;
};

class VarTerm : public Term {
public:
  explicit VarTerm(MVar V) : Term(TermKind::Var), V(V) {}

  MVar var() const { return V; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Var; }

private:
  MVar V;
};

/// let p = t1 in t2 — lazy; the machine allocates a thunk for t1.
class LetTerm : public Term {
public:
  LetTerm(MVar Binder, const Term *Rhs, const Term *Body)
      : Term(TermKind::Let), Binder(Binder), Rhs(Rhs), Body(Body) {
    assert(Binder.isPtr() && "lazy let binds a pointer variable");
  }

  MVar binder() const { return Binder; }
  const Term *rhs() const { return Rhs; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Let; }

private:
  MVar Binder;
  const Term *Rhs;
  const Term *Body;
};

/// let! y = t1 in t2 — strict; the machine evaluates t1 before t2.
class LetBangTerm : public Term {
public:
  LetBangTerm(MVar Binder, const Term *Rhs, const Term *Body)
      : Term(TermKind::LetBang), Binder(Binder), Rhs(Rhs), Body(Body) {}

  MVar binder() const { return Binder; }
  const Term *rhs() const { return Rhs; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) {
    return T->kind() == TermKind::LetBang;
  }

private:
  MVar Binder;
  const Term *Rhs;
  const Term *Body;
};

class CaseTerm : public Term {
public:
  CaseTerm(const Term *Scrut, MVar Binder, const Term *Body)
      : Term(TermKind::Case), Scrut(Scrut), Binder(Binder), Body(Body) {}

  const Term *scrut() const { return Scrut; }
  MVar binder() const { return Binder; }
  const Term *body() const { return Body; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Case; }

private:
  const Term *Scrut;
  MVar Binder;
  const Term *Body;
};

class ErrorTerm : public Term {
public:
  ErrorTerm() : Term(TermKind::Error) {}
  static bool classof(const Term *T) { return T->kind() == TermKind::Error; }
};

class ConVarTerm : public Term {
public:
  explicit ConVarTerm(MVar V) : Term(TermKind::ConVar), V(V) {}

  MVar var() const { return V; }

  static bool classof(const Term *T) { return T->kind() == TermKind::ConVar; }

private:
  MVar V;
};

class ConLitTerm : public Term {
public:
  explicit ConLitTerm(int64_t Value) : Term(TermKind::ConLit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Term *T) { return T->kind() == TermKind::ConLit; }

private:
  int64_t Value;
};

class LitTerm : public Term {
public:
  explicit LitTerm(int64_t Value) : Term(TermKind::Lit), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Lit; }

private:
  int64_t Value;
};

/// ⊕# — binary Int# arithmetic, mirroring lcalc::LPrim. Operands are
/// restricted to *atoms* (integer variables or literals) so the ANF
/// discipline — every data movement has a known width — is preserved.
enum class MPrim : uint8_t { Add, Sub, Mul };

std::string_view mPrimName(MPrim Op);
int64_t evalMPrim(MPrim Op, int64_t Lhs, int64_t Rhs);

/// An integer-register atom: i or n. ILET/IPOP substitution turns the
/// variable form into the literal form.
struct MAtom {
  bool IsLit = false;
  MVar Var;        ///< Integer variable when !IsLit.
  int64_t Lit = 0; ///< Literal payload when IsLit.

  static MAtom var(MVar V) {
    assert(V.isInt() && "primop atoms live in integer registers");
    MAtom A;
    A.Var = V;
    return A;
  }
  static MAtom lit(int64_t N) {
    MAtom A;
    A.IsLit = true;
    A.Lit = N;
    return A;
  }

  std::string str() const {
    return IsLit ? std::to_string(Lit) : Var.str();
  }
};

/// a1 ⊕# a2 — reducible once both atoms are literals (rule PRIM).
class PrimTerm : public Term {
public:
  PrimTerm(MPrim Op, MAtom Lhs, MAtom Rhs)
      : Term(TermKind::Prim), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  MPrim op() const { return Op; }
  MAtom lhs() const { return Lhs; }
  MAtom rhs() const { return Rhs; }

  static bool classof(const Term *T) { return T->kind() == TermKind::Prim; }

private:
  MPrim Op;
  MAtom Lhs;
  MAtom Rhs;
};

template <typename To, typename From> bool isa(const From *Node) {
  return To::classof(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast to incompatible node kind");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

/// Owns all M terms; the only way to make nodes.
class MContext {
public:
  MContext() = default;
  MContext(const MContext &) = delete;
  MContext &operator=(const MContext &) = delete;

  SymbolTable &symbols() { return Symbols; }

  /// Makes a fresh pointer variable (p0, p1, ...).
  MVar freshPtr() {
    return {Symbols.intern("p" + std::to_string(Counter++)), VarSort::Ptr};
  }
  /// Makes a fresh integer variable (i0, i1, ...).
  MVar freshInt() {
    return {Symbols.intern("i" + std::to_string(Counter++)), VarSort::Int};
  }
  /// Makes a fresh variable of the same sort as \p Like.
  MVar freshLike(MVar Like) {
    return Like.isPtr() ? freshPtr() : freshInt();
  }

  const Term *appVar(const Term *Fn, MVar Arg) {
    return Mem.create<AppVarTerm>(Fn, Arg);
  }
  const Term *appLit(const Term *Fn, int64_t Lit) {
    return Mem.create<AppLitTerm>(Fn, Lit);
  }
  const Term *lam(MVar Param, const Term *Body) {
    return Mem.create<LamTerm>(Param, Body);
  }
  const Term *var(MVar V) { return Mem.create<VarTerm>(V); }
  const Term *let(MVar Binder, const Term *Rhs, const Term *Body) {
    return Mem.create<LetTerm>(Binder, Rhs, Body);
  }
  const Term *letBang(MVar Binder, const Term *Rhs, const Term *Body) {
    return Mem.create<LetBangTerm>(Binder, Rhs, Body);
  }
  const Term *caseOf(const Term *Scrut, MVar Binder, const Term *Body) {
    return Mem.create<CaseTerm>(Scrut, Binder, Body);
  }
  const Term *error() { return Mem.create<ErrorTerm>(); }
  const Term *conVar(MVar V) { return Mem.create<ConVarTerm>(V); }
  const Term *conLit(int64_t Value) { return Mem.create<ConLitTerm>(Value); }
  const Term *lit(int64_t Value) { return Mem.create<LitTerm>(Value); }
  const Term *prim(MPrim Op, MAtom Lhs, MAtom Rhs) {
    return Mem.create<PrimTerm>(Op, Lhs, Rhs);
  }

  Arena &arena() { return Mem; }

private:
  Arena Mem;
  SymbolTable Symbols;
  /// Atomic: concurrent Machine runs share this name supply.
  std::atomic<uint64_t> Counter{0};
};

/// \returns true for values w ::= λy.t | I#[n] | n (Figure 5).
bool isValue(const Term *T);

/// Capture-avoiding t[Replacement/Var] where the replacement is a variable
/// of the same sort (PPOP). Substituting into I#[y] keeps the form.
const Term *substVar(MContext &Ctx, const Term *T, MVar Var, MVar
                     Replacement);

/// Capture-avoiding t[n/i] where i is an integer variable (IPOP, ILET,
/// IMAT). Substituting into I#[i] yields I#[n]; into `t i` yields `t n`.
const Term *substLit(MContext &Ctx, const Term *T, MVar Var, int64_t Lit);

} // namespace mcalc
} // namespace levity

#endif // LEVITY_MCALC_SYNTAX_H
