//===- Machine.h - The M abstract machine (Figure 6) ------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The operational semantics of M: machine states ⟨t; S; H⟩ with an
/// explicit stack and heap, "quite close to how a concrete machine would
/// behave". Implements every rule of Figure 6 (PAPP, IAPP, VAL, EVAL, LET,
/// SLET, CASE, ERR, PPOP, IPOP, FCE, ILET, IMAT), including thunk sharing:
/// EVAL black-holes a thunk under evaluation and FCE writes the value back.
/// The widened executable fragment adds the analogous double-register
/// rules (DAPP, DPOP, DLET), the IF0 branch, RECLET — the heap-tied
/// knot that makes recursion (L's fix) runnable: the allocated thunk's
/// stored body references its own fresh heap address — and the
/// tag-dispatch pair SWITCH/SWITCHk: SWITCH pushes the alternative
/// table and evaluates the scrutinee; SWITCHk selects the alternative
/// matching the value's constructor tag (or Int#/Double# literal) and
/// binds the constructor's field atoms, falling back to the default
/// alternative when no pattern matches.
///
/// The machine is instrumented with cost counters (heap allocations, thunk
/// forces/updates, substitution steps) used by the benchmark harnesses to
/// reproduce the paper's boxed-versus-unboxed cost claims (Section 2.1).
///
/// One mechanical liberty: the paper assumes distinct binder names; an
/// executable machine must allocate, so LET freshens its binder into a new
/// heap address (standard heap allocation). All other rules are verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_MCALC_MACHINE_H
#define LEVITY_MCALC_MACHINE_H

#include "mcalc/Syntax.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace levity {
namespace mcalc {

/// S — one stack frame (Figure 5's stack grammar, plus the double and
/// branch frames of the widened fragment).
struct Frame {
  enum class FrameKind : uint8_t {
    Force,  ///< Force(p): update p with the value being computed.
    AppPtr, ///< App(p): pending pointer argument.
    AppLit, ///< App(n): pending integer argument.
    AppDbl, ///< App(d): pending double argument.
    Let,    ///< Let(y, t): strict-let continuation.
    Case,   ///< Case(y, t): case continuation.
    If0,    ///< If0(t2, t3): branch continuation.
    Switch  ///< Switch(alts, def): tag-dispatch continuation.
  };

  FrameKind Kind;
  MVar Var;                   ///< Force/AppPtr/Let/Case variable.
  int64_t Lit = 0;            ///< AppLit payload.
  double DblLit = 0;          ///< AppDbl payload.
  const Term *Body = nullptr; ///< Let/Case/If0-then continuation body.
  const Term *Body2 = nullptr; ///< If0-else continuation body.
  const SwitchTerm *Sw = nullptr; ///< Switch: the alternative table.
};

/// Cost counters. Deterministic for a given program, so benchmarks can
/// report machine-cost shapes independent of wall-clock noise.
struct MachineStats {
  uint64_t Steps = 0;        ///< Total transitions.
  uint64_t Allocations = 0;  ///< LET rule firings (thunks allocated).
  uint64_t ThunkEvals = 0;   ///< EVAL firings (thunks entered).
  uint64_t ThunkUpdates = 0; ///< FCE firings (values written back).
  uint64_t VarLookups = 0;   ///< VAL firings (heap value hits).
  uint64_t StrictLets = 0;   ///< SLET firings.
  uint64_t Cases = 0;        ///< CASE firings.
  uint64_t BetaPtr = 0;      ///< PPOP firings (pointer calls).
  uint64_t BetaInt = 0;      ///< IPOP firings (integer-register calls).
  uint64_t BetaDbl = 0;      ///< DPOP firings (double-register calls).
  uint64_t Prims = 0;        ///< PRIM firings (unboxed arithmetic).
  uint64_t Branches = 0;     ///< IF0 + SWITCHk firings (branches taken).
  uint64_t Knots = 0;        ///< RECLET firings (recursive knots tied).
  uint64_t Switches = 0;     ///< SWITCH firings (scrutinees dispatched).
  uint64_t ConAllocs = 0;    ///< Constructor nodes reaching the heap
                             ///< (LET/RECLET of a CON right-hand side,
                             ///< plus FCE write-backs of CON values).
  size_t MaxStackDepth = 0;
  size_t MaxHeapSize = 0;
  /// Peak term-arena bytes this run allocated in its MContext (the delta
  /// of Arena::bytesUsed across the run — term arenas are monotone
  /// within one run, so the end-of-run delta *is* the peak). Measures
  /// substitution + heap-cell churn in bytes; MaxHeapSize is the same
  /// quantity in cells.
  size_t PeakHeapBytes = 0;
};

/// Final outcome of a run.
enum class MachineOutcome : uint8_t {
  Value,    ///< Reached ⟨w; ∅; H⟩.
  Bottom,   ///< ERR fired.
  Stuck,    ///< No rule applies (ill-sorted program).
  OutOfFuel ///< Step budget exhausted.
};

/// A heap snapshot: pointer-variable name to stored term.
using HeapMap = std::unordered_map<Symbol, const Term *, SymbolHash>;

struct MachineResult {
  MachineOutcome Status;
  const Term *Value = nullptr; ///< Final value when Status == Value.
  std::string StuckReason;
  /// The error term's diagnostic message when Status == Bottom (empty if
  /// the error carried none).
  std::string ErrorMessage;
  MachineStats Stats;
  /// The heap at the end of the run, restricted (on the Value outcome)
  /// to cells transitively reachable from Value — function values may
  /// capture pointers into it, so observational probing must resume
  /// from this heap, but cells the result cannot name are dropped
  /// rather than kept alive by the snapshot. Non-Value outcomes keep
  /// the whole heap (there is no result to trace from, and stuck-state
  /// debugging wants the full picture).
  HeapMap FinalHeap;
};

/// Executes M programs. One Machine may run many programs; each run has
/// fresh stack/heap but shares the MContext's fresh-name supply.
class Machine {
public:
  explicit Machine(MContext &Ctx) : Ctx(Ctx) {}

  /// Runs ⟨T; ∅; ∅⟩ to completion (or \p MaxSteps).
  MachineResult run(const Term *T, uint64_t MaxSteps = 10000000);

  /// Runs with a pre-populated heap (used by the observational-equivalence
  /// oracle to resume from an earlier run's heap and to pass boxed
  /// arguments to function values).
  MachineResult runWithHeap(const Term *T, HeapMap InitialHeap,
                            uint64_t MaxSteps = 10000000);

private:
  MContext &Ctx;
};

} // namespace mcalc
} // namespace levity

#endif // LEVITY_MCALC_MACHINE_H
