//===- Vm.h - Threaded interpreter for bytecode Modules ---------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual machine executing bytecode::Module code. One Vm is owned
/// per driver::Executor (like the tree interpreter): its stacks and heap
/// are reused across runs but never shared across threads. Modules are
/// immutable and freely shared.
///
/// Values are rep-typed Slots — the paper's three register classes made
/// literal: an Int# payload, a Double# payload, or a pointer into the
/// run's object heap (thunks, closures, CON nodes, the compact I# box).
/// The machine's observable behavior is reproduced exactly: same
/// value/bottom/stuck/out-of-fuel classification, same bottom messages,
/// laziness with black-holing update-on-force, and the same stuck
/// conditions (calling-convention mismatches, let!/case/if0/switch
/// discipline, division guards).
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_BYTECODE_VM_H
#define LEVITY_BYTECODE_VM_H

#include "bytecode/Bytecode.h"

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace levity {
namespace bytecode {

struct Obj;

/// One rep-typed value: the paper's pointer / integer-register /
/// double-register trichotomy. Kind holds a mcalc::VarSort value.
struct Slot {
  uint8_t Kind = static_cast<uint8_t>(mcalc::VarSort::Int);
  union {
    int64_t I;
    double D;
    Obj *P;
  };

  Slot() : I(0) {}
  static Slot ofInt(int64_t V) {
    Slot S;
    S.Kind = static_cast<uint8_t>(mcalc::VarSort::Int);
    S.I = V;
    return S;
  }
  static Slot ofDbl(double V) {
    Slot S;
    S.Kind = static_cast<uint8_t>(mcalc::VarSort::Dbl);
    S.D = V;
    return S;
  }
  static Slot ofPtr(Obj *O) {
    Slot S;
    S.Kind = static_cast<uint8_t>(mcalc::VarSort::Ptr);
    S.P = O;
    return S;
  }
  bool isPtr() const { return Kind == static_cast<uint8_t>(mcalc::VarSort::Ptr); }
  bool isInt() const { return Kind == static_cast<uint8_t>(mcalc::VarSort::Int); }
  bool isDbl() const { return Kind == static_cast<uint8_t>(mcalc::VarSort::Dbl); }
};

/// One heap object. Thunks black-hole while evaluating (a re-entrant
/// force is the machine's dangling-pointer stuck) and become
/// indirections once updated.
struct Obj {
  enum class K : uint8_t {
    Thunk,     ///< Unevaluated: proto + captured environment.
    Blackhole, ///< Thunk currently under evaluation.
    Ind,       ///< Updated thunk: Val holds the result.
    Closure,   ///< λ value: proto + captured environment.
    Con,       ///< CON node (IsBox: the compact I#[n]).
    Pap        ///< Partial application: Val = the closure, Fields = args.
  };
  K Kind = K::Thunk;
  bool IsBox = false;
  uint32_t Tag = 0;
  uint32_t ProtoIdx = 0;
  Slot Val;                 ///< Ind result, or the Pap's closure.
  std::vector<Slot> Fields; ///< Captures, CON fields, or Pap args.
};

/// Ledger counters mirroring mcalc::Machine::Stats, plus VM-specific
/// high-water marks. Allocations counts every heap object (thunks,
/// closures, CON nodes, I# boxes); ConAllocs the CON/box subset.
struct VmStats {
  uint64_t Steps = 0;        ///< Instructions dispatched (the fuel unit).
  uint64_t Allocations = 0;  ///< Heap objects created.
  uint64_t ThunkEvals = 0;   ///< Thunks entered (EVAL).
  uint64_t ThunkUpdates = 0; ///< Thunks overwritten with values (FCE).
  uint64_t VarLookups = 0;   ///< Forced pointer reads hitting a value.
  uint64_t Calls = 0;        ///< Frame-pushing calls (BETA).
  uint64_t TailCalls = 0;    ///< Frame-replacing calls.
  uint64_t Prims = 0;        ///< Primops applied (PRIM).
  uint64_t Branches = 0;     ///< if0 decisions (IF0).
  uint64_t Switches = 0;     ///< switch dispatches (SWITCHk).
  uint64_t ConAllocs = 0;    ///< CON nodes and I# boxes allocated.
  uint64_t Knots = 0;        ///< letrec self-references tied (RECLET).
  uint64_t UncurriedCalls = 0; ///< Multi-arg CallN/TailCallN dispatches.
  uint64_t PapAllocs = 0;      ///< Partial-application objects built.
  uint64_t FusedOps = 0;       ///< Superinstructions executed.
  uint64_t MaxFrameDepth = 0;  ///< Deepest call stack seen.
  uint64_t MaxHeapObjects = 0; ///< Most live heap objects seen.
  /// Peak bytes held by live heap objects (object headers plus their
  /// field/capture slots) — MaxHeapObjects weighted into bytes, sampled
  /// at every allocation.
  uint64_t PeakHeapBytes = 0;
};

/// Outcome of one run, mirroring the machine's observable surface.
struct VmResult {
  enum class Outcome : uint8_t { Value, Bottom, Stuck, OutOfFuel };
  Outcome Out = Outcome::Stuck;
  std::string ErrorMessage; ///< Bottom's message ("" for bare error).
  std::string StuckReason;  ///< Why execution got stuck.
  std::string Display;      ///< Rendering of the final value.
  std::optional<int64_t> IntValue;  ///< n or I#[n] results.
  std::optional<double> DoubleValue; ///< d results.
  VmStats Stats;

  bool ok() const { return Out == Outcome::Value; }
};

/// The interpreter. Not thread-safe: one Vm per Executor, like the tree
/// interpreter. run() expects a Module from compile() or one that passed
/// validate() — the dispatch loop trusts the verifier and does not
/// re-check operands.
class Vm {
public:
  VmResult run(const Module &M, uint64_t MaxSteps);

private:
  struct FrameRec {
    const Proto *P = nullptr;
    uint32_t ReturnIP = 0; ///< Caller code index to resume.
    uint32_t LBase = 0;    ///< First frame slot in Locals.
    uint32_t OBase = 0;    ///< Operand-stack floor for this frame.
    Obj *Update = nullptr; ///< Thunk to update on return, if any.
    /// Over-application surplus: this many operand slots directly below
    /// OBase hold arguments the frame's return value must be applied to
    /// (first-applied deepest) before the frame really returns.
    uint32_t PendArgs = 0;
  };

  // Reused across runs to amortize allocation; cleared on entry.
  std::vector<Slot> Opers;
  std::vector<Slot> Locals;
  std::vector<FrameRec> Frames;
  std::vector<Slot> ApBuf; ///< Scratch for tail-apply argument shuffles.
  /// Reference-stable object storage, recycled as a region: run() rewinds
  /// HeapUsed to 0 instead of clearing the deque, so steady-state runs
  /// reuse already-constructed Objs (and their Fields capacity) with zero
  /// per-object malloc churn. Heap only grows when a run's live-object
  /// count exceeds every previous run's.
  std::deque<Obj> Heap;
  size_t HeapUsed = 0; ///< Objects of Heap in use by the current run.
};

} // namespace bytecode
} // namespace levity

#endif // LEVITY_BYTECODE_VM_H
