//===- Compile.cpp - M terms to flat bytecode -----------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Compiles closed M terms to the flat Module format of Bytecode.h, and
// validates Modules decoded from untrusted bytes.
//
// The compilation story is the paper's Section 6.2 invariant made
// operational a second time: because every M binder carries exactly one
// VarSort, a term can be frame-allocated — every variable becomes a
// fixed slot of known register class, every atom movement a known-width
// copy — with no runtime tagging decisions left. The term machine
// re-substitutes on every beta step; here each lambda body, thunk
// right-hand side, and the entry term becomes a Proto compiled once.
//
// Laziness is preserved exactly: `let` right-hand sides become thunk
// protos (captures copied at allocation, body run on first force),
// except for syntactic values (λ, CON, I#[n], n, d) which the machine
// itself treats as allocate-a-value (rule VAL on lookup) and a bare
// variable right-hand side, which aliases the existing slot. `letrec`
// writes the destination slot before copying captures, so the knot's
// self-reference sees its own cell — the RECLET rule.
//
// The compiler refuses what it cannot prove: a free variable, nesting
// past MaxCompileDepth, or a frame over MaxFrameSlots yields a pinned
// "bytecode backend: ..." diagnostic and the driver falls back to the
// term-graph machine. It never emits code whose behavior could diverge
// from the machine's.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <unordered_set>

using namespace levity;
using namespace levity::bytecode;
using mcalc::MAlt;
using mcalc::MAtom;
using mcalc::MVar;
using mcalc::Term;
using mcalc::VarSort;
using mcalc::cast;

namespace {

constexpr const char *DiagPrefix = "bytecode backend: ";

/// The whole compilation state for one compile() call.
class Compiler {
public:
  Result<std::shared_ptr<const Module>> run(const Term *Entry);

private:
  /// One name's frame slot and register class.
  struct Binding {
    uint32_t Slot = 0;
    VarSort Sort = VarSort::Ptr;
  };

  /// Build state of one proto: its code (jump targets proto-relative
  /// until link), its frame-slot counter, and the in-scope names.
  struct ProtoCtx {
    uint32_t Index = 0;
    std::vector<Instr> Code;
    uint32_t NumLocals = 0;
    /// Innermost binding last — shadowing is a push/pop.
    std::unordered_map<Symbol, std::vector<Binding>, SymbolHash> Scope;
  };

  Module Mod;
  std::vector<std::unique_ptr<ProtoCtx>> Ctxs; ///< Parallel to Mod.Protos.
  std::vector<uint32_t> TableOwner; ///< Proto index per Mod.Tables entry.
  std::unordered_map<int64_t, uint32_t> IntIdx;
  std::unordered_map<uint64_t, uint32_t> DblIdx;
  std::unordered_map<std::string, uint32_t> StrIdx;
  std::string Diag;
  unsigned Depth = 0;

  bool fail(std::string Msg) {
    if (Diag.empty())
      Diag = DiagPrefix + std::move(Msg);
    return false;
  }

  size_t emit(ProtoCtx &P, Op Code, uint8_t A = 0, uint16_t B = 0,
              int32_t C = 0) {
    P.Code.push_back({Code, A, B, C});
    return P.Code.size() - 1;
  }

  uint32_t intPool(int64_t V) {
    auto [It, New] = IntIdx.try_emplace(V, Mod.IntPool.size());
    if (New)
      Mod.IntPool.push_back(V);
    return It->second;
  }
  uint32_t dblPool(double V) {
    auto [It, New] =
        DblIdx.try_emplace(std::bit_cast<uint64_t>(V), Mod.DblPool.size());
    if (New)
      Mod.DblPool.push_back(V);
    return It->second;
  }
  uint32_t strPool(std::string V) {
    auto [It, New] = StrIdx.try_emplace(V, Mod.StrPool.size());
    if (New)
      Mod.StrPool.push_back(std::move(V));
    return It->second;
  }

  bool newLocals(ProtoCtx &P, uint32_t Count, uint32_t &Base) {
    if (P.NumLocals + Count > MaxFrameSlots)
      return fail("frame needs more than " + std::to_string(MaxFrameSlots) +
                  " slots");
    Base = P.NumLocals;
    P.NumLocals += Count;
    return true;
  }

  void bind(ProtoCtx &P, MVar V, uint32_t Slot) {
    P.Scope[V.Name].push_back({Slot, V.Sort});
  }
  void unbind(ProtoCtx &P, MVar V) {
    auto It = P.Scope.find(V.Name);
    assert(It != P.Scope.end() && !It->second.empty() && "unbalanced unbind");
    It->second.pop_back();
    if (It->second.empty())
      P.Scope.erase(It);
  }
  bool lookup(ProtoCtx &P, MVar V, Binding &Out) {
    auto It = P.Scope.find(V.Name);
    if (It == P.Scope.end() || It->second.empty())
      return fail("free variable '" + V.str() + "'");
    Out = It->second.back();
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Free variables (capture lists), in first-occurrence order.
  //===--------------------------------------------------------------------===//

  struct FvState {
    std::unordered_map<Symbol, int, SymbolHash> Bound;
    std::unordered_set<Symbol, SymbolHash> Seen;
    std::vector<MVar> Out;
  };

  static void fvVisit(FvState &St, MVar V) {
    auto It = St.Bound.find(V.Name);
    if (It != St.Bound.end() && It->second > 0)
      return;
    if (St.Seen.insert(V.Name).second)
      St.Out.push_back(V);
  }

  bool fvRec(FvState &St, const Term *T, unsigned D) {
    if (D > MaxCompileDepth)
      return fail("term nests deeper than the bytecode compiler supports");
    using K = Term::TermKind;
    switch (T->kind()) {
    case K::AppVar: {
      const auto *A = cast<mcalc::AppVarTerm>(T);
      if (!fvRec(St, A->fn(), D + 1))
        return false;
      fvVisit(St, A->arg());
      return true;
    }
    case K::AppLit:
      return fvRec(St, cast<mcalc::AppLitTerm>(T)->fn(), D + 1);
    case K::AppDbl:
      return fvRec(St, cast<mcalc::AppDblTerm>(T)->fn(), D + 1);
    case K::Lam: {
      const auto *L = cast<mcalc::LamTerm>(T);
      ++St.Bound[L->param().Name];
      bool Ok = fvRec(St, L->body(), D + 1);
      --St.Bound[L->param().Name];
      return Ok;
    }
    case K::Var:
      fvVisit(St, cast<mcalc::VarTerm>(T)->var());
      return true;
    case K::Let: {
      const auto *L = cast<mcalc::LetTerm>(T);
      if (!fvRec(St, L->rhs(), D + 1))
        return false;
      ++St.Bound[L->binder().Name];
      bool Ok = fvRec(St, L->body(), D + 1);
      --St.Bound[L->binder().Name];
      return Ok;
    }
    case K::LetBang: {
      const auto *L = cast<mcalc::LetBangTerm>(T);
      if (!fvRec(St, L->rhs(), D + 1))
        return false;
      ++St.Bound[L->binder().Name];
      bool Ok = fvRec(St, L->body(), D + 1);
      --St.Bound[L->binder().Name];
      return Ok;
    }
    case K::LetRec: {
      const auto *L = cast<mcalc::LetRecTerm>(T);
      ++St.Bound[L->binder().Name];
      bool Ok = fvRec(St, L->rhs(), D + 1) && fvRec(St, L->body(), D + 1);
      --St.Bound[L->binder().Name];
      return Ok;
    }
    case K::Case: {
      const auto *C = cast<mcalc::CaseTerm>(T);
      if (!fvRec(St, C->scrut(), D + 1))
        return false;
      ++St.Bound[C->binder().Name];
      bool Ok = fvRec(St, C->body(), D + 1);
      --St.Bound[C->binder().Name];
      return Ok;
    }
    case K::If0: {
      const auto *I = cast<mcalc::If0Term>(T);
      return fvRec(St, I->scrut(), D + 1) &&
             fvRec(St, I->thenBranch(), D + 1) &&
             fvRec(St, I->elseBranch(), D + 1);
    }
    case K::Error:
    case K::ConLit:
    case K::Lit:
    case K::DLit:
      return true;
    case K::ConVar:
      fvVisit(St, cast<mcalc::ConVarTerm>(T)->var());
      return true;
    case K::Prim: {
      const auto *P = cast<mcalc::PrimTerm>(T);
      if (!P->lhs().IsLit)
        fvVisit(St, P->lhs().Var);
      if (!P->rhs().IsLit)
        fvVisit(St, P->rhs().Var);
      return true;
    }
    case K::Con: {
      const auto *C = cast<mcalc::ConTerm>(T);
      for (const MAtom &A : C->args())
        if (!A.IsLit)
          fvVisit(St, A.Var);
      return true;
    }
    case K::Switch: {
      const auto *S = cast<mcalc::SwitchTerm>(T);
      if (!fvRec(St, S->scrut(), D + 1))
        return false;
      for (const MAlt &A : S->alts()) {
        for (MVar B : A.Binders)
          ++St.Bound[B.Name];
        bool Ok = fvRec(St, A.Body, D + 1);
        for (MVar B : A.Binders)
          --St.Bound[B.Name];
        if (!Ok)
          return false;
      }
      if (S->defaultBody())
        return fvRec(St, S->defaultBody(), D + 1);
      return true;
    }
    }
    return fail("unknown term kind");
  }

  bool freeVarsOf(const Term *T, std::vector<MVar> &Out) {
    FvState St;
    if (!fvRec(St, T, 0))
      return false;
    Out = std::move(St.Out);
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Term compilation
  //===--------------------------------------------------------------------===//

  /// Collapses a syntactic λx₁…λxₙ run into its parameter list and
  /// innermost body — one proto per run, not one per λ, so a saturated
  /// call binds every argument in one step.
  static const Term *collectLamSpine(const Term *T, std::vector<MVar> &Params) {
    while (const auto *L = mcalc::dyn_cast<mcalc::LamTerm>(T)) {
      Params.push_back(L->param());
      T = L->body();
    }
    return T;
  }

  /// Creates a new proto compiling \p Body (in tail position), capturing
  /// the free variables of \p CapTerm from \p Parent's frame. \p Params
  /// are the lambda parameters in order (slots right after captures);
  /// empty for thunk and entry protos.
  bool makeProto(ProtoCtx &Parent, const Term *CapTerm, const Term *Body,
                 const std::vector<MVar> &Params, uint32_t &OutIdx) {
    std::vector<MVar> Caps;
    if (!freeVarsOf(CapTerm, Caps))
      return false;
    if (Caps.size() + Params.size() > MaxFrameSlots)
      return fail("closure captures more than " +
                  std::to_string(MaxFrameSlots) + " variables");
    Proto P;
    auto Ctx = std::make_unique<ProtoCtx>();
    for (MVar V : Caps) {
      Binding Src;
      if (!lookup(Parent, V, Src))
        return false;
      P.Caps.push_back({static_cast<uint16_t>(Src.Slot),
                        static_cast<uint8_t>(Src.Sort)});
      // The capture's slot in the new frame is its capture index; record
      // the *defining* sort so loads pick the right access mode.
      bind(*Ctx, MVar{V.Name, Src.Sort}, Ctx->NumLocals);
      ++Ctx->NumLocals;
    }
    for (const MVar &V : Params) {
      P.ParamSorts.push_back(static_cast<uint8_t>(V.Sort));
      // Later parameters shadow earlier same-named ones (λx.λx.body),
      // exactly like nested single-parameter protos would.
      bind(*Ctx, V, Ctx->NumLocals);
      ++Ctx->NumLocals;
    }
    OutIdx = static_cast<uint32_t>(Mod.Protos.size());
    Ctx->Index = OutIdx;
    Mod.Protos.push_back(std::move(P));
    Ctxs.push_back(std::move(Ctx));
    ProtoCtx &C = *Ctxs[OutIdx];
    if (!compileTerm(C, Body, /*Tail=*/true))
      return false;
    emit(C, Op::Return);
    peephole(C);
    if (C.NumLocals > MaxFrameSlots)
      return fail("frame needs more than " + std::to_string(MaxFrameSlots) +
                  " slots");
    Mod.Protos[OutIdx].NumLocals = static_cast<uint16_t>(C.NumLocals);
    return true;
  }

  /// Peephole fusion over one proto's finished (proto-relative) code:
  /// LoadLocal+Prim → PrimLocal, PushInt+Prim → PrimInt, and
  /// LoadLocal+Return → ReturnLocal. A pair is only fused when no jump
  /// or switch target lands on its second instruction; all targets are
  /// remapped through the old→new index table afterwards.
  void peephole(ProtoCtx &P) {
    std::vector<SwitchTable *> Owned;
    for (size_t T = 0; T != TableOwner.size(); ++T)
      if (TableOwner[T] == P.Index)
        Owned.push_back(&Mod.Tables[T]);
    std::vector<uint8_t> IsTarget(P.Code.size() + 1, 0);
    auto Mark = [&](int64_t T) {
      if (T >= 0 && T <= static_cast<int64_t>(P.Code.size()))
        IsTarget[static_cast<size_t>(T)] = 1;
    };
    for (const Instr &I : P.Code)
      if (I.Code == Op::Jump || I.Code == Op::If0)
        Mark(I.C);
    for (const SwitchTable *T : Owned) {
      for (const SwitchAlt &A : T->Alts)
        Mark(A.Target);
      if (T->DefaultTarget >= 0)
        Mark(T->DefaultTarget);
    }
    std::vector<Instr> NewCode;
    NewCode.reserve(P.Code.size());
    std::vector<int32_t> OldToNew(P.Code.size() + 1, 0);
    for (size_t I = 0; I != P.Code.size();) {
      OldToNew[I] = static_cast<int32_t>(NewCode.size());
      const Instr &A = P.Code[I];
      if (I + 1 != P.Code.size() && !IsTarget[I + 1]) {
        const Instr &B = P.Code[I + 1];
        bool Fused = true;
        if (A.Code == Op::LoadLocal && B.Code == Op::Prim)
          NewCode.push_back({Op::PrimLocal, B.A, A.B, 0});
        else if (A.Code == Op::PushInt && B.Code == Op::Prim)
          NewCode.push_back({Op::PrimInt, B.A, 0, A.C});
        else if (A.Code == Op::LoadLocal && B.Code == Op::Return)
          NewCode.push_back({Op::ReturnLocal, 0, A.B, 0});
        else
          Fused = false;
        if (Fused) {
          OldToNew[I + 1] = static_cast<int32_t>(NewCode.size()) - 1;
          I += 2;
          continue;
        }
      }
      NewCode.push_back(A);
      ++I;
    }
    OldToNew[P.Code.size()] = static_cast<int32_t>(NewCode.size());
    for (Instr &In : NewCode)
      if (In.Code == Op::Jump || In.Code == Op::If0)
        In.C = OldToNew[In.C];
    for (SwitchTable *T : Owned) {
      for (SwitchAlt &A : T->Alts)
        A.Target = static_cast<uint32_t>(OldToNew[A.Target]);
      if (T->DefaultTarget >= 0)
        T->DefaultTarget = OldToNew[static_cast<size_t>(T->DefaultTarget)];
    }
    P.Code = std::move(NewCode);
  }

  /// Pushes one atom: a pooled literal, or a raw load of the variable's
  /// slot (atoms are never forced — constructor fields stay lazy and
  /// primop atoms are unboxed).
  bool compileAtom(ProtoCtx &P, const MAtom &A) {
    if (A.IsLit) {
      if (A.IsDbl)
        emit(P, Op::PushDbl, 0, 0, static_cast<int32_t>(dblPool(A.DblLit)));
      else
        emit(P, Op::PushInt, 0, 0, static_cast<int32_t>(intPool(A.Lit)));
      return true;
    }
    Binding B;
    if (!lookup(P, A.Var, B))
      return false;
    emit(P, Op::LoadLocal, 0, static_cast<uint16_t>(B.Slot));
    return true;
  }

  /// The binder a Let/LetBang/LetRec wrapper introduces.
  static MVar letBinder(const Term *T) {
    using K = Term::TermKind;
    switch (T->kind()) {
    case K::Let:
      return cast<mcalc::LetTerm>(T)->binder();
    case K::LetBang:
      return cast<mcalc::LetBangTerm>(T)->binder();
    default:
      return cast<mcalc::LetRecTerm>(T)->binder();
    }
  }

  /// The body a Let/LetBang/LetRec wrapper scopes over.
  static const Term *letBody(const Term *T) {
    using K = Term::TermKind;
    switch (T->kind()) {
    case K::Let:
      return cast<mcalc::LetTerm>(T)->body();
    case K::LetBang:
      return cast<mcalc::LetBangTerm>(T)->body();
    default:
      return cast<mcalc::LetRecTerm>(T)->body();
    }
  }

  /// Emits just the *binding* of a Let/LetBang/LetRec wrapper and pushes
  /// the binder into P's scope; the caller compiles whatever the binder
  /// scopes over and must unbind(P, letBinder(T)) afterwards. Shared by
  /// the plain let cases and the application-spine walk, which floats
  /// binding wrappers out of function position so curried chains
  /// collapse into one saturated CallN — the ANF lowering wraps every
  /// argument in a let/let! (C_APPLAZY/C_APPINT/C_APPDBL), so multi-arg
  /// spines are never syntactically bare.
  bool compileLetBinding(ProtoCtx &P, const Term *T) {
    using K = Term::TermKind;
    switch (T->kind()) {
    case K::Let: {
      const auto *L = cast<mcalc::LetTerm>(T);
      const Term *R = L->rhs();
      switch (R->kind()) {
      case K::Var: {
        // Alias: the machine would allocate a one-variable thunk whose
        // force delegates; sharing the slot is observationally the same
        // and strictly lazier than a fresh cell.
        Binding B;
        if (!lookup(P, cast<mcalc::VarTerm>(R)->var(), B))
          return false;
        emit(P, Op::LoadLocal, 0, static_cast<uint16_t>(B.Slot));
        break;
      }
      case K::Lam:
      case K::Con:
      case K::ConLit:
      case K::Lit:
      case K::DLit:
        // Syntactic values: the machine's VAL rule yields them on first
        // lookup without a thunk step; building them eagerly cannot
        // error or diverge.
        if (!compileTerm(P, R, /*Tail=*/false))
          return false;
        break;
      default: {
        uint32_t Pr;
        if (!makeProto(P, R, R, /*Params=*/{}, Pr))
          return false;
        emit(P, Op::MkThunk, 0, 0, static_cast<int32_t>(Pr));
        break;
      }
      }
      uint32_t Slot;
      if (!newLocals(P, 1, Slot))
        return false;
      emit(P, Op::StoreLocal, 0, static_cast<uint16_t>(Slot));
      bind(P, L->binder(), Slot);
      return true;
    }
    case K::LetBang: {
      const auto *L = cast<mcalc::LetBangTerm>(T);
      if (!compileTerm(P, L->rhs(), /*Tail=*/false))
        return false;
      uint32_t Slot;
      if (!newLocals(P, 1, Slot))
        return false;
      emit(P, Op::StoreStrict, static_cast<uint8_t>(L->binder().Sort),
           static_cast<uint16_t>(Slot));
      bind(P, L->binder(), Slot);
      return true;
    }
    default: {
      const auto *L = cast<mcalc::LetRecTerm>(T);
      uint32_t Slot;
      if (!newLocals(P, 1, Slot))
        return false;
      // RECLET: the right-hand side sees its own cell. The destination
      // slot is bound (and written by MkClosureRec/MkThunkRec) before
      // captures are copied, so a self-capture reads the fresh cell.
      bind(P, L->binder(), Slot);
      const Term *R = L->rhs();
      bool Ok;
      uint32_t Pr;
      if (mcalc::dyn_cast<mcalc::LamTerm>(R)) {
        std::vector<MVar> Params;
        const Term *Body = collectLamSpine(R, Params);
        Ok = makeProto(P, R, Body, Params, Pr);
        if (Ok)
          emit(P, Op::MkClosureRec, 0, static_cast<uint16_t>(Slot),
               static_cast<int32_t>(Pr));
      } else {
        Ok = makeProto(P, R, R, /*Params=*/{}, Pr);
        if (Ok)
          emit(P, Op::MkThunkRec, 0, static_cast<uint16_t>(Slot),
               static_cast<int32_t>(Pr));
      }
      if (!Ok)
        unbind(P, L->binder());
      return Ok;
    }
    }
  }

  bool compileTerm(ProtoCtx &P, const Term *T, bool Tail) {
    if (Depth >= MaxCompileDepth)
      return fail("term nests deeper than the bytecode compiler supports");
    ++Depth;
    bool Ok = compileTermInner(P, T, Tail);
    --Depth;
    return Ok;
  }

  bool compileTermInner(ProtoCtx &P, const Term *T, bool Tail) {
    using K = Term::TermKind;
    switch (T->kind()) {
    case K::Var: {
      const MVar V = cast<mcalc::VarTerm>(T)->var();
      Binding B;
      if (!lookup(P, V, B))
        return false;
      // Pointer reads in evaluation position force to WHNF (rules
      // EVAL/VAL); unboxed registers already hold values.
      emit(P, B.Sort == VarSort::Ptr ? Op::LoadForce : Op::LoadLocal, 0,
           static_cast<uint16_t>(B.Slot));
      return true;
    }
    case K::Lit:
      emit(P, Op::PushInt, 0, 0,
           static_cast<int32_t>(intPool(cast<mcalc::LitTerm>(T)->value())));
      return true;
    case K::DLit:
      emit(P, Op::PushDbl, 0, 0,
           static_cast<int32_t>(dblPool(cast<mcalc::DLitTerm>(T)->value())));
      return true;
    case K::ConLit:
      emit(P, Op::PushInt, 0, 0,
           static_cast<int32_t>(intPool(cast<mcalc::ConLitTerm>(T)->value())));
      emit(P, Op::MkBox);
      return true;
    case K::ConVar: {
      Binding B;
      if (!lookup(P, cast<mcalc::ConVarTerm>(T)->var(), B))
        return false;
      emit(P, Op::LoadLocal, 0, static_cast<uint16_t>(B.Slot));
      emit(P, Op::MkBox);
      return true;
    }
    case K::Lam: {
      std::vector<MVar> Params;
      const Term *Body = collectLamSpine(T, Params);
      uint32_t Pr;
      if (!makeProto(P, T, Body, Params, Pr))
        return false;
      emit(P, Op::MkClosure, 0, 0, static_cast<int32_t>(Pr));
      return true;
    }
    case K::AppVar:
    case K::AppLit:
    case K::AppDbl: {
      // Collapse the curried application spine f a₁ … aₙ: compile the
      // head once, push every argument atom (first-applied deepest), and
      // apply them all in one CallN/TailCallN. Argument atoms are
      // effect-free pushes, so batching them cannot change evaluation
      // order — the head still evaluates first, exactly like n nested
      // one-argument calls.
      //
      // The ANF lowering never produces a bare spine: each argument
      // arrives as a binding wrapper in function position,
      // ⟦e1 e2⟧ = let[!] y = t2 in t1 y. The walk floats those wrappers
      // out — ((let x = r in f) y ≡ let x = r in (f y)) whenever the
      // binder cannot capture an argument collected outside it — so the
      // whole chain still becomes one saturated call. Wrapper bindings
      // are emitted outermost-first, exactly the order the machine
      // evaluates their right-hand sides.
      struct SpineArg {
        Term::TermKind Kind;
        MVar V;
        int64_t I = 0;
        double D = 0;
      };
      std::vector<SpineArg> Args;
      std::vector<const Term *> Floated; ///< Binding wrappers, outermost first.
      const Term *Fn = T;
      for (;;) {
        if (const auto *A = mcalc::dyn_cast<mcalc::AppVarTerm>(Fn)) {
          Args.push_back({K::AppVar, A->arg(), 0, 0});
          Fn = A->fn();
        } else if (const auto *A = mcalc::dyn_cast<mcalc::AppLitTerm>(Fn)) {
          Args.push_back({K::AppLit, MVar{}, A->lit(), 0});
          Fn = A->fn();
        } else if (const auto *A = mcalc::dyn_cast<mcalc::AppDblTerm>(Fn)) {
          Args.push_back({K::AppDbl, MVar{}, 0, A->lit()});
          Fn = A->fn();
        } else if (Fn->kind() == K::Let || Fn->kind() == K::LetBang ||
                   Fn->kind() == K::LetRec) {
          // Scope lookup is by name, so floating is blocked if the
          // binder shadows an argument collected *outside* this wrapper
          // (arguments inside it see the binder legitimately).
          const MVar B = letBinder(Fn);
          bool Captures = false;
          for (const SpineArg &A : Args)
            if (A.Kind == K::AppVar && A.V.Name == B.Name) {
              Captures = true;
              break;
            }
          if (Captures)
            break;
          Floated.push_back(Fn);
          Fn = letBody(Fn);
        } else {
          break;
        }
      }
      if (Args.size() > MaxFrameSlots)
        return fail("application spine longer than " +
                    std::to_string(MaxFrameSlots) + " arguments");
      for (const Term *W : Floated)
        if (!compileLetBinding(P, W))
          return false;
      if (!compileTerm(P, Fn, /*Tail=*/false))
        return false;
      for (size_t I = Args.size(); I-- > 0;) {
        const SpineArg &A = Args[I];
        switch (A.Kind) {
        case K::AppVar: {
          Binding B;
          if (!lookup(P, A.V, B))
            return false;
          emit(P, Op::LoadLocal, 0, static_cast<uint16_t>(B.Slot));
          break;
        }
        case K::AppLit:
          emit(P, Op::PushInt, 0, 0, static_cast<int32_t>(intPool(A.I)));
          break;
        default:
          emit(P, Op::PushDbl, 0, 0, static_cast<int32_t>(dblPool(A.D)));
          break;
        }
      }
      if (Args.size() == 1)
        emit(P, Tail ? Op::TailCall : Op::Call);
      else
        emit(P, Tail ? Op::TailCallN : Op::CallN, 0,
             static_cast<uint16_t>(Args.size()));
      for (size_t I = Floated.size(); I-- > 0;)
        unbind(P, letBinder(Floated[I]));
      return true;
    }
    case K::Let:
    case K::LetBang:
    case K::LetRec: {
      if (!compileLetBinding(P, T))
        return false;
      bool Ok = compileTerm(P, letBody(T), Tail);
      unbind(P, letBinder(T));
      return Ok;
    }
    case K::Case: {
      const auto *C = cast<mcalc::CaseTerm>(T);
      if (!compileTerm(P, C->scrut(), /*Tail=*/false))
        return false;
      uint32_t Slot;
      if (!newLocals(P, 1, Slot))
        return false;
      // A non-Int# binder is the machine's IMAT stuck; the check rides
      // on the instruction so the scrutinee still evaluates first.
      emit(P, Op::UnBox, static_cast<uint8_t>(C->binder().Sort),
           static_cast<uint16_t>(Slot));
      bind(P, C->binder(), Slot);
      bool Ok = compileTerm(P, C->body(), Tail);
      unbind(P, C->binder());
      return Ok;
    }
    case K::If0: {
      const auto *I = cast<mcalc::If0Term>(T);
      if (!compileTerm(P, I->scrut(), /*Tail=*/false))
        return false;
      size_t IfIdx = emit(P, Op::If0);
      if (!compileTerm(P, I->thenBranch(), Tail))
        return false;
      size_t JmpIdx = emit(P, Op::Jump);
      P.Code[IfIdx].C = static_cast<int32_t>(P.Code.size());
      if (!compileTerm(P, I->elseBranch(), Tail))
        return false;
      P.Code[JmpIdx].C = static_cast<int32_t>(P.Code.size());
      return true;
    }
    case K::Switch: {
      const auto *S = cast<mcalc::SwitchTerm>(T);
      if (!compileTerm(P, S->scrut(), /*Tail=*/false))
        return false;
      uint32_t Tbl = static_cast<uint32_t>(Mod.Tables.size());
      Mod.Tables.emplace_back();
      TableOwner.push_back(P.Index);
      emit(P, Op::Switch, 0, 0, static_cast<int32_t>(Tbl));
      std::vector<size_t> EndJumps;
      for (const MAlt &A : S->alts()) {
        SwitchAlt SA;
        SA.Pat = static_cast<uint8_t>(A.Pat);
        SA.Tag = A.Tag;
        SA.IntVal = A.IntVal;
        SA.DblVal = A.DblVal;
        SA.Target = static_cast<uint32_t>(P.Code.size());
        uint32_t NB = static_cast<uint32_t>(A.Binders.size());
        if (NB) {
          uint32_t Base;
          if (!newLocals(P, NB, Base))
            return false;
          SA.BindersBase = static_cast<uint16_t>(Base);
          for (uint32_t J = 0; J != NB; ++J) {
            SA.BinderSorts.push_back(
                static_cast<uint8_t>(A.Binders[J].Sort));
            bind(P, A.Binders[J], Base + J);
          }
        }
        bool Ok = compileTerm(P, A.Body, Tail);
        for (uint32_t J = NB; J-- > 0;)
          unbind(P, A.Binders[J]);
        if (!Ok)
          return false;
        EndJumps.push_back(emit(P, Op::Jump));
        Mod.Tables[Tbl].Alts.push_back(std::move(SA));
      }
      if (S->defaultBody()) {
        Mod.Tables[Tbl].DefaultTarget =
            static_cast<int64_t>(P.Code.size());
        if (!compileTerm(P, S->defaultBody(), Tail))
          return false;
      }
      for (size_t J : EndJumps)
        P.Code[J].C = static_cast<int32_t>(P.Code.size());
      return true;
    }
    case K::Prim: {
      const auto *Pr = cast<mcalc::PrimTerm>(T);
      if (!compileAtom(P, Pr->lhs()) || !compileAtom(P, Pr->rhs()))
        return false;
      emit(P, Op::Prim, static_cast<uint8_t>(Pr->op()));
      return true;
    }
    case K::Con: {
      const auto *C = cast<mcalc::ConTerm>(T);
      if (C->args().size() > MaxFrameSlots)
        return fail("constructor wider than " +
                    std::to_string(MaxFrameSlots) + " fields");
      if (C->tag() >
          static_cast<uint32_t>(std::numeric_limits<int32_t>::max()))
        return fail("constructor tag out of the bytecode operand range");
      for (const MAtom &A : C->args())
        if (!compileAtom(P, A))
          return false;
      emit(P, Op::AllocCon, 0, static_cast<uint16_t>(C->args().size()),
           static_cast<int32_t>(C->tag()));
      return true;
    }
    case K::Error: {
      const Symbol Msg = cast<mcalc::ErrorTerm>(T)->message();
      int32_t C = -1;
      if (Msg.valid())
        C = static_cast<int32_t>(strPool(std::string(Msg.str())));
      emit(P, Op::Error, 0, 0, C);
      return true;
    }
    }
    return fail("unknown term kind");
  }
};

Result<std::shared_ptr<const Module>> Compiler::run(const Term *Entry) {
  // The entry is compiled like any proto with an empty capture scope;
  // any variable lookup that misses is a free variable of the whole
  // term (the driver's fragment boundary — fall back, never guess).
  ProtoCtx Root;
  uint32_t Idx;
  if (!makeProto(Root, Entry, Entry, /*Params=*/{}, Idx))
    return err(Diag.empty() ? std::string(DiagPrefix) + "compilation failed"
                            : Diag);
  assert(Idx == 0 && "entry proto must be proto 0");

  // Link: concatenate per-proto code, rebasing proto-relative jump and
  // switch targets onto the flat stream.
  auto M = std::make_shared<Module>();
  M->IntPool = std::move(Mod.IntPool);
  M->DblPool = std::move(Mod.DblPool);
  M->StrPool = std::move(Mod.StrPool);
  M->Tables = std::move(Mod.Tables);
  M->Protos = std::move(Mod.Protos);
  size_t Total = 0;
  for (const auto &C : Ctxs)
    Total += C->Code.size();
  if (Total > (size_t{1} << 30))
    return err(std::string(DiagPrefix) + "program too large for bytecode");
  M->Code.reserve(Total);
  for (size_t I = 0; I != Ctxs.size(); ++I) {
    Proto &P = M->Protos[I];
    P.Entry = static_cast<uint32_t>(M->Code.size());
    for (Instr In : Ctxs[I]->Code) {
      if (In.Code == Op::Jump || In.Code == Op::If0)
        In.C += static_cast<int32_t>(P.Entry);
      M->Code.push_back(In);
    }
    P.End = static_cast<uint32_t>(M->Code.size());
  }
  for (size_t T = 0; T != M->Tables.size(); ++T) {
    uint32_t Base = M->Protos[TableOwner[T]].Entry;
    for (SwitchAlt &A : M->Tables[T].Alts)
      A.Target += Base;
    if (M->Tables[T].DefaultTarget >= 0)
      M->Tables[T].DefaultTarget += Base;
  }
  buildDispatchTables(*M);
  assert(validate(*M) && "compiler emitted an invalid module");
  return Result<std::shared_ptr<const Module>>(
      std::shared_ptr<const Module>(std::move(M)));
}

} // namespace

namespace levity {
namespace bytecode {

Result<std::shared_ptr<const Module>> compile(const mcalc::Term *T) {
  if (!T)
    return err(std::string(DiagPrefix) + "no term to compile");
  Compiler C;
  return C.run(T);
}

void buildDispatchTables(Module &M) {
  for (SwitchTable &T : M.Tables) {
    T.DenseAltIdx.clear();
    T.DenseTagBase = 0;
    if (T.Alts.size() < 2)
      continue;
    uint32_t Lo = std::numeric_limits<uint32_t>::max(), Hi = 0;
    bool AllCon = true;
    for (const SwitchAlt &A : T.Alts) {
      if (A.Pat != static_cast<uint8_t>(MAlt::PatKind::Con)) {
        AllCon = false;
        break;
      }
      Lo = std::min(Lo, A.Tag);
      Hi = std::max(Hi, A.Tag);
    }
    if (!AllCon)
      continue;
    // Only densify compact tag ranges: the table is O(span), and a
    // sparse one would trade a short scan for a cache-hostile array.
    uint64_t Span = static_cast<uint64_t>(Hi) - Lo + 1;
    if (Span > 64)
      continue;
    T.DenseAltIdx.assign(static_cast<size_t>(Span), -1);
    for (size_t I = 0; I != T.Alts.size(); ++I) {
      size_t Off = T.Alts[I].Tag - Lo;
      if (T.DenseAltIdx[Off] < 0) // First match wins, like the scan.
        T.DenseAltIdx[Off] = static_cast<int32_t>(I);
    }
    T.DenseTagBase = Lo;
  }
}

//===----------------------------------------------------------------------===//
// Validation — everything the VM's unchecked dispatch loop relies on.
//===----------------------------------------------------------------------===//

namespace {

/// Pops/pushes for the stack-effect verifier. Call transfers control but
/// its net frame-local effect is "pop fn and arg, a value comes back".
struct StackEffect {
  uint32_t Pops;
  uint32_t Pushes;
  bool Ends; ///< No fall-through successor.
};

StackEffect effectOf(const Instr &I) {
  switch (I.Code) {
  case Op::PushInt:
  case Op::PushDbl:
  case Op::LoadLocal:
  case Op::LoadForce:
  case Op::MkClosure:
  case Op::MkThunk:
    return {0, 1, false};
  case Op::MkClosureRec:
  case Op::MkThunkRec:
  case Op::Jump:
    return {0, 0, false};
  case Op::StoreLocal:
  case Op::StoreStrict:
  case Op::UnBox:
  case Op::If0:
  case Op::Switch:
    return {1, 0, false};
  case Op::Call:
  case Op::Prim:
    return {2, 1, false};
  case Op::MkBox:
  case Op::PrimLocal:
  case Op::PrimInt:
    return {1, 1, false};
  case Op::AllocCon:
    return {I.B, 1, false};
  case Op::CallN:
    return {static_cast<uint32_t>(I.B) + 1, 1, false};
  case Op::TailCall:
    return {2, 0, true};
  case Op::TailCallN:
    return {static_cast<uint32_t>(I.B) + 1, 0, true};
  case Op::Return:
    return {1, 0, true};
  case Op::ReturnLocal:
    return {0, 0, true};
  case Op::Error:
    return {0, 0, true};
  }
  return {0, 0, true};
}

} // namespace

bool validate(const Module &M) {
  const size_t N = M.Code.size();
  if (M.Protos.empty() || N == 0 ||
      N > static_cast<size_t>(std::numeric_limits<int32_t>::max()))
    return false;

  // Vm::run enters Protos[0] with no captures and no argument. An entry
  // that expects either would read default-initialized slots and compute
  // wrong answers instead of failing, so it must be rejected here.
  if (!M.Protos[0].Caps.empty() || M.Protos[0].numParams() != 0)
    return false;

  // Protos must exactly partition [0, Code.size()) in order — what
  // compile() always emits. Disjointness is load-bearing for the shared
  // depth map in the stack-effect pass below: an instruction reachable
  // under two overlapping protos would be verified against only the
  // first proto's frame bounds, then run under the second's.
  if (M.Protos.front().Entry != 0 || M.Protos.back().End != N)
    return false;
  for (size_t I = 1; I != M.Protos.size(); ++I)
    if (M.Protos[I].Entry != M.Protos[I - 1].End)
      return false;

  for (const Proto &P : M.Protos) {
    if (P.Entry >= P.End || P.End > N)
      return false;
    size_t Fixed = P.Caps.size() + P.ParamSorts.size();
    if (Fixed > P.NumLocals)
      return false;
    for (uint8_t S : P.ParamSorts)
      if (S >= mcalc::NumVarSorts)
        return false;
    for (const Capture &C : P.Caps)
      if (C.Sort >= mcalc::NumVarSorts)
        return false;
  }

  for (const Proto &P : M.Protos) {
    for (uint32_t Ip = P.Entry; Ip != P.End; ++Ip) {
      const Instr &I = M.Code[Ip];
      if (static_cast<uint8_t>(I.Code) >= NumOps)
        return false;
      auto InRange = [&](int64_t T) {
        return T >= static_cast<int64_t>(P.Entry) &&
               T < static_cast<int64_t>(P.End);
      };
      switch (I.Code) {
      case Op::PushInt:
        if (I.C < 0 || static_cast<size_t>(I.C) >= M.IntPool.size())
          return false;
        break;
      case Op::PushDbl:
        if (I.C < 0 || static_cast<size_t>(I.C) >= M.DblPool.size())
          return false;
        break;
      case Op::LoadLocal:
      case Op::LoadForce:
      case Op::StoreLocal:
        if (I.B >= P.NumLocals)
          return false;
        break;
      case Op::StoreStrict:
      case Op::UnBox:
        if (I.B >= P.NumLocals || I.A >= mcalc::NumVarSorts)
          return false;
        break;
      case Op::MkClosure:
      case Op::MkThunk:
      case Op::MkClosureRec:
      case Op::MkThunkRec: {
        if (I.C < 0 || static_cast<size_t>(I.C) >= M.Protos.size())
          return false;
        // Thunk protos are entered by force with no arguments; closure
        // protos are entered by apply, which binds at least one. A
        // mismatch would read default-initialized parameter slots.
        bool IsThunk = I.Code == Op::MkThunk || I.Code == Op::MkThunkRec;
        if (IsThunk != (M.Protos[I.C].numParams() == 0))
          return false;
        // Captures are copied from the *creating* frame.
        for (const Capture &C : M.Protos[I.C].Caps)
          if (C.Src >= P.NumLocals)
            return false;
        if ((I.Code == Op::MkClosureRec || I.Code == Op::MkThunkRec) &&
            I.B >= P.NumLocals)
          return false;
        break;
      }
      case Op::Prim:
        if (I.A >= mcalc::NumMPrims)
          return false;
        break;
      case Op::PrimLocal:
        if (I.A >= mcalc::NumMPrims || I.B >= P.NumLocals)
          return false;
        break;
      case Op::PrimInt:
        if (I.A >= mcalc::NumMPrims || I.C < 0 ||
            static_cast<size_t>(I.C) >= M.IntPool.size())
          return false;
        break;
      case Op::ReturnLocal:
        if (I.B >= P.NumLocals)
          return false;
        break;
      case Op::CallN:
      case Op::TailCallN:
        // Zero-argument applications don't exist in M; the VM's apply
        // path reads the first argument's register class for its stuck
        // diagnostics, so B ≥ 1 is load-bearing.
        if (I.B == 0)
          return false;
        break;
      case Op::AllocCon:
        if (I.C < 0)
          return false;
        break;
      case Op::Jump:
      case Op::If0:
        if (!InRange(I.C))
          return false;
        break;
      case Op::Switch: {
        if (I.C < 0 || static_cast<size_t>(I.C) >= M.Tables.size())
          return false;
        const SwitchTable &T = M.Tables[I.C];
        if (T.DefaultTarget != -1 && !InRange(T.DefaultTarget))
          return false;
        for (const SwitchAlt &A : T.Alts) {
          if (A.Pat >= MAlt::NumPatKinds || !InRange(A.Target))
            return false;
          if (A.BindersBase + A.BinderSorts.size() > P.NumLocals)
            return false;
          for (uint8_t S : A.BinderSorts)
            if (S >= mcalc::NumVarSorts)
              return false;
        }
        break;
      }
      case Op::Error:
        if (I.C >= 0 && static_cast<size_t>(I.C) >= M.StrPool.size())
          return false;
        break;
      case Op::Call:
      case Op::TailCall:
      case Op::Return:
      case Op::MkBox:
        break;
      }
    }
  }

  // Stack-effect dataflow per proto: depth is exact along every path, no
  // pop can underflow, and control never falls off the end of a proto.
  // This is what lets the VM pop without per-instruction checks. One
  // depth map serves all protos: Flow confines each walk to [Entry, End)
  // and the partition check above makes those ranges disjoint, so no
  // entry is ever shared (or stale-memoized) across protos.
  std::vector<int32_t> DepthAt(N, -1);
  std::vector<uint32_t> Work;
  for (const Proto &P : M.Protos) {
    Work.clear();
    if (DepthAt[P.Entry] == -1)
      DepthAt[P.Entry] = 0;
    else if (DepthAt[P.Entry] != 0)
      return false;
    Work.push_back(P.Entry);
    auto Flow = [&](int64_t To, int32_t D) {
      if (!(To >= P.Entry && To < P.End))
        return false; // Falls off the proto or into another one.
      if (DepthAt[To] == -1) {
        DepthAt[To] = D;
        Work.push_back(static_cast<uint32_t>(To));
        return true;
      }
      return DepthAt[To] == D;
    };
    while (!Work.empty()) {
      uint32_t Ip = Work.back();
      Work.pop_back();
      const Instr &I = M.Code[Ip];
      int32_t D = DepthAt[Ip];
      StackEffect E = effectOf(I);
      if (static_cast<uint32_t>(D) < E.Pops)
        return false;
      int32_t After = D - static_cast<int32_t>(E.Pops) +
                      static_cast<int32_t>(E.Pushes);
      if (E.Ends)
        continue;
      switch (I.Code) {
      case Op::Jump:
        if (!Flow(I.C, After))
          return false;
        break;
      case Op::If0:
        if (!Flow(Ip + 1, After) || !Flow(I.C, After))
          return false;
        break;
      case Op::Switch: {
        const SwitchTable &T = M.Tables[I.C];
        for (const SwitchAlt &A : T.Alts)
          if (!Flow(A.Target, After))
            return false;
        if (T.DefaultTarget != -1 && !Flow(T.DefaultTarget, After))
          return false;
        break;
      }
      default:
        if (!Flow(Ip + 1, After))
          return false;
        break;
      }
    }
  }
  return true;
}

} // namespace bytecode
} // namespace levity
