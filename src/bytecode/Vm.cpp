//===- Vm.cpp - Threaded interpreter for bytecode Modules -----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop. On GCC/Clang it is a threaded interpreter: each
// handler ends by loading the next opcode and jumping straight to its
// label (computed goto), so the branch predictor learns per-opcode
// successor patterns instead of funnelling every instruction through one
// switch. A portable switch fallback compiles everywhere else (or with
// -DLEVITY_VM_NO_COMPUTED_GOTO for differential testing of the two
// loops).
//
// The loop performs no operand bounds checks: validate() proved every
// slot/pool/target operand in range and the stack-effect dataflow exact,
// so the only runtime checks left are the semantic ones the term machine
// itself performs (value shapes, register classes, division guards) —
// each mapping to the machine's stuck conditions.
//
// Frames share one contiguous Slot stack for locals and one for
// operands; a frame is four integers and two pointers. Calls follow the
// eval/apply model: a saturated CallN/TailCallN moves every argument
// into frame slots in one step, under-application builds a PAP object,
// and over-application parks the surplus args below the new frame's
// floor (FrameRec::PendArgs) so the returned value is applied to them.
// A tail call pops the frame and re-enters at the same stack position —
// the iterative sum-to loop runs at constant frame depth — while
// passing along the pending thunk update, so a tail call inside a
// forced thunk still writes the result back (FCE).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Vm.h"

#include <limits>

using namespace levity;
using namespace levity::bytecode;
using mcalc::MPrim;
using mcalc::VarSort;

#if (defined(__GNUC__) || defined(__clang__)) &&                               \
    !defined(LEVITY_VM_NO_COMPUTED_GOTO)
#define LEVITY_VM_COMPUTED_GOTO 1
#else
#define LEVITY_VM_COMPUTED_GOTO 0
#endif

namespace {

/// The machine's APP-against-non-lambda stucks, keyed by the pending
/// argument's register class (mirrors Frame::AppPtr/AppLit/AppDbl).
const char *appStuckMsg(uint8_t ArgKind) {
  switch (static_cast<VarSort>(ArgKind)) {
  case VarSort::Ptr:
    return "App(p) against a non-lambda value";
  case VarSort::Int:
    return "App(n) against a non-lambda value";
  case VarSort::Dbl:
    return "App(d) against a non-lambda value";
  }
  return "App against a non-lambda value";
}

/// The machine's calling-convention stucks, keyed the same way.
const char *ccMismatchMsg(uint8_t ArgKind) {
  switch (static_cast<VarSort>(ArgKind)) {
  case VarSort::Ptr:
    return "calling-convention mismatch: pointer argument for an "
           "integer-register parameter";
  case VarSort::Int:
    return "calling-convention mismatch: integer argument for a "
           "non-integer-register parameter";
  case VarSort::Dbl:
    return "calling-convention mismatch: double argument for a "
           "non-double-register parameter";
  }
  return "calling-convention mismatch";
}

/// Renders a WHNF slot for RunResult::Display (shallow, like the
/// machine's Term::str() on the final value).
std::string renderValue(Slot V) {
  while (V.isPtr() && V.P->Kind == Obj::K::Ind)
    V = V.P->Val;
  if (V.isInt())
    return std::to_string(V.I);
  if (V.isDbl())
    return std::to_string(V.D);
  const Obj *O = V.P;
  if (O->Kind == Obj::K::Closure || O->Kind == Obj::K::Pap)
    return "<closure>";
  if (O->Kind == Obj::K::Con) {
    if (O->IsBox)
      return "I#[" + std::to_string(O->Fields[0].I) + "]";
    std::string S = "CON " + std::to_string(O->Tag) + " [";
    for (size_t J = 0; J != O->Fields.size(); ++J) {
      if (J)
        S += ", ";
      Slot F = O->Fields[J];
      while (F.isPtr() && F.P->Kind == Obj::K::Ind)
        F = F.P->Val;
      if (F.isInt())
        S += std::to_string(F.I);
      else if (F.isDbl())
        S += std::to_string(F.D);
      else
        S += "•";
    }
    return S + "]";
  }
  return "<opaque>";
}

} // namespace

VmResult Vm::run(const Module &M, uint64_t MaxSteps) {
  VmResult R;
  VmStats S;

  Opers.clear();
  Locals.clear();
  Frames.clear();
  // Region-recycle the heap: rewind the cursor instead of destroying the
  // deque, so steady-state runs reuse prior runs' Objs (and their Fields
  // capacity) with no per-object allocator traffic.
  HeapUsed = 0;
  Opers.reserve(256);
  Locals.reserve(1024);
  Frames.reserve(128);

  const Instr *Code = M.Code.data();
  const Proto *Entry = &M.Protos[0];
  Frames.push_back({Entry, 0, 0, 0, nullptr});
  S.MaxFrameDepth = 1;
  Locals.resize(Entry->NumLocals);
  uint32_t IP = Entry->Entry;
  uint32_t LBase = 0;
  const Instr *I = nullptr;

  // Registers of the shared apply/return/prim paths (declared up front:
  // the handlers reach those paths by goto, which must not jump over
  // initializations).
  Slot ApFn;            ///< The applied value.
  uint32_t ApN = 0;     ///< Argument count; args are Opers' top ApN slots.
  uint32_t ApFloor = 0; ///< Operand floor the application's value lands on.
  uint32_t ApRetIP = 0; ///< Continuation code index.
  Obj *ApUpd = nullptr; ///< Thunk the application's value updates, if any.
  bool ApTail = false;  ///< Ledger: TailCalls vs Calls.
  Slot RetV;            ///< Value being returned.
  Slot PrLhs, PrRhs;    ///< Primop operands.

  auto deref = [](Slot V) {
    while (V.isPtr() && V.P->Kind == Obj::K::Ind)
      V = V.P->Val;
    return V;
  };

  // Hands out the next region slot, reinitializing a recycled Obj to the
  // same state emplace_back() would give a fresh one (Fields keeps its
  // capacity — that is the point).
  auto AllocObj = [&]() -> Obj & {
    if (HeapUsed == Heap.size()) {
      ++HeapUsed;
      return Heap.emplace_back();
    }
    Obj &O = Heap[HeapUsed++];
    O.Kind = Obj::K::Thunk;
    O.IsBox = false;
    O.Tag = 0;
    O.ProtoIdx = 0;
    O.Val = Slot();
    O.Fields.clear();
    return O;
  };

  // Live field/capture slots across all heap objects, for the byte-level
  // peak meter (updated at every alloc, released on thunk update).
  size_t FieldSlots = 0;
  auto NoteAlloc = [&](size_t NewFields) {
    FieldSlots += NewFields;
    if (HeapUsed > S.MaxHeapObjects)
      S.MaxHeapObjects = HeapUsed;
    size_t LiveBytes = HeapUsed * sizeof(Obj) + FieldSlots * sizeof(Slot);
    if (LiveBytes > S.PeakHeapBytes)
      S.PeakHeapBytes = LiveBytes;
  };

#define VM_STUCK(Msg)                                                          \
  do {                                                                         \
    R.Out = VmResult::Outcome::Stuck;                                          \
    R.StuckReason = (Msg);                                                     \
    goto Done;                                                                 \
  } while (0)

#if LEVITY_VM_COMPUTED_GOTO
  static const void *JumpTable[NumOps] = {
      &&Lb_PushInt,  &&Lb_PushDbl,     &&Lb_LoadLocal, &&Lb_LoadForce,
      &&Lb_StoreLocal, &&Lb_StoreStrict, &&Lb_MkClosure, &&Lb_MkClosureRec,
      &&Lb_MkThunk,  &&Lb_MkThunkRec,  &&Lb_Call,      &&Lb_TailCall,
      &&Lb_Return,   &&Lb_Prim,        &&Lb_MkBox,     &&Lb_UnBox,
      &&Lb_AllocCon, &&Lb_Jump,        &&Lb_If0,       &&Lb_Switch,
      &&Lb_Error,    &&Lb_CallN,       &&Lb_TailCallN, &&Lb_PrimLocal,
      &&Lb_PrimInt,  &&Lb_ReturnLocal};
#define VM_CASE(Name) Lb_##Name
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (S.Steps == MaxSteps)                                                   \
      goto FuelOut;                                                            \
    ++S.Steps;                                                                 \
    I = &Code[IP++];                                                           \
    goto *JumpTable[static_cast<uint8_t>(I->Code)];                            \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(Name) case Op::Name
#define VM_NEXT() goto Dispatch
Dispatch:
  if (S.Steps == MaxSteps)
    goto FuelOut;
  ++S.Steps;
  I = &Code[IP++];
  switch (I->Code) {
#endif

  VM_CASE(PushInt) : {
    Opers.push_back(Slot::ofInt(M.IntPool[static_cast<uint32_t>(I->C)]));
  }
  VM_NEXT();

  VM_CASE(PushDbl) : {
    Opers.push_back(Slot::ofDbl(M.DblPool[static_cast<uint32_t>(I->C)]));
  }
  VM_NEXT();

  VM_CASE(LoadLocal) : { Opers.push_back(Locals[LBase + I->B]); }
  VM_NEXT();

  VM_CASE(LoadForce) : {
    Slot V = Locals[LBase + I->B];
    for (;;) {
      if (!V.isPtr()) {
        // A heap cell can hold a raw unboxed value (rule VAL on a
        // literal right-hand side); it is already WHNF.
        ++S.VarLookups;
        Opers.push_back(V);
        break;
      }
      Obj *O = V.P;
      if (O->Kind == Obj::K::Ind) {
        V = O->Val;
        continue;
      }
      if (O->Kind == Obj::K::Closure || O->Kind == Obj::K::Con ||
          O->Kind == Obj::K::Pap) {
        ++S.VarLookups;
        Opers.push_back(V);
        break;
      }
      if (O->Kind == Obj::K::Blackhole)
        VM_STUCK("dangling heap pointer (thunk forced while evaluating)");
      // Thunk: black-hole the cell and enter its proto (rule EVAL). The
      // frame remembers the cell so Return writes the value back (FCE).
      const Proto *Q = &M.Protos[O->ProtoIdx];
      O->Kind = Obj::K::Blackhole;
      ++S.ThunkEvals;
      uint32_t NewLBase = static_cast<uint32_t>(Locals.size());
      Frames.push_back({Q, IP, NewLBase,
                        static_cast<uint32_t>(Opers.size()), O});
      if (Frames.size() > S.MaxFrameDepth)
        S.MaxFrameDepth = Frames.size();
      Locals.resize(NewLBase + Q->NumLocals);
      for (size_t J = 0; J != O->Fields.size(); ++J)
        Locals[NewLBase + J] = O->Fields[J];
      // Keep the captures while blackholed: an aborted run (fuel, stuck,
      // error) reverts the cell to Thunk at Done, and that is only sound
      // if the thunk's environment is still intact. The slots are
      // released on update instead (Return).
      LBase = NewLBase;
      IP = Q->Entry;
      break;
    }
  }
  VM_NEXT();

  VM_CASE(StoreLocal) : {
    Locals[LBase + I->B] = Opers.back();
    Opers.pop_back();
  }
  VM_NEXT();

  VM_CASE(StoreStrict) : {
    Slot V = Opers.back();
    Opers.pop_back();
    switch (static_cast<VarSort>(I->A)) {
    case VarSort::Ptr:
      VM_STUCK("let! continuation over a pointer binder");
    case VarSort::Int:
      if (!V.isInt())
        VM_STUCK("let! continuation expects an integer literal");
      break;
    case VarSort::Dbl:
      if (!V.isDbl())
        VM_STUCK("let! continuation expects a double literal");
      break;
    }
    Locals[LBase + I->B] = V;
  }
  VM_NEXT();

  VM_CASE(MkClosure) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Closure;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(MkClosureRec) : {
    // RECLET: the destination slot is written before captures are
    // copied, so a self-capture ties the knot through the fresh cell.
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Closure;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    Locals[LBase + I->B] = Slot::ofPtr(&O);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    ++S.Knots;
    NoteAlloc(O.Fields.size());
  }
  VM_NEXT();

  VM_CASE(MkThunk) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Thunk;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(MkThunkRec) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Thunk;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    Locals[LBase + I->B] = Slot::ofPtr(&O);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    ++S.Knots;
    NoteAlloc(O.Fields.size());
  }
  VM_NEXT();

  VM_CASE(Call) : {
    // One-argument apply: remove the function (one slot below the arg),
    // shifting the arg down onto the operand floor.
    const size_t FnPos = Opers.size() - 2;
    ApFn = Opers[FnPos];
    Opers[FnPos] = Opers.back();
    Opers.pop_back();
    ApN = 1;
    ApFloor = static_cast<uint32_t>(FnPos);
    ApRetIP = IP;
    ApUpd = nullptr;
    ApTail = false;
    goto DoApply;
  }

  VM_CASE(CallN) : {
    const uint32_t N = I->B;
    const size_t FnPos = Opers.size() - N - 1;
    ApFn = Opers[FnPos];
    Opers.erase(Opers.begin() + static_cast<ptrdiff_t>(FnPos));
    ApN = N;
    ApFloor = static_cast<uint32_t>(FnPos);
    ApRetIP = IP;
    ApUpd = nullptr;
    ApTail = false;
    ++S.UncurriedCalls;
    goto DoApply;
  }

  VM_CASE(TailCall) : {
    ApN = 1;
    goto DoTailCall;
  }

  VM_CASE(TailCallN) : {
    ApN = I->B;
    ++S.UncurriedCalls;
    goto DoTailCall;
  }

  DoTailCall : {
    // Replace the current frame: its continuation (return address, thunk
    // update, operand floor) becomes the application's continuation — a
    // tail call inside a thunk body must still write the eventual value
    // back to the thunk's cell. Any pending over-application args the
    // frame holds (directly below its floor) are appended to this call's
    // args: applying f to [tail-args ++ pend-args] left to right is
    // exactly "apply f to the tail args, then the result to the pending
    // ones".
    const FrameRec F = Frames.back();
    Frames.pop_back();
    const uint32_t X = F.OBase - F.PendArgs;
    const size_t FnPos = Opers.size() - ApN - 1;
    ApFn = Opers[FnPos];
    ApBuf.assign(Opers.begin() + static_cast<ptrdiff_t>(FnPos) + 1,
                 Opers.end());
    // Keep the pending args below the floor, drop everything above it
    // (the function and any leftover operands), then splice this call's
    // args in *below* the pending batch — first-applied deepest.
    Opers.resize(F.OBase);
    Opers.insert(Opers.begin() + X, ApBuf.begin(), ApBuf.end());
    ApN += F.PendArgs;
    ApFloor = X;
    ApRetIP = F.ReturnIP;
    ApUpd = F.Update;
    ApTail = true;
    Locals.resize(F.LBase);
    goto DoApply;
  }

  DoApply : {
    // The eval/apply loop: ApN args sit on top of Opers (first-applied
    // deepest, args base == ApFloor), ApFn is the value being applied.
    // Terminates by entering a proto at saturation, building a PAP on
    // under-application, or sticking — each pass consumes or produces
    // at least one argument, so it is bounded without burning fuel.
    for (;;) {
      ApFn = deref(ApFn);
      const size_t ArgsBase = Opers.size() - ApN;
      if (!ApFn.isPtr() || (ApFn.P->Kind != Obj::K::Closure &&
                            ApFn.P->Kind != Obj::K::Pap))
        VM_STUCK(appStuckMsg(Opers[ArgsBase].Kind));
      Obj *FO = ApFn.P;
      if (FO->Kind == Obj::K::Pap) {
        // Unfold: the PAP's stored args were applied first, so they go
        // below the new batch; retry against the underlying closure.
        Opers.insert(Opers.begin() + static_cast<ptrdiff_t>(ArgsBase),
                     FO->Fields.begin(), FO->Fields.end());
        ApN += static_cast<uint32_t>(FO->Fields.size());
        ApFn = FO->Val;
        continue;
      }
      const Proto *Q = &M.Protos[FO->ProtoIdx];
      const uint32_t A = Q->numParams();
      if (A == 0)
        VM_STUCK(appStuckMsg(Opers[ArgsBase].Kind));
      // Calling conventions are checked in application order, so the
      // first mismatching argument reports — same message the machine's
      // one-arg-at-a-time BETA sequence would pick.
      const uint32_t Use = ApN < A ? ApN : A;
      for (uint32_t J = 0; J != Use; ++J)
        if (Q->ParamSorts[J] != Opers[ArgsBase + J].Kind)
          VM_STUCK(ccMismatchMsg(Opers[ArgsBase + J].Kind));
      if (ApN < A) {
        // Under-application: the value is a PAP — return it to the
        // continuation (updating the pending thunk, if any).
        Obj &O = AllocObj();
        O.Kind = Obj::K::Pap;
        O.Val = ApFn;
        O.Fields.assign(Opers.begin() + static_cast<ptrdiff_t>(ArgsBase),
                        Opers.end());
        ++S.Allocations;
        ++S.PapAllocs;
        NoteAlloc(O.Fields.size());
        RetV = Slot::ofPtr(&O);
        if (ApUpd) {
          ApUpd->Kind = Obj::K::Ind;
          ApUpd->Val = RetV;
          FieldSlots -= ApUpd->Fields.size();
          ApUpd->Fields.clear();
          ++S.ThunkUpdates;
        }
        Opers.resize(ApFloor);
        Opers.push_back(RetV);
        if (Frames.empty())
          goto Finished;
        LBase = Frames.back().LBase;
        IP = ApRetIP;
        break;
      }
      // Saturation: enter the proto with the first A args in frame
      // slots. Surplus args (over-application) slide down to the floor
      // and wait below the new frame as its PendArgs.
      if (ApTail)
        ++S.TailCalls;
      else
        ++S.Calls;
      const uint32_t NewLBase = static_cast<uint32_t>(Locals.size());
      Locals.resize(NewLBase + Q->NumLocals);
      const std::vector<Slot> &Env = FO->Fields;
      for (size_t J = 0; J != Env.size(); ++J)
        Locals[NewLBase + J] = Env[J];
      for (uint32_t J = 0; J != A; ++J)
        Locals[NewLBase + Env.size() + J] = Opers[ArgsBase + J];
      const uint32_t Pend = ApN - A;
      for (uint32_t J = 0; J != Pend; ++J)
        Opers[ApFloor + J] = Opers[ArgsBase + A + J];
      Opers.resize(ApFloor + Pend);
      Frames.push_back({Q, ApRetIP, NewLBase, ApFloor + Pend, ApUpd, Pend});
      if (Frames.size() > S.MaxFrameDepth)
        S.MaxFrameDepth = Frames.size();
      LBase = NewLBase;
      IP = Q->Entry;
      break;
    }
  }
  VM_NEXT();

  VM_CASE(Return) : {
    RetV = Opers.back();
    goto DoReturn;
  }

  VM_CASE(ReturnLocal) : {
    ++S.FusedOps;
    RetV = Locals[LBase + I->B];
    goto DoReturn;
  }

  DoReturn : {
    FrameRec F = Frames.back();
    Frames.pop_back();
    Opers.resize(F.OBase);
    Locals.resize(F.LBase);
    if (F.PendArgs != 0) {
      // Over-application surplus: the returned value is itself applied
      // to the args waiting below the frame's floor, inheriting the
      // frame's continuation (return address and thunk update — the
      // thunk's value is the *full* application's result).
      ApFn = RetV;
      ApN = F.PendArgs;
      ApFloor = F.OBase - F.PendArgs;
      ApRetIP = F.ReturnIP;
      ApUpd = F.Update;
      ApTail = false;
      goto DoApply;
    }
    if (F.Update) {
      F.Update->Kind = Obj::K::Ind;
      F.Update->Val = RetV;
      // The captures are dead once the thunk is an indirection (they
      // were kept through the blackhole phase for abort-retryability).
      FieldSlots -= F.Update->Fields.size();
      F.Update->Fields.clear();
      ++S.ThunkUpdates;
    }
    Opers.push_back(RetV);
    if (Frames.empty())
      goto Finished;
    LBase = Frames.back().LBase;
    IP = F.ReturnIP;
  }
  VM_NEXT();

  VM_CASE(Prim) : {
    PrRhs = Opers.back();
    Opers.pop_back();
    goto DoPrim;
  }

  VM_CASE(PrimLocal) : {
    ++S.FusedOps;
    PrRhs = Locals[LBase + I->B];
    goto DoPrim;
  }

  VM_CASE(PrimInt) : {
    ++S.FusedOps;
    PrRhs = Slot::ofInt(M.IntPool[static_cast<uint32_t>(I->C)]);
    goto DoPrim;
  }

  DoPrim : {
    // Shared primop body: the lhs is the operand-stack top and the
    // result overwrites it in place; the rhs came from the stack (Prim),
    // a frame slot (PrimLocal), or the Int# pool (PrimInt).
    PrLhs = Opers.back();
    const MPrim OpK = static_cast<MPrim>(I->A);
    ++S.Prims;
    if (mcalc::mPrimTakesDouble(OpK)) {
      if (!PrLhs.isDbl() || !PrRhs.isDbl())
        VM_STUCK("integer atom in a double primop");
      if (mcalc::mPrimReturnsDouble(OpK))
        Opers.back() = Slot::ofDbl(mcalc::evalMPrimDD(OpK, PrLhs.D, PrRhs.D));
      else
        Opers.back() = Slot::ofInt(mcalc::evalMPrimDI(OpK, PrLhs.D, PrRhs.D));
    } else {
      if (!PrLhs.isInt() || !PrRhs.isInt())
        VM_STUCK("double atom in an integer primop");
      if (OpK == MPrim::Quot || OpK == MPrim::Rem) {
        if (PrRhs.I == 0)
          VM_STUCK("divide by zero");
        if (PrLhs.I == std::numeric_limits<int64_t>::min() && PrRhs.I == -1)
          VM_STUCK("integer overflow in division");
      }
      Opers.back() = Slot::ofInt(mcalc::evalMPrim(OpK, PrLhs.I, PrRhs.I));
    }
  }
  VM_NEXT();

  VM_CASE(MkBox) : {
    Slot V = Opers.back();
    if (!V.isInt())
      VM_STUCK("I# box over a non-integer atom");
    Obj &O = AllocObj();
    O.Kind = Obj::K::Con;
    O.IsBox = true;
    O.Tag = 0;
    O.Fields.assign(1, V);
    ++S.Allocations;
    ++S.ConAllocs;
    NoteAlloc(O.Fields.size());
    Opers.back() = Slot::ofPtr(&O);
  }
  VM_NEXT();

  VM_CASE(UnBox) : {
    Slot V = deref(Opers.back());
    Opers.pop_back();
    if (static_cast<VarSort>(I->A) != VarSort::Int || !V.isPtr() ||
        V.P->Kind != Obj::K::Con || !V.P->IsBox)
      VM_STUCK("case continuation expects I#[n]");
    Locals[LBase + I->B] = V.P->Fields[0];
  }
  VM_NEXT();

  VM_CASE(AllocCon) : {
    const uint32_t NF = I->B;
    Obj &O = AllocObj();
    O.Kind = Obj::K::Con;
    O.Tag = static_cast<uint32_t>(I->C);
    O.Fields.resize(NF);
    for (uint32_t J = NF; J-- > 0;) {
      O.Fields[J] = Opers.back();
      Opers.pop_back();
    }
    ++S.Allocations;
    ++S.ConAllocs;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(Jump) : { IP = static_cast<uint32_t>(I->C); }
  VM_NEXT();

  VM_CASE(If0) : {
    Slot V = Opers.back();
    Opers.pop_back();
    if (!V.isInt())
      VM_STUCK("if0 scrutinee is not an integer literal");
    ++S.Branches;
    if (V.I != 0)
      IP = static_cast<uint32_t>(I->C);
  }
  VM_NEXT();

  VM_CASE(Switch) : {
    Slot V = deref(Opers.back());
    Opers.pop_back();
    ++S.Switches;
    const SwitchTable &T = M.Tables[static_cast<uint32_t>(I->C)];
    bool Taken = false;
    if (V.isPtr()) {
      const Obj *O = V.P;
      if (O->Kind == Obj::K::Con && !O->IsBox) {
        const SwitchAlt *Chosen = nullptr;
        if (!T.DenseAltIdx.empty()) {
          // Dense dispatch: all alternatives are constructor tags in a
          // compact range, so the tag indexes the alternative directly
          // (unsigned wrap makes below-base tags fall out of range).
          const uint32_t Off = O->Tag - T.DenseTagBase;
          if (Off < T.DenseAltIdx.size() && T.DenseAltIdx[Off] >= 0)
            Chosen = &T.Alts[static_cast<size_t>(T.DenseAltIdx[Off])];
        } else {
          for (const SwitchAlt &A : T.Alts)
            if (A.Pat == static_cast<uint8_t>(mcalc::MAlt::PatKind::Con) &&
                A.Tag == O->Tag) {
              Chosen = &A;
              break;
            }
        }
        if (Chosen) {
          const SwitchAlt &A = *Chosen;
          if (A.BinderSorts.size() != O->Fields.size())
            VM_STUCK("switch alternative arity mismatch");
          for (size_t J = 0; J != O->Fields.size(); ++J)
            if (A.BinderSorts[J] != O->Fields[J].Kind)
              VM_STUCK("switch binder register-class mismatch");
          for (size_t J = 0; J != O->Fields.size(); ++J)
            Locals[LBase + A.BindersBase + J] = O->Fields[J];
          ++S.Branches;
          IP = A.Target;
          Taken = true;
        }
      } else if (O->Kind == Obj::K::Con) {
        // I#[n]: tag 0 of Int, one strict Int# field (IMAT via SWITCHk).
        for (const SwitchAlt &A : T.Alts) {
          if (A.Pat != static_cast<uint8_t>(mcalc::MAlt::PatKind::Con) ||
              A.Tag != 0)
            continue;
          if (A.BinderSorts.size() != 1 ||
              A.BinderSorts[0] != static_cast<uint8_t>(VarSort::Int))
            VM_STUCK("switch alternative arity mismatch");
          Locals[LBase + A.BindersBase] = O->Fields[0];
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
      } else if (!T.Alts.empty()) {
        VM_STUCK("switch scrutinee value matches no pattern sort");
      }
    } else if (V.isInt()) {
      for (const SwitchAlt &A : T.Alts)
        if (A.Pat == static_cast<uint8_t>(mcalc::MAlt::PatKind::Int) &&
            A.IntVal == V.I) {
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
    } else {
      for (const SwitchAlt &A : T.Alts)
        if (A.Pat == static_cast<uint8_t>(mcalc::MAlt::PatKind::Dbl) &&
            A.DblVal == V.D) {
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
    }
    if (!Taken) {
      if (T.DefaultTarget < 0)
        VM_STUCK("no matching switch alternative");
      ++S.Branches;
      IP = static_cast<uint32_t>(T.DefaultTarget);
    }
  }
  VM_NEXT();

  VM_CASE(Error) : {
    R.Out = VmResult::Outcome::Bottom;
    if (I->C >= 0)
      R.ErrorMessage = M.StrPool[static_cast<uint32_t>(I->C)];
    goto Done;
  }

#if !LEVITY_VM_COMPUTED_GOTO
  }
  VM_STUCK("invalid opcode"); // Unreachable: validate() bounds opcodes.
#endif

FuelOut:
  R.Out = VmResult::Outcome::OutOfFuel;
  goto Done;

Finished : {
  R.Out = VmResult::Outcome::Value;
  Slot V = deref(Opers.back());
  R.Display = renderValue(V);
  if (V.isInt())
    R.IntValue = V.I;
  else if (V.isDbl())
    R.DoubleValue = V.D;
  else if (V.P->Kind == Obj::K::Con && V.P->IsBox)
    R.IntValue = V.P->Fields[0].I;
}

Done:
  // Abnormal exits (stuck, bottom, out of fuel) abandon the frame stack
  // with every pending update frame's thunk still blackholed. Revert
  // them to runnable thunks — captures were kept while blackholed — so
  // a reused per-Executor Vm can retry the same Compilation: the VM
  // mirror of the tree interpreter's un-blackhole unwind. Value exits
  // emptied the stack, so the loop is a no-op there.
  for (const FrameRec &F : Frames)
    if (F.Update && F.Update->Kind == Obj::K::Blackhole)
      F.Update->Kind = Obj::K::Thunk;
  R.Stats = S;
  return R;

#undef VM_STUCK
#undef VM_CASE
#undef VM_NEXT
}
