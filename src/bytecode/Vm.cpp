//===- Vm.cpp - Threaded interpreter for bytecode Modules -----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The dispatch loop. On GCC/Clang it is a threaded interpreter: each
// handler ends by loading the next opcode and jumping straight to its
// label (computed goto), so the branch predictor learns per-opcode
// successor patterns instead of funnelling every instruction through one
// switch. A portable switch fallback compiles everywhere else (or with
// -DLEVITY_VM_NO_COMPUTED_GOTO for differential testing of the two
// loops).
//
// The loop performs no operand bounds checks: validate() proved every
// slot/pool/target operand in range and the stack-effect dataflow exact,
// so the only runtime checks left are the semantic ones the term machine
// itself performs (value shapes, register classes, division guards) —
// each mapping to the machine's stuck conditions.
//
// Frames share one contiguous Slot stack for locals and one for
// operands; a frame is three integers and two pointers. Tail calls reuse
// the frame in place — the iterative sum-to loop runs at constant frame
// depth — while preserving the pending thunk update, so a tail call
// inside a forced thunk still writes the result back (FCE).
//
//===----------------------------------------------------------------------===//

#include "bytecode/Vm.h"

#include <limits>

using namespace levity;
using namespace levity::bytecode;
using mcalc::MPrim;
using mcalc::VarSort;

#if (defined(__GNUC__) || defined(__clang__)) &&                               \
    !defined(LEVITY_VM_NO_COMPUTED_GOTO)
#define LEVITY_VM_COMPUTED_GOTO 1
#else
#define LEVITY_VM_COMPUTED_GOTO 0
#endif

namespace {

/// The machine's APP-against-non-lambda stucks, keyed by the pending
/// argument's register class (mirrors Frame::AppPtr/AppLit/AppDbl).
const char *appStuckMsg(uint8_t ArgKind) {
  switch (static_cast<VarSort>(ArgKind)) {
  case VarSort::Ptr:
    return "App(p) against a non-lambda value";
  case VarSort::Int:
    return "App(n) against a non-lambda value";
  case VarSort::Dbl:
    return "App(d) against a non-lambda value";
  }
  return "App against a non-lambda value";
}

/// The machine's calling-convention stucks, keyed the same way.
const char *ccMismatchMsg(uint8_t ArgKind) {
  switch (static_cast<VarSort>(ArgKind)) {
  case VarSort::Ptr:
    return "calling-convention mismatch: pointer argument for an "
           "integer-register parameter";
  case VarSort::Int:
    return "calling-convention mismatch: integer argument for a "
           "non-integer-register parameter";
  case VarSort::Dbl:
    return "calling-convention mismatch: double argument for a "
           "non-double-register parameter";
  }
  return "calling-convention mismatch";
}

/// Renders a WHNF slot for RunResult::Display (shallow, like the
/// machine's Term::str() on the final value).
std::string renderValue(Slot V) {
  while (V.isPtr() && V.P->Kind == Obj::K::Ind)
    V = V.P->Val;
  if (V.isInt())
    return std::to_string(V.I);
  if (V.isDbl())
    return std::to_string(V.D);
  const Obj *O = V.P;
  if (O->Kind == Obj::K::Closure)
    return "<closure>";
  if (O->Kind == Obj::K::Con) {
    if (O->IsBox)
      return "I#[" + std::to_string(O->Fields[0].I) + "]";
    std::string S = "CON " + std::to_string(O->Tag) + " [";
    for (size_t J = 0; J != O->Fields.size(); ++J) {
      if (J)
        S += ", ";
      Slot F = O->Fields[J];
      while (F.isPtr() && F.P->Kind == Obj::K::Ind)
        F = F.P->Val;
      if (F.isInt())
        S += std::to_string(F.I);
      else if (F.isDbl())
        S += std::to_string(F.D);
      else
        S += "•";
    }
    return S + "]";
  }
  return "<opaque>";
}

} // namespace

VmResult Vm::run(const Module &M, uint64_t MaxSteps) {
  VmResult R;
  VmStats S;

  Opers.clear();
  Locals.clear();
  Frames.clear();
  // Region-recycle the heap: rewind the cursor instead of destroying the
  // deque, so steady-state runs reuse prior runs' Objs (and their Fields
  // capacity) with no per-object allocator traffic.
  HeapUsed = 0;
  Opers.reserve(256);
  Locals.reserve(1024);
  Frames.reserve(128);

  const Instr *Code = M.Code.data();
  const Proto *Entry = &M.Protos[0];
  Frames.push_back({Entry, 0, 0, 0, nullptr});
  S.MaxFrameDepth = 1;
  Locals.resize(Entry->NumLocals);
  uint32_t IP = Entry->Entry;
  uint32_t LBase = 0;
  const Instr *I = nullptr;

  auto deref = [](Slot V) {
    while (V.isPtr() && V.P->Kind == Obj::K::Ind)
      V = V.P->Val;
    return V;
  };

  // Hands out the next region slot, reinitializing a recycled Obj to the
  // same state emplace_back() would give a fresh one (Fields keeps its
  // capacity — that is the point).
  auto AllocObj = [&]() -> Obj & {
    if (HeapUsed == Heap.size()) {
      ++HeapUsed;
      return Heap.emplace_back();
    }
    Obj &O = Heap[HeapUsed++];
    O.Kind = Obj::K::Thunk;
    O.IsBox = false;
    O.Tag = 0;
    O.ProtoIdx = 0;
    O.Val = Slot();
    O.Fields.clear();
    return O;
  };

  // Live field/capture slots across all heap objects, for the byte-level
  // peak meter (updated at every alloc, released on thunk update).
  size_t FieldSlots = 0;
  auto NoteAlloc = [&](size_t NewFields) {
    FieldSlots += NewFields;
    if (HeapUsed > S.MaxHeapObjects)
      S.MaxHeapObjects = HeapUsed;
    size_t LiveBytes = HeapUsed * sizeof(Obj) + FieldSlots * sizeof(Slot);
    if (LiveBytes > S.PeakHeapBytes)
      S.PeakHeapBytes = LiveBytes;
  };

#define VM_STUCK(Msg)                                                          \
  do {                                                                         \
    R.Out = VmResult::Outcome::Stuck;                                          \
    R.StuckReason = (Msg);                                                     \
    goto Done;                                                                 \
  } while (0)

#if LEVITY_VM_COMPUTED_GOTO
  static const void *JumpTable[NumOps] = {
      &&Lb_PushInt,  &&Lb_PushDbl,     &&Lb_LoadLocal, &&Lb_LoadForce,
      &&Lb_StoreLocal, &&Lb_StoreStrict, &&Lb_MkClosure, &&Lb_MkClosureRec,
      &&Lb_MkThunk,  &&Lb_MkThunkRec,  &&Lb_Call,      &&Lb_TailCall,
      &&Lb_Return,   &&Lb_Prim,        &&Lb_MkBox,     &&Lb_UnBox,
      &&Lb_AllocCon, &&Lb_Jump,        &&Lb_If0,       &&Lb_Switch,
      &&Lb_Error};
#define VM_CASE(Name) Lb_##Name
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (S.Steps == MaxSteps)                                                   \
      goto FuelOut;                                                            \
    ++S.Steps;                                                                 \
    I = &Code[IP++];                                                           \
    goto *JumpTable[static_cast<uint8_t>(I->Code)];                            \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(Name) case Op::Name
#define VM_NEXT() goto Dispatch
Dispatch:
  if (S.Steps == MaxSteps)
    goto FuelOut;
  ++S.Steps;
  I = &Code[IP++];
  switch (I->Code) {
#endif

  VM_CASE(PushInt) : {
    Opers.push_back(Slot::ofInt(M.IntPool[static_cast<uint32_t>(I->C)]));
  }
  VM_NEXT();

  VM_CASE(PushDbl) : {
    Opers.push_back(Slot::ofDbl(M.DblPool[static_cast<uint32_t>(I->C)]));
  }
  VM_NEXT();

  VM_CASE(LoadLocal) : { Opers.push_back(Locals[LBase + I->B]); }
  VM_NEXT();

  VM_CASE(LoadForce) : {
    Slot V = Locals[LBase + I->B];
    for (;;) {
      if (!V.isPtr()) {
        // A heap cell can hold a raw unboxed value (rule VAL on a
        // literal right-hand side); it is already WHNF.
        ++S.VarLookups;
        Opers.push_back(V);
        break;
      }
      Obj *O = V.P;
      if (O->Kind == Obj::K::Ind) {
        V = O->Val;
        continue;
      }
      if (O->Kind == Obj::K::Closure || O->Kind == Obj::K::Con) {
        ++S.VarLookups;
        Opers.push_back(V);
        break;
      }
      if (O->Kind == Obj::K::Blackhole)
        VM_STUCK("dangling heap pointer (thunk forced while evaluating)");
      // Thunk: black-hole the cell and enter its proto (rule EVAL). The
      // frame remembers the cell so Return writes the value back (FCE).
      const Proto *Q = &M.Protos[O->ProtoIdx];
      O->Kind = Obj::K::Blackhole;
      ++S.ThunkEvals;
      uint32_t NewLBase = static_cast<uint32_t>(Locals.size());
      Frames.push_back({Q, IP, NewLBase,
                        static_cast<uint32_t>(Opers.size()), O});
      if (Frames.size() > S.MaxFrameDepth)
        S.MaxFrameDepth = Frames.size();
      Locals.resize(NewLBase + Q->NumLocals);
      for (size_t J = 0; J != O->Fields.size(); ++J)
        Locals[NewLBase + J] = O->Fields[J];
      // Keep the captures while blackholed: an aborted run (fuel, stuck,
      // error) reverts the cell to Thunk at Done, and that is only sound
      // if the thunk's environment is still intact. The slots are
      // released on update instead (Return).
      LBase = NewLBase;
      IP = Q->Entry;
      break;
    }
  }
  VM_NEXT();

  VM_CASE(StoreLocal) : {
    Locals[LBase + I->B] = Opers.back();
    Opers.pop_back();
  }
  VM_NEXT();

  VM_CASE(StoreStrict) : {
    Slot V = Opers.back();
    Opers.pop_back();
    switch (static_cast<VarSort>(I->A)) {
    case VarSort::Ptr:
      VM_STUCK("let! continuation over a pointer binder");
    case VarSort::Int:
      if (!V.isInt())
        VM_STUCK("let! continuation expects an integer literal");
      break;
    case VarSort::Dbl:
      if (!V.isDbl())
        VM_STUCK("let! continuation expects a double literal");
      break;
    }
    Locals[LBase + I->B] = V;
  }
  VM_NEXT();

  VM_CASE(MkClosure) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Closure;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(MkClosureRec) : {
    // RECLET: the destination slot is written before captures are
    // copied, so a self-capture ties the knot through the fresh cell.
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Closure;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    Locals[LBase + I->B] = Slot::ofPtr(&O);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    ++S.Knots;
    NoteAlloc(O.Fields.size());
  }
  VM_NEXT();

  VM_CASE(MkThunk) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Thunk;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(MkThunkRec) : {
    const Proto &Q = M.Protos[static_cast<uint32_t>(I->C)];
    Obj &O = AllocObj();
    O.Kind = Obj::K::Thunk;
    O.ProtoIdx = static_cast<uint32_t>(I->C);
    Locals[LBase + I->B] = Slot::ofPtr(&O);
    O.Fields.resize(Q.Caps.size());
    for (size_t J = 0; J != Q.Caps.size(); ++J)
      O.Fields[J] = Locals[LBase + Q.Caps[J].Src];
    ++S.Allocations;
    ++S.Knots;
    NoteAlloc(O.Fields.size());
  }
  VM_NEXT();

  VM_CASE(Call) : {
    Slot Arg = Opers.back();
    Opers.pop_back();
    Slot Fn = deref(Opers.back());
    Opers.pop_back();
    if (!Fn.isPtr() || Fn.P->Kind != Obj::K::Closure)
      VM_STUCK(appStuckMsg(Arg.Kind));
    const Proto *Q = &M.Protos[Fn.P->ProtoIdx];
    if (!Q->HasParam)
      VM_STUCK(appStuckMsg(Arg.Kind));
    if (Q->ParamSort != Arg.Kind)
      VM_STUCK(ccMismatchMsg(Arg.Kind));
    ++S.Calls;
    uint32_t NewLBase = static_cast<uint32_t>(Locals.size());
    Frames.push_back(
        {Q, IP, NewLBase, static_cast<uint32_t>(Opers.size()), nullptr});
    if (Frames.size() > S.MaxFrameDepth)
      S.MaxFrameDepth = Frames.size();
    Locals.resize(NewLBase + Q->NumLocals);
    const std::vector<Slot> &Env = Fn.P->Fields;
    for (size_t J = 0; J != Env.size(); ++J)
      Locals[NewLBase + J] = Env[J];
    Locals[NewLBase + Q->paramSlot()] = Arg;
    LBase = NewLBase;
    IP = Q->Entry;
  }
  VM_NEXT();

  VM_CASE(TailCall) : {
    Slot Arg = Opers.back();
    Opers.pop_back();
    Slot Fn = deref(Opers.back());
    Opers.pop_back();
    if (!Fn.isPtr() || Fn.P->Kind != Obj::K::Closure)
      VM_STUCK(appStuckMsg(Arg.Kind));
    const Proto *Q = &M.Protos[Fn.P->ProtoIdx];
    if (!Q->HasParam)
      VM_STUCK(appStuckMsg(Arg.Kind));
    if (Q->ParamSort != Arg.Kind)
      VM_STUCK(ccMismatchMsg(Arg.Kind));
    ++S.TailCalls;
    // Reuse the frame in place: same LBase/OBase, and crucially the same
    // pending Update — a tail call inside a thunk body must still write
    // the eventual value back to the thunk's cell.
    FrameRec &F = Frames.back();
    Opers.resize(F.OBase);
    Locals.resize(F.LBase);
    F.P = Q;
    Locals.resize(F.LBase + Q->NumLocals);
    const std::vector<Slot> &Env = Fn.P->Fields;
    for (size_t J = 0; J != Env.size(); ++J)
      Locals[F.LBase + J] = Env[J];
    Locals[F.LBase + Q->paramSlot()] = Arg;
    LBase = F.LBase;
    IP = Q->Entry;
  }
  VM_NEXT();

  VM_CASE(Return) : {
    Slot V = Opers.back();
    FrameRec F = Frames.back();
    Frames.pop_back();
    Opers.resize(F.OBase);
    Locals.resize(F.LBase);
    if (F.Update) {
      F.Update->Kind = Obj::K::Ind;
      F.Update->Val = V;
      // The captures are dead once the thunk is an indirection (they
      // were kept through the blackhole phase for abort-retryability).
      FieldSlots -= F.Update->Fields.size();
      F.Update->Fields.clear();
      ++S.ThunkUpdates;
    }
    Opers.push_back(V);
    if (Frames.empty())
      goto Finished;
    LBase = Frames.back().LBase;
    IP = F.ReturnIP;
  }
  VM_NEXT();

  VM_CASE(Prim) : {
    Slot Rhs = Opers.back();
    Opers.pop_back();
    Slot Lhs = Opers.back();
    Opers.pop_back();
    const MPrim OpK = static_cast<MPrim>(I->A);
    ++S.Prims;
    if (mcalc::mPrimTakesDouble(OpK)) {
      if (!Lhs.isDbl() || !Rhs.isDbl())
        VM_STUCK("integer atom in a double primop");
      if (mcalc::mPrimReturnsDouble(OpK))
        Opers.push_back(Slot::ofDbl(mcalc::evalMPrimDD(OpK, Lhs.D, Rhs.D)));
      else
        Opers.push_back(Slot::ofInt(mcalc::evalMPrimDI(OpK, Lhs.D, Rhs.D)));
    } else {
      if (!Lhs.isInt() || !Rhs.isInt())
        VM_STUCK("double atom in an integer primop");
      if (OpK == MPrim::Quot || OpK == MPrim::Rem) {
        if (Rhs.I == 0)
          VM_STUCK("divide by zero");
        if (Lhs.I == std::numeric_limits<int64_t>::min() && Rhs.I == -1)
          VM_STUCK("integer overflow in division");
      }
      Opers.push_back(Slot::ofInt(mcalc::evalMPrim(OpK, Lhs.I, Rhs.I)));
    }
  }
  VM_NEXT();

  VM_CASE(MkBox) : {
    Slot V = Opers.back();
    if (!V.isInt())
      VM_STUCK("I# box over a non-integer atom");
    Obj &O = AllocObj();
    O.Kind = Obj::K::Con;
    O.IsBox = true;
    O.Tag = 0;
    O.Fields.assign(1, V);
    ++S.Allocations;
    ++S.ConAllocs;
    NoteAlloc(O.Fields.size());
    Opers.back() = Slot::ofPtr(&O);
  }
  VM_NEXT();

  VM_CASE(UnBox) : {
    Slot V = deref(Opers.back());
    Opers.pop_back();
    if (static_cast<VarSort>(I->A) != VarSort::Int || !V.isPtr() ||
        V.P->Kind != Obj::K::Con || !V.P->IsBox)
      VM_STUCK("case continuation expects I#[n]");
    Locals[LBase + I->B] = V.P->Fields[0];
  }
  VM_NEXT();

  VM_CASE(AllocCon) : {
    const uint32_t NF = I->B;
    Obj &O = AllocObj();
    O.Kind = Obj::K::Con;
    O.Tag = static_cast<uint32_t>(I->C);
    O.Fields.resize(NF);
    for (uint32_t J = NF; J-- > 0;) {
      O.Fields[J] = Opers.back();
      Opers.pop_back();
    }
    ++S.Allocations;
    ++S.ConAllocs;
    NoteAlloc(O.Fields.size());
    Opers.push_back(Slot::ofPtr(&O));
  }
  VM_NEXT();

  VM_CASE(Jump) : { IP = static_cast<uint32_t>(I->C); }
  VM_NEXT();

  VM_CASE(If0) : {
    Slot V = Opers.back();
    Opers.pop_back();
    if (!V.isInt())
      VM_STUCK("if0 scrutinee is not an integer literal");
    ++S.Branches;
    if (V.I != 0)
      IP = static_cast<uint32_t>(I->C);
  }
  VM_NEXT();

  VM_CASE(Switch) : {
    Slot V = deref(Opers.back());
    Opers.pop_back();
    ++S.Switches;
    const SwitchTable &T = M.Tables[static_cast<uint32_t>(I->C)];
    bool Taken = false;
    if (V.isPtr()) {
      const Obj *O = V.P;
      if (O->Kind == Obj::K::Con && !O->IsBox) {
        for (const SwitchAlt &A : T.Alts) {
          if (A.Pat != static_cast<uint8_t>(mcalc::MAlt::PatKind::Con) ||
              A.Tag != O->Tag)
            continue;
          if (A.BinderSorts.size() != O->Fields.size())
            VM_STUCK("switch alternative arity mismatch");
          for (size_t J = 0; J != O->Fields.size(); ++J)
            if (A.BinderSorts[J] != O->Fields[J].Kind)
              VM_STUCK("switch binder register-class mismatch");
          for (size_t J = 0; J != O->Fields.size(); ++J)
            Locals[LBase + A.BindersBase + J] = O->Fields[J];
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
      } else if (O->Kind == Obj::K::Con) {
        // I#[n]: tag 0 of Int, one strict Int# field (IMAT via SWITCHk).
        for (const SwitchAlt &A : T.Alts) {
          if (A.Pat != static_cast<uint8_t>(mcalc::MAlt::PatKind::Con) ||
              A.Tag != 0)
            continue;
          if (A.BinderSorts.size() != 1 ||
              A.BinderSorts[0] != static_cast<uint8_t>(VarSort::Int))
            VM_STUCK("switch alternative arity mismatch");
          Locals[LBase + A.BindersBase] = O->Fields[0];
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
      } else if (!T.Alts.empty()) {
        VM_STUCK("switch scrutinee value matches no pattern sort");
      }
    } else if (V.isInt()) {
      for (const SwitchAlt &A : T.Alts)
        if (A.Pat == static_cast<uint8_t>(mcalc::MAlt::PatKind::Int) &&
            A.IntVal == V.I) {
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
    } else {
      for (const SwitchAlt &A : T.Alts)
        if (A.Pat == static_cast<uint8_t>(mcalc::MAlt::PatKind::Dbl) &&
            A.DblVal == V.D) {
          ++S.Branches;
          IP = A.Target;
          Taken = true;
          break;
        }
    }
    if (!Taken) {
      if (T.DefaultTarget < 0)
        VM_STUCK("no matching switch alternative");
      ++S.Branches;
      IP = static_cast<uint32_t>(T.DefaultTarget);
    }
  }
  VM_NEXT();

  VM_CASE(Error) : {
    R.Out = VmResult::Outcome::Bottom;
    if (I->C >= 0)
      R.ErrorMessage = M.StrPool[static_cast<uint32_t>(I->C)];
    goto Done;
  }

#if !LEVITY_VM_COMPUTED_GOTO
  }
  VM_STUCK("invalid opcode"); // Unreachable: validate() bounds opcodes.
#endif

FuelOut:
  R.Out = VmResult::Outcome::OutOfFuel;
  goto Done;

Finished : {
  R.Out = VmResult::Outcome::Value;
  Slot V = deref(Opers.back());
  R.Display = renderValue(V);
  if (V.isInt())
    R.IntValue = V.I;
  else if (V.isDbl())
    R.DoubleValue = V.D;
  else if (V.P->Kind == Obj::K::Con && V.P->IsBox)
    R.IntValue = V.P->Fields[0].I;
}

Done:
  // Abnormal exits (stuck, bottom, out of fuel) abandon the frame stack
  // with every pending update frame's thunk still blackholed. Revert
  // them to runnable thunks — captures were kept while blackholed — so
  // a reused per-Executor Vm can retry the same Compilation: the VM
  // mirror of the tree interpreter's un-blackhole unwind. Value exits
  // emptied the stack, so the loop is a no-op there.
  for (const FrameRec &F : Frames)
    if (F.Update && F.Update->Kind == Obj::K::Blackhole)
      F.Update->Kind = Obj::K::Thunk;
  R.Stats = S;
  return R;

#undef VM_STUCK
#undef VM_CASE
#undef VM_NEXT
}
