//===- Bytecode.h - Flat bytecode for M terms -------------------*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat bytecode format Backend::Bytecode executes. The paper's
/// central invariant — levity polymorphism pins every binder to one
/// concrete runtime representation — is what makes this tier possible:
/// because every M variable is exactly a pointer, an Int#, or a Double#
/// (mcalc::VarSort), a term can be compiled once into a contiguous
/// instruction stream whose operand stack and frame slots are rep-typed,
/// instead of being small-stepped as a substitution-based term graph.
///
/// A compiled Module is one flat `std::vector<Instr>` (dense opcodes,
/// inline operands) shared by every proto, plus constant pools
/// (Int#/Double# literals, error strings) and switch dispatch tables.
/// Each lambda body, thunk right-hand side, and the entry term itself is
/// a Proto: a code range, a frame-slot count, and the list of enclosing
/// frame slots its closure captures. Runtime values are tagged Slots —
/// Int#/Double# payloads inline, pointers into a per-run object heap
/// (thunks with black-holing update-on-force, closures, CON nodes, and
/// the compact I# box).
///
/// Modules are immutable after compile() and safe to share across any
/// number of VMs/threads. The compiler is total over everything the
/// driver's core→L→ANF→M lowering produces; genuinely out-of-fragment
/// terms (free variables, over-deep nesting) fail with a pinned
/// "bytecode backend: ..." diagnostic and the driver falls back to the
/// term-graph machine — never a miscompile.
///
/// validate() re-checks every structural invariant the VM's dispatch
/// loop trusts (code ranges, slot indices, pool indices, jump targets),
/// so Modules decoded from an untrusted `.levc` BCOD section are exactly
/// as safe to run as freshly compiled ones.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_BYTECODE_BYTECODE_H
#define LEVITY_BYTECODE_BYTECODE_H

#include "mcalc/Syntax.h"
#include "support/Result.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace levity {
namespace bytecode {

/// The instruction set. The numeric values are **stable on-disk tags**:
/// they appear verbatim in the `.levc` BCOD section (driver/Serialize.h,
/// docs/ARTIFACT_FORMAT.md). Never renumber an existing opcode; append
/// new ones at the end (NumOps is folded into the artifact pipeline
/// fingerprint, so growth invalidates stale stores).
enum class Op : uint8_t {
  PushInt = 0,      ///< push IntPool[C]
  PushDbl = 1,      ///< push DblPool[C]
  LoadLocal = 2,    ///< push locals[B] (raw — atoms, lazy args, fields)
  LoadForce = 3,    ///< push locals[B] forced to WHNF (pointer reads)
  StoreLocal = 4,   ///< locals[B] = pop() (unchecked let binding)
  StoreStrict = 5,  ///< locals[B] = pop(), checked against sort A (let!)
  MkClosure = 6,    ///< push closure of Protos[C], capturing per its Caps
  MkClosureRec = 7, ///< locals[B] = closure of Protos[C]; captures see B
  MkThunk = 8,      ///< push thunk of Protos[C], capturing per its Caps
  MkThunkRec = 9,   ///< locals[B] = thunk of Protos[C]; captures see B
  Call = 10,        ///< pop arg, pop fn; enter fn's proto
  TailCall = 11,    ///< like Call, but replaces the current frame
  Return = 12,      ///< pop result; update thunk / return to caller
  Prim = 13,        ///< pop rhs, pop lhs; apply MPrim A; push result
  MkBox = 14,       ///< pop Int#; push the I# box
  UnBox = 15,       ///< pop I# box; locals[B] = field (A = binder sort)
  AllocCon = 16,    ///< pop B fields; push CON node with tag C
  Jump = 17,        ///< IP = C
  If0 = 18,         ///< pop Int#; fall through when 0, else IP = C
  Switch = 19,      ///< pop scrutinee; dispatch via Tables[C]
  Error = 20,       ///< bottom with message StrPool[C] (C < 0: no message)
  CallN = 21,       ///< pop B args then fn; apply fn to all B at once
  TailCallN = 22,   ///< like CallN, but replaces the current frame
  PrimLocal = 23,   ///< pop lhs; apply MPrim A with rhs = locals[B]
  PrimInt = 24,     ///< pop lhs; apply MPrim A with rhs = IntPool[C]
  ReturnLocal = 25, ///< return locals[B] (fused LoadLocal+Return)
};

/// Number of opcodes; folded into the artifact fingerprint so a new
/// instruction invalidates stale stores.
inline constexpr unsigned NumOps = 26;

/// One fixed-width instruction: a dense opcode plus three inline
/// operands (their meaning per opcode is documented on Op).
struct Instr {
  Op Code = Op::Return;
  uint8_t A = 0;  ///< Small operand: primop, expected sort.
  uint16_t B = 0; ///< Frame-slot operand: local index, field count.
  int32_t C = 0;  ///< Wide operand: pool/proto/table index, jump target.
};

/// One captured free variable: the creating frame's slot it is copied
/// from, and its register class (validated when the capture is copied).
struct Capture {
  uint16_t Src = 0;
  uint8_t Sort = 0; ///< mcalc::VarSort value.
};

/// One compilation unit: a lambda body, a thunk right-hand side, or the
/// module's entry term (always proto 0). Code lives in the module-wide
/// stream as the half-open range [Entry, End); frame layout is captures
/// first (slots 0..Caps.size()), then the parameters in order, then the
/// body's binders and scratch slots.
///
/// Protos carry a true arity: a syntactic λx₁…λxₙ run compiles to one
/// proto with N rep-typed parameters, so a saturated call moves every
/// argument into frame slots in one step (eval/apply) — no intermediate
/// closure per argument. Thunk protos have zero parameters; closure
/// protos have at least one; the entry proto is closed (no captures, no
/// parameters).
struct Proto {
  uint32_t Entry = 0;
  uint32_t End = 0;
  uint16_t NumLocals = 0;
  std::vector<uint8_t> ParamSorts; ///< One mcalc::VarSort per parameter.
  std::vector<Capture> Caps;

  uint16_t numParams() const { return static_cast<uint16_t>(ParamSorts.size()); }

  /// Parameter I's frame slot (by convention, right after captures).
  uint16_t paramSlot(uint16_t I = 0) const {
    return static_cast<uint16_t>(Caps.size() + I);
  }
};

/// One alternative of a Switch dispatch table, mirroring mcalc::MAlt:
/// a constructor-tag pattern binding NumBinders consecutive frame slots
/// starting at BindersBase, or an Int#/Double# literal pattern.
struct SwitchAlt {
  uint8_t Pat = 0; ///< mcalc::MAlt::PatKind value.
  uint32_t Tag = 0;
  int64_t IntVal = 0;
  double DblVal = 0;
  uint32_t Target = 0;      ///< Code index of the alternative's body.
  uint16_t BindersBase = 0; ///< First bound frame slot (Con patterns).
  std::vector<uint8_t> BinderSorts; ///< One VarSort per bound field.
};

/// The dispatch table one Switch instruction consults. DefaultTarget is
/// -1 when the alternatives are exhaustive (no match is then stuck,
/// exactly like the machine's SWITCHk rule).
///
/// DenseAltIdx/DenseTagBase are derived dispatch data, rebuilt by
/// buildDispatchTables() after compile() and after BCOD decode — never
/// serialized, never validated. When the alternatives are all
/// constructor-tag patterns over a compact tag range, DenseAltIdx maps
/// `Tag - DenseTagBase` straight to the alternative index (-1: fall to
/// the default/stuck path), replacing the linear pattern scan.
struct SwitchTable {
  std::vector<SwitchAlt> Alts;
  int64_t DefaultTarget = -1;
  uint32_t DenseTagBase = 0;
  std::vector<int32_t> DenseAltIdx; ///< Empty when dense dispatch is off.
};

/// One compiled M term: the flat code stream, its protos, constant
/// pools, and switch tables. Immutable after compile()/decode and safe
/// to share across threads.
struct Module {
  std::vector<Instr> Code;
  std::vector<Proto> Protos; ///< Protos[0] is the entry.
  std::vector<int64_t> IntPool;
  std::vector<double> DblPool;
  std::vector<std::string> StrPool; ///< Error messages.
  std::vector<SwitchTable> Tables;
};

/// The compiler refuses terms nested deeper than this (mirrors
/// levc::MaxTermDepth: recursion depth must stay bounded) and frames
/// needing more slots than a u16 operand can address. Both failures are
/// pinned "bytecode backend: ..." diagnostics the driver answers with a
/// clean fallback to the term-graph machine.
inline constexpr unsigned MaxCompileDepth = 1u << 11;
inline constexpr unsigned MaxFrameSlots = 65535;

/// Compiles a closed M term to bytecode. Fails (never miscompiles) on
/// out-of-fragment shapes: free variables, over-deep nesting, frames
/// over MaxFrameSlots. The result is immutable and shareable.
Result<std::shared_ptr<const Module>> compile(const mcalc::Term *T);

/// Structural validation of everything the VM trusts: proto code ranges
/// partition-safe and terminator-ended, slot/pool/proto/table operands
/// in range, jump and switch targets inside the referencing proto, and
/// capture sources inside the creating frame. compile() output always
/// validates; decoded `.levc` payloads must pass this before running.
bool validate(const Module &M);

/// Rebuilds the derived dense-dispatch tables (SwitchTable::DenseAltIdx)
/// for every switch whose alternatives are all constructor tags in a
/// compact range. Called by compile() on its output and by the artifact
/// decoder after validate(); hand-built Modules run fine without it (the
/// VM falls back to the linear pattern scan).
void buildDispatchTables(Module &M);

} // namespace bytecode
} // namespace levity

#endif // LEVITY_BYTECODE_BYTECODE_H
