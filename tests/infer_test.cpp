//===- infer_test.cpp - Rep unification, defaulting, legacy baseline ------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Section 5.2's inference story (rep metavariables unify like ordinary
// metas; unconstrained ones default to LiftedRep; rep variables are never
// generalized) and the Section 3.2 legacy sub-kinding baseline with its
// pitfalls (experiment E7).
//
//===----------------------------------------------------------------------===//

#include "infer/SubKind.h"
#include "infer/Unify.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::core;
using namespace levity::infer;

namespace {

class UnifyTest : public ::testing::Test {
protected:
  CoreContext C;
  DiagnosticEngine Diags;
  Unifier U{C, Diags};
};

TEST_F(UnifyTest, SolvesTypeMeta) {
  const Type *M = C.freshTypeMeta(C.typeKind());
  EXPECT_TRUE(U.unify(M, C.intTy()));
  EXPECT_TRUE(typeEqual(C.zonkType(M), C.intTy()));
}

// The Section 5.2 recipe: α :: TYPE ν; unifying α with a lifted type
// solves ν := LiftedRep through the kind.
TEST_F(UnifyTest, RepMetaSolvedThroughKind) {
  const Type *Alpha = U.freshOpenMeta();
  EXPECT_TRUE(U.unify(Alpha, C.intTy()));
  const Kind *K =
      C.zonkKind(C.typeMetaCell(cast<MetaType>(Alpha)->id()).MetaKind);
  EXPECT_EQ(K->str(), "Type");
}

TEST_F(UnifyTest, RepMetaSolvedToUnboxed) {
  const Type *Alpha = U.freshOpenMeta();
  EXPECT_TRUE(U.unify(Alpha, C.intHashTy()));
  const Kind *K =
      C.zonkKind(C.typeMetaCell(cast<MetaType>(Alpha)->id()).MetaKind);
  EXPECT_EQ(K->str(), "TYPE IntRep");
}

// One α cannot be both lifted and unboxed: the rep unification fails
// (no sub-kinding escape hatch).
TEST_F(UnifyTest, ConflictingRepsRejected) {
  const Type *Alpha = U.freshOpenMeta();
  // Pin only the *kind*: ν ~ IntRep.
  const Kind *K = C.typeMetaCell(cast<MetaType>(Alpha)->id()).MetaKind;
  EXPECT_TRUE(U.unifyRep(K->rep(), C.intRep()));
  // α :: TYPE IntRep now refuses lifted solutions via kind unification.
  EXPECT_FALSE(U.unify(Alpha, C.intTy()));
  EXPECT_TRUE(Diags.hasError(DiagCode::KindError));

  // And a solved meta refuses re-solution at a different type outright.
  Diags.clear();
  const Type *Beta = U.freshOpenMeta();
  EXPECT_TRUE(U.unify(Beta, C.intHashTy()));
  EXPECT_FALSE(U.unify(Beta, C.intTy()));
  EXPECT_TRUE(Diags.hasErrors());
}

TEST_F(UnifyTest, UnifiesFunctionTypes) {
  const Type *M1 = U.freshOpenMeta();
  const Type *M2 = U.freshOpenMeta();
  const Type *Fn = C.funTy(M1, M2);
  const Type *Target = C.funTy(C.intHashTy(), C.boolTy());
  EXPECT_TRUE(U.unify(Fn, Target));
  EXPECT_TRUE(typeEqual(C.zonkType(M1), C.intHashTy()));
  EXPECT_TRUE(typeEqual(C.zonkType(M2), C.boolTy()));
}

TEST_F(UnifyTest, OccursCheckFires) {
  const Type *M = U.freshOpenMeta();
  const Type *Loop = C.funTy(M, C.intTy());
  EXPECT_FALSE(U.unify(M, Loop));
  EXPECT_TRUE(Diags.hasError(DiagCode::OccursCheck));
}

TEST_F(UnifyTest, UnifiesRepsInsideTuples) {
  const RepTy *Nu = C.freshRepMeta();
  const RepTy *A = C.repTuple({Nu, C.liftedRep()});
  const RepTy *B = C.repTuple({C.intRep(), C.liftedRep()});
  EXPECT_TRUE(U.unifyRep(A, B));
  EXPECT_EQ(C.zonkRep(Nu)->str(), "IntRep");
}

TEST_F(UnifyTest, TupleRepArityMismatch) {
  const RepTy *A = C.repTuple({C.intRep()});
  const RepTy *B = C.repTuple({C.intRep(), C.intRep()});
  EXPECT_FALSE(U.unifyRep(A, B));
}

// Nesting matters for kinds (Section 4.2): TupleRep '[TupleRep '[..]]
// does not unify with the flattened form even though conventions match.
TEST_F(UnifyTest, NestedTupleRepsDoNotUnify) {
  const RepTy *Nested =
      C.repTuple({C.liftedRep(), C.repTuple({C.liftedRep()})});
  const RepTy *Flat = C.repTuple({C.liftedRep(), C.liftedRep()});
  EXPECT_FALSE(U.unifyRep(Nested, Flat));
}

TEST_F(UnifyTest, ForAllAlphaUnification) {
  Symbol A = C.sym("a"), B = C.sym("b");
  const Type *TA = C.forAllTy(
      A, C.typeKind(),
      C.funTy(C.varTy(A, C.typeKind()), C.varTy(A, C.typeKind())));
  const Type *TB = C.forAllTy(
      B, C.typeKind(),
      C.funTy(C.varTy(B, C.typeKind()), C.varTy(B, C.typeKind())));
  EXPECT_TRUE(U.unify(TA, TB));
}

//===--------------------------------------------------------------------===//
// Defaulting and generalization (Section 5.2)
//===--------------------------------------------------------------------===//

// "f x = x" infers a -> a with a :: TYPE ν; generalization must NOT
// produce ∀(r::Rep)(a::TYPE r). a -> a — instead ν defaults to LiftedRep.
TEST_F(UnifyTest, NeverInferLevityPolymorphism) {
  const Type *Alpha = U.freshOpenMeta();
  const Type *IdTy = C.funTy(Alpha, Alpha);
  const Type *Gen = generalize(C, IdTy);
  const auto *F = dyn_cast<ForAllType>(Gen);
  ASSERT_NE(F, nullptr) << Gen->str();
  // Exactly one quantifier, of kind Type — not Rep.
  EXPECT_EQ(F->varKind()->str(), "Type");
  EXPECT_FALSE(isa<ForAllType>(F->body())) << Gen->str();
}

TEST_F(UnifyTest, ConstrainedRepSurvivesGeneralization) {
  const Type *Alpha = U.freshOpenMeta();
  ASSERT_TRUE(U.unify(Alpha, C.intHashTy()));
  const Type *Ty = C.funTy(Alpha, Alpha);
  const Type *Gen = generalize(C, Ty);
  // Fully solved: Int# -> Int#, no quantifiers.
  EXPECT_EQ(Gen->str(), "Int# -> Int#");
}

TEST_F(UnifyTest, MultipleMetasGetDistinctVariables) {
  const Type *A = U.freshOpenMeta();
  const Type *B = U.freshOpenMeta();
  const Type *Ty = C.funTy(A, B);
  const Type *Gen = generalize(C, Ty);
  const auto *F1 = dyn_cast<ForAllType>(Gen);
  ASSERT_NE(F1, nullptr);
  const auto *F2 = dyn_cast<ForAllType>(F1->body());
  ASSERT_NE(F2, nullptr);
  EXPECT_NE(F1->var(), F2->var());
}

TEST_F(UnifyTest, DefaultRepMetasOnly) {
  const Type *Alpha = U.freshOpenMeta();
  const Type *D = defaultRepMetas(C, Alpha);
  // The type meta survives; its kind's rep meta became LiftedRep.
  const auto *M = dyn_cast<MetaType>(D);
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(C.zonkKind(C.typeMetaCell(M->id()).MetaKind)->str(), "Type");
}

//===--------------------------------------------------------------------===//
// Legacy sub-kinding baseline (Section 3.2)
//===--------------------------------------------------------------------===//

class LegacyTest : public ::testing::Test {
protected:
  CoreContext C;
  DiagnosticEngine Diags;
  LegacyChecker L{C, Diags};
};

TEST_F(LegacyTest, Lattice) {
  EXPECT_TRUE(legacySubKind(LegacyKind::Star, LegacyKind::Open));
  EXPECT_TRUE(legacySubKind(LegacyKind::Hash, LegacyKind::Open));
  EXPECT_TRUE(legacySubKind(LegacyKind::Star, LegacyKind::Star));
  EXPECT_FALSE(legacySubKind(LegacyKind::Star, LegacyKind::Hash));
  EXPECT_FALSE(legacySubKind(LegacyKind::Open, LegacyKind::Star));
  EXPECT_EQ(legacyLub(LegacyKind::Star, LegacyKind::Hash),
            LegacyKind::Open);
}

TEST_F(LegacyTest, AllUnboxedTypesCollapseToHash) {
  // The central imprecision: Int# and Double# — different calling
  // conventions! — get the same legacy kind.
  EXPECT_EQ(*L.kindOf(C.intHashTy()), LegacyKind::Hash);
  EXPECT_EQ(*L.kindOf(C.doubleHashTy()), LegacyKind::Hash);
  EXPECT_EQ(*L.kindOf(C.unboxedTupleTy({C.intTy(), C.intTy()})),
            LegacyKind::Hash);
  EXPECT_EQ(*L.kindOf(C.intTy()), LegacyKind::Star);
}

TEST_F(LegacyTest, SaturatedArrowAcceptsHashOperands) {
  // Int# -> Int# is well-kinded only via the saturated special case.
  EXPECT_EQ(*L.kindOf(C.funTy(C.intHashTy(), C.intHashTy())),
            LegacyKind::Star);
}

// The Instantiation Principle: a Type-kinded variable rejects Int#.
TEST_F(LegacyTest, InstantiationPrincipleEnforced) {
  EXPECT_TRUE(L.checkInstantiation(LegacyKind::Star, C.intTy()));
  EXPECT_FALSE(L.checkInstantiation(LegacyKind::Star, C.intHashTy()));
  EXPECT_TRUE(Diags.hasError(DiagCode::InstantiationError));
}

// error :: ∀(a::OpenKind). String → a accepts both.
TEST_F(LegacyTest, MagicErrorAcceptsBoth) {
  EXPECT_TRUE(L.checkInstantiation(LegacyKind::Open, C.intTy()));
  EXPECT_TRUE(L.checkInstantiation(LegacyKind::Open, C.intHashTy()));
}

// The OpenKind leak: rejection messages mention OpenKind (Section 3.2's
// third complaint).
TEST_F(LegacyTest, OpenKindLeaksIntoMessages) {
  L.checkInstantiation(LegacyKind::Star, C.intHashTy());
  EXPECT_NE(Diags.str().find("OpenKind"), std::string::npos);
}

// myError loses the magic: inference defaults the unconstrained kind
// meta to Type, so the wrapper rejects Int# even though error accepts it.
TEST_F(LegacyTest, MyErrorLosesMagic) {
  // Inferring myError s = error ("..." ++ s): the result kind meta has
  // no constraints, so defaulting solves it to Type.
  uint32_t M = L.freshMeta(LegacyKind::Open);
  L.defaultMetas();
  EXPECT_EQ(L.metaValue(M), LegacyKind::Star);
  // And a Type-kinded variable cannot take Int#:
  EXPECT_FALSE(L.checkInstantiation(L.metaValue(M), C.intHashTy()));
}

// Contrast with the new system: the same wrapper *with a signature*
// keeps full levity polymorphism (tested in levity_check_test); and even
// unannotated, the failure mode is deterministic defaulting rather than
// fragile special-casing.

TEST_F(LegacyTest, BoundedMetasTighten) {
  uint32_t M = L.freshMeta(LegacyKind::Open);
  EXPECT_TRUE(L.constrainUpper(M, LegacyKind::Hash));
  L.defaultMetas();
  EXPECT_EQ(L.metaValue(M), LegacyKind::Hash);
}

TEST_F(LegacyTest, ConflictingBoundsRejected) {
  uint32_t M = L.freshMeta(LegacyKind::Open);
  EXPECT_TRUE(L.constrainUpper(M, LegacyKind::Hash));
  EXPECT_FALSE(L.constrainUpper(M, LegacyKind::Star));
  EXPECT_TRUE(Diags.hasError(DiagCode::SubKindError));
}

TEST_F(LegacyTest, VarKindsRespected) {
  Symbol A = C.sym("a");
  L.bindVar(A, LegacyKind::Hash);
  EXPECT_EQ(*L.kindOf(C.varTy(A, C.typeKind())), LegacyKind::Hash);
}

} // namespace
