//===- driver_test.cpp - The compilation-session facade -------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage of driver::Session / driver::Compilation:
//
//   * backend agreement — the tree interpreter and the abstract machine
//     (core → L → ANF → M) compute the same values and the same
//     deterministic allocation counts for the quickstart program;
//   * the compilation cache — identical source returns the *same*
//     Compilation object; distinct source does not;
//   * diagnostics — failing programs carry SourceLoc and DiagCode
//     through the facade;
//   * the formal pipeline riding the same abstraction.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"
#include "runtime/Samples.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <vector>

using namespace levity;
using namespace levity::driver;

namespace {

const char *QuickstartSrc =
    "square :: Int# -> Int# ;"
    "square x = x *# x ;"
    "answer = square 6# +# 6#";

//===----------------------------------------------------------------------===//
// (a) Backend agreement
//===----------------------------------------------------------------------===//

TEST(DriverTest, BackendsAgreeOnQuickstartValue) {
  Session S;
  auto Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("answer", Backend::TreeInterp);
  RunResult Mach = Comp->run("answer", Backend::AbstractMachine);

  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  ASSERT_TRUE(Tree.IntValue.has_value());
  ASSERT_TRUE(Mach.IntValue.has_value());
  EXPECT_EQ(*Tree.IntValue, 42);
  EXPECT_EQ(*Mach.IntValue, 42);
  EXPECT_EQ(*Tree.IntValue, *Mach.IntValue);
}

TEST(DriverTest, BackendsAgreeOnQuickstartAllocations) {
  Session S;
  auto Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("answer", Backend::TreeInterp);
  RunResult Mach = Comp->run("answer", Backend::AbstractMachine);
  ASSERT_TRUE(Tree.ok() && Mach.ok());

  // The program is fully unboxed except for the `square` binding itself:
  // each backend allocates exactly one heap object for it (a closure in
  // the tree interpreter, a LET thunk in the M machine) and nothing per
  // arithmetic step. Both cost models are deterministic.
  EXPECT_EQ(Tree.allocations(), 1u);
  EXPECT_EQ(Mach.allocations(), 1u);
  EXPECT_EQ(Tree.allocations(), Mach.allocations());

  // Re-running through the *Compilation* uses a fresh transient Executor
  // per call: both backends replay from scratch, deterministically.
  RunResult Tree2 = Comp->run("answer", Backend::TreeInterp);
  RunResult Mach2 = Comp->run("answer", Backend::AbstractMachine);
  EXPECT_EQ(Tree2.allocations(), Tree.allocations());
  EXPECT_EQ(Mach2.allocations(), Mach.allocations());
  EXPECT_EQ(Tree2.IntValue.value_or(-1), 42);
}

TEST(DriverTest, ExecutorMemoizesGlobalThunksAcrossRuns) {
  // A long-lived Executor keeps its interpreter: global thunks are
  // memoized, so the second tree run allocates nothing at all. (The
  // machine backend replays from an empty heap on purpose.)
  Session S;
  auto Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  Executor Ex(Comp);
  RunResult First = Ex.run("answer", Backend::TreeInterp);
  ASSERT_TRUE(First.ok()) << First.Error;
  EXPECT_EQ(First.allocations(), 1u);

  RunResult Second = Ex.run("answer", Backend::TreeInterp);
  ASSERT_TRUE(Second.ok()) << Second.Error;
  EXPECT_EQ(Second.allocations(), 0u);
  EXPECT_EQ(Second.IntValue.value_or(-1), 42);

  RunResult Mach = Ex.run("answer", Backend::AbstractMachine);
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Mach.allocations(), 1u);
}

TEST(DriverTest, ExecutorRecoversAfterOutOfFuel) {
  // A failed run must not leave global thunks black-holed: raising the
  // fuel on the same Executor and retrying succeeds (no bogus <<loop>>).
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "total = sumToH 0# 1000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  Executor Ex(Comp);
  Ex.options().MaxInterpSteps = 10; // Starve the first run.
  RunResult Starved = Ex.run("total", Backend::TreeInterp);
  EXPECT_EQ(Starved.St, RunResult::Status::OutOfFuel);

  Ex.options().MaxInterpSteps = 200000000;
  RunResult Retry = Ex.run("total", Backend::TreeInterp);
  ASSERT_TRUE(Retry.ok()) << Retry.Error;
  EXPECT_EQ(Retry.IntValue.value_or(-1), 500500);
}

TEST(DriverTest, RunAndGlobalTypeAreConstOnTheArtifact) {
  // The artifact/executor split's contract: a Compilation is immutable
  // after build, so running and type lookup work through a const ref.
  Session S;
  auto Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  const Compilation &Artifact = *Comp;
  RunResult R = Artifact.run("answer", Backend::TreeInterp);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.IntValue.value_or(-1), 42);

  const core::Type *T = Artifact.globalType("square");
  ASSERT_NE(T, nullptr);
  EXPECT_NE(T->str().find("Int#"), std::string::npos) << T->str();

  static_assert(
      std::is_same_v<decltype(&Compilation::globalType),
                     const core::Type *(Compilation::*)(std::string_view)
                         const>,
      "globalType must be const-qualified");
}

TEST(DriverTest, BackendsAgreeOnBoxedProgram) {
  Session S;
  auto Comp = S.compile("inc :: Int -> Int ;"
                        "inc n = case n of { I# x -> I# (x +# 1#) } ;"
                        "answer = inc (inc (I# 40#))");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("answer", Backend::TreeInterp);
  RunResult Mach = Comp->run("answer", Backend::AbstractMachine);
  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Tree.IntValue.value_or(-1), 42);
  EXPECT_EQ(Mach.IntValue.value_or(-1), 42);
}

TEST(DriverTest, BackendsAgreeOnDoubleProgram) {
  // Double# is a second unboxed literal sort in L/M: both backends run
  // double arithmetic and agree on the value.
  Session S;
  auto Comp = S.compile("half = 21.0## +## 0.5##");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("half", Backend::TreeInterp);
  RunResult Mach = Comp->run("half", Backend::AbstractMachine);
  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_DOUBLE_EQ(Tree.DoubleValue.value_or(-1), 21.5);
  EXPECT_DOUBLE_EQ(Mach.DoubleValue.value_or(-1), 21.5);
}

TEST(DriverTest, BackendsAgreeOnRecursiveLoop) {
  // The flagship Section 2.1 loop: self-recursion lowers to L's fix and
  // the machine ties the knot through the heap (RECLET).
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "total = sumToH 0# 100#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("total", Backend::TreeInterp);
  RunResult Mach = Comp->run("total", Backend::AbstractMachine);
  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Tree.IntValue.value_or(-1), 5050);
  EXPECT_EQ(Mach.IntValue.value_or(-1), 5050);
  EXPECT_GT(Mach.Machine.Knots, 0u);
}

TEST(DriverTest, BackendsAgreeOnComparisonPrimops) {
  Session S;
  auto Comp = S.compile("a = 3# <# 4# ;"
                        "b = 4# <=# 3# ;"
                        "c = 5# ==# 5# ;"
                        "d = 2.5## <## 2.75##");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  for (const char *Name : {"a", "b", "c", "d"}) {
    RunResult Tree = Comp->run(Name, Backend::TreeInterp);
    RunResult Mach = Comp->run(Name, Backend::AbstractMachine);
    ASSERT_TRUE(Tree.ok()) << Name << ": " << Tree.Error;
    ASSERT_TRUE(Mach.ok()) << Name << ": " << Mach.Error;
    EXPECT_EQ(Tree.IntValue.value_or(-1), Mach.IntValue.value_or(-2))
        << Name;
  }
}

//===----------------------------------------------------------------------===//
// Fragment boundaries — one pinned diagnostic per remaining
// "not expressible in L" branch in LowerToL.cpp, so fragment growth is
// deliberate and documented.
//===----------------------------------------------------------------------===//

TEST(DriverTest, MachineRunsConstructorCases) {
  // PR 5: Bool's True/False alternatives (surface `if`) lower through
  // the tag-dispatch case — both backends agree.
  Session S;
  auto Comp = S.compile("flag = if isTrue# (3# <# 4#) then 1# else 0#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("flag", Backend::AbstractMachine);
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Mach.IntValue.value_or(-1), 1);
  EXPECT_GT(Mach.Machine.Switches, 0u);
  EXPECT_EQ(Comp->run("flag", Backend::TreeInterp).IntValue.value_or(-2),
            1);
}

TEST(DriverTest, MachineRunsNaryConstructors) {
  // An n-ary user data type: constructor allocation and tag dispatch
  // through the whole pipeline, with a lazy boxed field left unforced.
  Session S;
  auto Comp = S.compile(
      "data P2 = MkP2 Int Int ;"
      "first :: P2 -> Int# ;"
      "first p = case p of { MkP2 a b -> case a of { I# x -> x } } ;"
      "v = first (MkP2 (I# 31#) (error \"second field unforced\"))");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Mach.IntValue.value_or(-1), 31);
  EXPECT_GT(Mach.Machine.Branches, 0u);
  RunResult Tree = Comp->run("v", Backend::TreeInterp);
  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  EXPECT_EQ(Tree.IntValue.value_or(-2), 31);
}

TEST(DriverTest, FragmentRejectsConversionPrimop) {
  Session S;
  auto Comp = S.compile("conv = int2Double# 3#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("conv", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error, "not expressible in L: primop int2Double#");
  EXPECT_TRUE(Comp->run("conv", Backend::TreeInterp).ok());
}

TEST(DriverTest, FragmentRejectsLitCaseWithoutDefault) {
  Session S;
  auto Comp = S.compile("f :: Int# -> Int# ;"
                        "f x = case x of { 0# -> 1# } ;"
                        "v = f 0#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error, "not expressible in L: literal case without a "
                        "default alternative");
  EXPECT_EQ(Comp->run("v", Backend::TreeInterp).IntValue.value_or(-1), 1);
}

TEST(DriverTest, MachineRunsDefaultOnlyCase) {
  // PR 5 fix: a default-only case forces the scrutinee and takes the
  // default — no more "scrutinee sort" rejection.
  Session S;
  auto Comp = S.compile("g :: Int# -> Int# ;"
                        "g x = case x of { _ -> 2# } ;"
                        "v = g 7#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Mach.IntValue.value_or(-1), 2);
  EXPECT_EQ(Comp->run("v", Backend::TreeInterp).IntValue.value_or(-2), 2);
}

TEST(DriverTest, DefaultOnlyCaseStillForcesBottomScrutinee) {
  // The default-only case is a force, not a no-op: a bottom scrutinee
  // must abort on both backends.
  Session S;
  auto Comp = S.compile("g :: Int -> Int# ;"
                        "g x = case x of { _ -> 2# } ;"
                        "v = g (error \"forced\")");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Bottom);
  EXPECT_EQ(Mach.Error, "forced");
  RunResult Tree = Comp->run("v", Backend::TreeInterp);
  EXPECT_EQ(Tree.St, RunResult::Status::Bottom);
  EXPECT_EQ(Tree.Error, "forced");
}

TEST(DriverTest, FragmentRejectsUnboxedTuples) {
  Session S;
  auto Comp = S.compile("p = (# 1#, 2# #)");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("p", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error,
            "not expressible in L: unboxed tuple expression");
}

TEST(DriverTest, FragmentRejectsNonExhaustiveConCaseWithoutDefault) {
  // A constructor case must cover every tag or carry a default: L's
  // E_CASE would otherwise lose progress (an unmatched value has no
  // rule), so the lowering rejects it up front.
  Session S;
  auto Comp = S.compile("data Maybe a = Nothing | Just a ;"
                        "f :: Maybe Int -> Int# ;"
                        "f m = case m of { Just n -> 1# } ;"
                        "v = f Nothing");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error,
            "not expressible in L: non-exhaustive constructor case "
            "without a default alternative");
}

TEST(DriverTest, FragmentRejectsMutualRecursion) {
  // Self-recursion lowers to fix; a mutual cycle still has no L image.
  Session S;
  auto Comp = S.compile(
      "ev :: Int# -> Int# ;"
      "ev n = case n of { 0# -> 1# ; _ -> od (n -# 1#) } ;"
      "od :: Int# -> Int# ;"
      "od n = case n of { 0# -> 0# ; _ -> ev (n -# 1#) } ;"
      "v = ev 10#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Mach = Comp->run("v", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error, "not expressible in L: 'ev' is mutually recursive");
  EXPECT_EQ(Comp->run("v", Backend::TreeInterp).IntValue.value_or(-1), 1);
}

TEST(DriverTest, MachineRunsNonIHashConstructors) {
  // PR 5: MkPair (algebraic data beyond Int) from the sample program
  // now lowers; both backends reach a constructor value.
  Session S;
  auto Comp = S.compileProgram(runtime::buildSampleProgram);
  ASSERT_TRUE(Comp->ok());
  RunResult Mach = Comp->run("divModBoxed", Backend::AbstractMachine);
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  RunResult Tree = Comp->run("divModBoxed", Backend::TreeInterp);
  ASSERT_TRUE(Tree.ok()) << Tree.Error;
  // Neither backend reports a scalar for a Pair value.
  EXPECT_FALSE(Mach.IntValue.has_value());
  EXPECT_FALSE(Tree.IntValue.has_value());
}

TEST(DriverTest, FragmentRejectsMutuallyRecursiveLet) {
  // A two-binding letrec expression (built programmatically; the fix
  // lowering only covers single bindings).
  Session S;
  auto Comp = S.compileProgram([](core::CoreContext &C) {
    const core::Type *IntT = C.intTy();
    Symbol A = C.sym("a"), B = C.sym("b");
    core::RecBinding RBs[2] = {{A, IntT, C.var(B)}, {B, IntT, C.var(A)}};
    core::CoreProgram P;
    P.Bindings.push_back(
        {C.sym("knot"), IntT, C.letRec(RBs, C.var(A))});
    return P;
  });
  ASSERT_TRUE(Comp->ok());
  RunResult Mach = Comp->run("knot", Backend::AbstractMachine);
  EXPECT_EQ(Mach.St, RunResult::Status::Unsupported);
  EXPECT_EQ(Mach.Error, "not expressible in L: mutually recursive let");
}

//===----------------------------------------------------------------------===//
// Error lowering — the diagnostic message survives the machine pipeline
//===----------------------------------------------------------------------===//

TEST(DriverTest, MachineBackendSurfacesErrorMessages) {
  // `error "msg"` lowers with the message attached to the L/M error
  // node; a machine-backend ⊥ run reports the original string, matching
  // the tree interpreter.
  Session S;
  auto Comp = S.compile("boom :: Int# ;"
                        "boom = error \"the message survives\"");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run("boom", Backend::TreeInterp);
  RunResult Mach = Comp->run("boom", Backend::AbstractMachine);
  EXPECT_EQ(Tree.St, RunResult::Status::Bottom);
  EXPECT_EQ(Mach.St, RunResult::Status::Bottom);
  EXPECT_EQ(Tree.Error, "the message survives");
  EXPECT_EQ(Mach.Error, "the message survives");
}

//===----------------------------------------------------------------------===//
// (b) The compilation cache
//===----------------------------------------------------------------------===//

TEST(DriverTest, CacheReturnsSameCompilationForIdenticalSource) {
  Session S;
  auto First = S.compile(QuickstartSrc);
  auto Second = S.compile(QuickstartSrc);
  EXPECT_EQ(First.get(), Second.get());
  Session::Stats St = S.stats(); // one snapshot, fields read together
  EXPECT_EQ(St.Compilations, 1u);
  EXPECT_EQ(St.CacheHits, 1u);

  auto Different = S.compile("answer = 41# +# 1#");
  EXPECT_NE(First.get(), Different.get());
  EXPECT_EQ(S.stats().Compilations, 2u);
}

TEST(DriverTest, CacheCanBeDisabled) {
  CompileOptions Opts;
  Opts.EnableCache = false;
  Session S(Opts);
  auto First = S.compile(QuickstartSrc);
  auto Second = S.compile(QuickstartSrc);
  EXPECT_NE(First.get(), Second.get());
  Session::Stats St = S.stats(); // one snapshot, fields read together
  EXPECT_EQ(St.Compilations, 2u);
  EXPECT_EQ(St.CacheHits, 0u);
}

TEST(DriverTest, CachedCompilationKeepsLoweredBackends) {
  // The point of caching whole Compilations: a repeated run skips
  // re-elaboration *and* re-lowering.
  Session S;
  auto First = S.compile(QuickstartSrc);
  ASSERT_TRUE(First->run("answer", Backend::AbstractMachine).ok());
  auto Second = S.compile(QuickstartSrc);
  RunResult R = Second->run("answer", Backend::AbstractMachine);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.IntValue.value_or(-1), 42);
}

TEST(DriverTest, SourceHashIsStable) {
  EXPECT_EQ(Session::hashSource(QuickstartSrc),
            Session::hashSource(QuickstartSrc));
  EXPECT_NE(Session::hashSource("a = 1#"), Session::hashSource("a = 2#"));
  Session S;
  EXPECT_EQ(S.compile(QuickstartSrc)->sourceHash(),
            Session::hashSource(QuickstartSrc));
}

//===----------------------------------------------------------------------===//
// (c) Diagnostics through the facade
//===----------------------------------------------------------------------===//

TEST(DriverTest, DiagnosticsCarryLocAndCode) {
  Session S;
  auto Comp = S.compile("main =\n  nonexistent");
  ASSERT_FALSE(Comp->ok());

  bool Found = false;
  for (const Diagnostic &D : Comp->diags().diagnostics()) {
    if (D.Sev != Severity::Error)
      continue;
    EXPECT_NE(D.Code, DiagCode::None);
    if (D.Loc.isValid()) {
      Found = true;
      EXPECT_EQ(D.Loc.Line, 2u);
    }
  }
  EXPECT_TRUE(Found) << "no error carried a source location:\n"
                     << Comp->diagText();
  EXPECT_TRUE(Comp->diags().hasError(DiagCode::ScopeError))
      << Comp->diagText();
}

TEST(DriverTest, LevityRestrictionSurfacesThroughFacade) {
  Session S;
  auto Comp = S.compile("bad :: forall r (a :: TYPE r). a -> a ;"
                        "bad x = x");
  ASSERT_FALSE(Comp->ok());
  EXPECT_TRUE(Comp->diags().hasError(DiagCode::LevityPolymorphicBinder))
      << Comp->diagText();

  // Running a failed compilation reports the failure instead of crashing.
  RunResult R = Comp->run("bad");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("compilation failed"), std::string::npos);
}

TEST(DriverTest, ParseErrorsStopThePipeline) {
  Session S;
  auto Comp = S.compile("main = (1# +#");
  ASSERT_FALSE(Comp->ok());
  EXPECT_TRUE(Comp->diags().hasErrors());
  EXPECT_EQ(Comp->program(), nullptr);
}

//===----------------------------------------------------------------------===//
// Stage timings
//===----------------------------------------------------------------------===//

TEST(DriverTest, TimingsCoverEveryStage) {
  Session S;
  auto Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok());
  ASSERT_EQ(Comp->timings().size(), 3u);
  EXPECT_EQ(Comp->timings()[0].Stage, "lex");
  EXPECT_EQ(Comp->timings()[1].Stage, "parse");
  EXPECT_EQ(Comp->timings()[2].Stage, "elaborate+check");
  for (const StageTiming &T : Comp->timings())
    EXPECT_GE(T.Millis, 0.0);
  EXPECT_FALSE(Comp->timingReport().empty());
}

//===----------------------------------------------------------------------===//
// Programmatic (core-IR) compilations
//===----------------------------------------------------------------------===//

TEST(DriverTest, ProgrammaticCompilationRidesTheFacade) {
  Session S;
  auto Comp = S.compileProgram(runtime::buildSampleProgram);
  ASSERT_TRUE(Comp->ok());
  RunResult R = Comp->run("sumTo#");
  ASSERT_TRUE(R.ok()) << R.Error; // a function value
  Executor Ex(Comp);
  runtime::InterpResult IR =
      Ex.evalExpr(runtime::callSumToUnboxed(Comp->ctx(), 100));
  ASSERT_EQ(IR.Status, runtime::InterpStatus::Value);
  EXPECT_EQ(runtime::Interp::asIntHash(IR.V).value_or(-1), 5050);
  // The unboxed loop allocates nothing (Section 2.1's claim).
  EXPECT_EQ(IR.Stats.ThunkAllocs + IR.Stats.BoxAllocs, 0u);
}

TEST(DriverTest, CatalogAnalysisRidesTheDriver) {
  Session S;
  CatalogAnalysis A = S.analyzeCatalog();
  ASSERT_TRUE(A.ok());
  EXPECT_EQ(A.Report.NumClasses, 76u);
  EXPECT_GE(A.Report.NumGeneralizable, 25u);
  EXPECT_LE(A.Report.NumGeneralizable, 40u);
  // Stage timings ride the same report shape as Compilation's.
  ASSERT_GE(A.Timings.size(), 3u);
  EXPECT_EQ(A.Timings[0].Stage, "elaborate-catalog");
  EXPECT_NE(A.timingReport().find("total"), std::string::npos);
  EXPECT_NE(A.table().find("GENERALIZE"), std::string::npos);
  EXPECT_EQ(S.stats().Analyses, 1u);
}

//===----------------------------------------------------------------------===//
// The formal pipeline on the same abstraction
//===----------------------------------------------------------------------===//

TEST(DriverTest, FormalPipelineSharesTheCompilationAPI) {
  Session S;
  // (Λr. Λa:TYPE r. λf:Int→a. f I#[7]) I Int# (λn:Int. case n of I#[m]→m)
  auto Comp = S.compileFormal([](lcalc::LContext &L) {
    Symbol R = L.sym("r"), A = L.sym("a"), F = L.sym("f");
    const lcalc::Expr *Gen = L.repLam(
        R, L.tyLam(A, lcalc::LKind::typeVar(R),
                   L.lam(F, L.arrowTy(L.intTy(), L.varTy(A)),
                         L.app(L.var(F), L.con(L.intLit(7))))));
    return L.app(
        L.tyApp(L.repApp(Gen, lcalc::RuntimeRep::integer()),
                L.intHashTy()),
        L.lam(L.sym("n"), L.intTy(),
              L.caseOf(L.var(L.sym("n")), L.sym("m"), L.var(L.sym("m")))));
  });
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  ASSERT_TRUE(Comp->formalType().ok());
  EXPECT_EQ((*Comp->formalType())->str(), "Int#");

  RunResult Small = Comp->run(Backend::TreeInterp);
  RunResult Mach = Comp->run(Backend::AbstractMachine);
  ASSERT_TRUE(Small.ok()) << Small.Error;
  ASSERT_TRUE(Mach.ok()) << Mach.Error;
  EXPECT_EQ(Small.IntValue.value_or(-1), 7);
  EXPECT_EQ(Mach.IntValue.value_or(-1), 7);
}

TEST(DriverTest, IllTypedFormalTermFailsWithTypeError) {
  Session S;
  // λx:a. x with a levity-polymorphic — E_LAM's restriction.
  auto Comp = S.compileFormal([](lcalc::LContext &L) {
    Symbol R = L.sym("r"), A = L.sym("a");
    return L.repLam(
        R, L.tyLam(A, lcalc::LKind::typeVar(R),
                   L.lam(L.sym("x"), L.varTy(A), L.var(L.sym("x")))));
  });
  EXPECT_FALSE(Comp->ok());
  EXPECT_TRUE(Comp->diags().hasError(DiagCode::TypeError));
}

//===----------------------------------------------------------------------===//
// Fuel exhaustion: the typed deadline signal, pinned per backend
//===----------------------------------------------------------------------===//

const char *LoopTotalSrc =
    "sumToH :: Int# -> Int# -> Int# ;"
    "sumToH acc n = case n of {"
    "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
    "} ;"
    "total = sumToH 0# 1000#";

TEST(DriverTest, FuelExhaustionIsPinnedPerBackend) {
  // Every backend maps its step budget running out to the SAME result:
  // Status::OutOfFuel with the pinned "out of fuel" reason. The server
  // turns exactly this pair into a typed TIMEOUT response, so it is a
  // wire contract, not a wording choice.
  Session S;
  auto Comp = S.compile(LoopTotalSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  for (Backend B : {Backend::TreeInterp, Backend::AbstractMachine,
                    Backend::Bytecode}) {
    Executor Ex(Comp);
    Ex.options().MaxInterpSteps = 1;
    Ex.options().MaxMachineSteps = 1;
    Ex.options().MaxVmSteps = 1;
    RunResult R = Ex.run("total", B);
    EXPECT_EQ(R.St, RunResult::Status::OutOfFuel)
        << "backend " << backendName(B);
    EXPECT_EQ(R.Error, "out of fuel") << "backend " << backendName(B);
    EXPECT_EQ(R.Used, B) << "backend " << backendName(B);
    EXPECT_FALSE(R.ok());
  }
}

TEST(DriverTest, RunAllPerRequestFuelIsADeadline) {
  // RunRequest::Fuel overrides every backend's budget for that request
  // only: starved requests come back OutOfFuel while an unstarved
  // request for the same program still completes.
  Session S;
  std::vector<Session::RunRequest> Reqs;
  for (Backend B : {Backend::TreeInterp, Backend::AbstractMachine,
                    Backend::Bytecode}) {
    Session::RunRequest R;
    R.Source = LoopTotalSrc;
    R.Name = "total";
    R.B = B;
    R.Fuel = 1;
    Reqs.push_back(std::move(R));
  }
  Session::RunRequest Full;
  Full.Source = LoopTotalSrc;
  Full.Name = "total";
  Full.B = Backend::Bytecode;
  Reqs.push_back(std::move(Full));

  std::vector<RunResult> Results = S.runAll(Reqs);
  ASSERT_EQ(Results.size(), 4u);
  for (size_t I = 0; I != 3; ++I) {
    EXPECT_EQ(Results[I].St, RunResult::Status::OutOfFuel) << I;
    EXPECT_EQ(Results[I].Error, "out of fuel") << I;
  }
  ASSERT_TRUE(Results[3].ok()) << Results[3].Error;
  EXPECT_EQ(Results[3].IntValue.value_or(-1), 500500);
}

TEST(DriverTest, CompileReportsPerCallOutcome) {
  // The CompileOutcome out-param attributes each call exactly: first
  // compile is FrontEnd, repeats are CacheHit, and the outcomes
  // reconcile with the session counters.
  Session S;
  CompileOutcome O1, O2;
  auto A = S.compile(QuickstartSrc, O1);
  auto B = S.compile(QuickstartSrc, O2);
  ASSERT_TRUE(A->ok());
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(O1, CompileOutcome::FrontEnd);
  EXPECT_EQ(O2, CompileOutcome::CacheHit);

  Session::Stats St = S.stats();
  EXPECT_EQ(St.Compilations, 1u);
  EXPECT_EQ(St.CacheHits, 1u);
}

TEST(DriverTest, RunAllWritesOutcomes) {
  Session S;
  CompileOutcome O[2] = {};
  std::vector<Session::RunRequest> Reqs(2);
  Reqs[0].Source = QuickstartSrc;
  Reqs[0].Name = "answer";
  Reqs[0].Outcome = &O[0];
  Reqs[1].Source = QuickstartSrc;
  Reqs[1].Name = "answer";
  Reqs[1].Outcome = &O[1];

  std::vector<RunResult> Results = S.runAll(Reqs);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_TRUE(Results[0].ok() && Results[1].ok());
  // Identical sources race for ownership: exactly one FrontEnd build,
  // the other call is attributed to the cache (possibly by waiting on
  // the winner's in-flight compile).
  int FrontEnds = (O[0] == CompileOutcome::FrontEnd) +
                  (O[1] == CompileOutcome::FrontEnd);
  int CacheHits = (O[0] == CompileOutcome::CacheHit) +
                  (O[1] == CompileOutcome::CacheHit);
  EXPECT_EQ(FrontEnds, 1);
  EXPECT_EQ(CacheHits, 1);
}

TEST(DriverTest, FormalPrimopsAgreeAcrossSemantics) {
  // The executable L/M primop extension: 6*6+6 in both Figure 4 and the
  // Figure 6 machine.
  Session S;
  auto Comp = S.compileFormal([](lcalc::LContext &L) {
    return L.prim(lcalc::LPrim::Add,
                  L.prim(lcalc::LPrim::Mul, L.intLit(6), L.intLit(6)),
                  L.intLit(6));
  });
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Small = Comp->run(Backend::TreeInterp);
  RunResult Mach = Comp->run(Backend::AbstractMachine);
  ASSERT_TRUE(Small.ok() && Mach.ok());
  EXPECT_EQ(Small.IntValue.value_or(-1), 42);
  EXPECT_EQ(Mach.IntValue.value_or(-1), 42);
}

} // namespace
