//===- support_test.cpp - Unit tests for the support library --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Diagnostics.h"
#include "support/FileOps.h"
#include "support/Result.h"
#include "support/Symbol.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <pthread.h>
#endif

using namespace levity;

namespace {

TEST(ArenaTest, AllocatesAligned) {
  Arena A;
  for (size_t Align : {1, 2, 4, 8, 16, 32}) {
    void *P = A.allocate(7, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "alignment " << Align;
  }
}

TEST(ArenaTest, CreateConstructsObjects) {
  Arena A;
  struct Point {
    int X, Y;
  };
  Point *P = A.create<Point>(Point{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
}

TEST(ArenaTest, SurvivesManySmallAllocations) {
  Arena A;
  std::vector<int *> Ptrs;
  for (int I = 0; I != 10000; ++I)
    Ptrs.push_back(A.create<int>(I));
  for (int I = 0; I != 10000; ++I)
    EXPECT_EQ(*Ptrs[I], I);
  EXPECT_GE(A.numAllocations(), 10000u);
}

TEST(ArenaTest, LargeAllocationGetsOwnSlab) {
  Arena A;
  void *P = A.allocate(1 << 20, 8);
  ASSERT_NE(P, nullptr);
  // Arena stays usable afterwards.
  int *Q = A.create<int>(42);
  EXPECT_EQ(*Q, 42);
}

TEST(ArenaTest, CopyArrayPreservesContents) {
  Arena A;
  std::vector<int> V = {1, 2, 3, 4, 5};
  std::span<const int> S = A.copyArray(V);
  V.assign(5, 0); // mutating the source must not affect the copy
  ASSERT_EQ(S.size(), 5u);
  EXPECT_EQ(S[0], 1);
  EXPECT_EQ(S[4], 5);
}

TEST(ArenaTest, CopyEmptyArrayIsEmpty) {
  Arena A;
  std::vector<int> V;
  EXPECT_TRUE(A.copyArray(V).empty());
}

TEST(SymbolTest, InterningIsIdempotent) {
  SymbolTable T;
  Symbol A = T.intern("foo");
  Symbol B = T.intern("foo");
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.str(), "foo");
}

TEST(SymbolTest, DistinctNamesDiffer) {
  SymbolTable T;
  EXPECT_NE(T.intern("foo"), T.intern("bar"));
}

TEST(SymbolTest, FreshAvoidsCollisions) {
  SymbolTable T;
  Symbol X = T.intern("x");
  Symbol F1 = T.fresh("x");
  Symbol F2 = T.fresh("x");
  EXPECT_NE(F1, X);
  EXPECT_NE(F2, X);
  EXPECT_NE(F1, F2);
}

TEST(SymbolTest, FreshOnUnusedNameKeepsIt) {
  SymbolTable T;
  Symbol F = T.fresh("y");
  EXPECT_EQ(F.str(), "y");
}

TEST(SymbolTest, OrderingIsInterningOrder) {
  SymbolTable T;
  Symbol A = T.intern("zzz");
  Symbol B = T.intern("aaa");
  EXPECT_TRUE(A < B); // interned first
}

TEST(DiagnosticsTest, CollectsErrorsAndCodes) {
  DiagnosticEngine DE;
  EXPECT_FALSE(DE.hasErrors());
  DE.error(DiagCode::LevityPolymorphicBinder, "bad binder", {3, 7});
  DE.warning(DiagCode::None, "heads up");
  EXPECT_TRUE(DE.hasErrors());
  EXPECT_EQ(DE.numErrors(), 1u);
  EXPECT_TRUE(DE.hasError(DiagCode::LevityPolymorphicBinder));
  EXPECT_FALSE(DE.hasError(DiagCode::LevityPolymorphicArgument));
}

TEST(DiagnosticsTest, FormatsWithLocationAndCode) {
  DiagnosticEngine DE;
  DE.error(DiagCode::TypeError, "type mismatch", {1, 2});
  std::string S = DE.str();
  EXPECT_NE(S.find("error at 1:2"), std::string::npos) << S;
  EXPECT_NE(S.find("[type-error]"), std::string::npos) << S;
  EXPECT_NE(S.find("type mismatch"), std::string::npos) << S;
}

TEST(DiagnosticsTest, ClearResets) {
  DiagnosticEngine DE;
  DE.error(DiagCode::ParseError, "boom");
  DE.clear();
  EXPECT_FALSE(DE.hasErrors());
  EXPECT_TRUE(DE.diagnostics().empty());
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> Ok = 5;
  ASSERT_TRUE(Ok.ok());
  EXPECT_EQ(*Ok, 5);

  Result<int> Bad = err("nope");
  ASSERT_FALSE(Bad.ok());
  EXPECT_EQ(Bad.error(), "nope");
}

#if defined(__unix__) || defined(__APPLE__)

// FileOps must survive signals landing mid-syscall: open/read/write/
// fsync/flock all retry on EINTR. A hammer thread pounds this thread
// with SIGUSR1 (installed WITHOUT SA_RESTART, so syscalls genuinely
// return EINTR) while the store primitives cycle lock → write → read.
TEST(FileOpsSignalTest, PrimitivesSurviveSignalStorm) {
  struct sigaction SA {}, Old {};
  SA.sa_handler = [](int) {};
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // No SA_RESTART: EINTR for real.
  ASSERT_EQ(sigaction(SIGUSR1, &SA, &Old), 0);

  std::string Dir = (std::filesystem::temp_directory_path() /
                     "levity-fileops-signal-storm")
                        .string();
  std::filesystem::remove_all(Dir);
  ASSERT_TRUE(support::ensureDirectories(Dir).ok());

  std::atomic<bool> Stop{false};
  pthread_t Victim = pthread_self();
  std::thread Hammer([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      pthread_kill(Victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    }
  });

  std::string Payload(1 << 16, 'x');
  for (int I = 0; I != 200; ++I) {
    std::string P = Dir + "/f" + std::to_string(I % 8) + ".bin";
    support::FileLock L(Dir + "/.lock");
    EXPECT_TRUE(L.locked());
    Result<bool> W = support::writeFileAtomic(P, Payload);
    ASSERT_TRUE(W.ok()) << W.error();
    Result<std::string> R = support::readFileBinary(P);
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(R->size(), Payload.size());
  }

  Stop.store(true, std::memory_order_relaxed);
  Hammer.join();
  sigaction(SIGUSR1, &Old, nullptr);
  std::filesystem::remove_all(Dir);
}

#endif // __unix__ || __APPLE__

} // namespace
