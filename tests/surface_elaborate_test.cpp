//===- surface_elaborate_test.cpp - End-to-end pipeline tests -------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Full pipeline: source text → lex → parse → infer/elaborate (with rep
// metavariables and levity defaulting) → core lint → levity check →
// evaluation. Covers the paper's running examples end to end:
// sumTo/sumTo# (Section 2.1), divMod (2.3), error/myError (3.3/5.2),
// bTwice (3.1/5), ($)/(.) generalizations (7.2), and the inference
// stories of Section 5.2 (experiments E1/E3/E7/E10 acceptance matrix).
//
//===----------------------------------------------------------------------===//

#include "PipelineFixture.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::surface;

namespace {

#define COMPILE_OK(P, Src)                                                 \
  ASSERT_TRUE((P).compile(Src)) << (P).diags().str()

TEST(PipelineTest, UnboxedArithmetic) {
  Pipeline P;
  COMPILE_OK(P, "main = 40# +# 2#");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 42);
}

TEST(PipelineTest, BoxedArithmeticViaBuiltins) {
  Pipeline P;
  COMPILE_OK(P, "main = 40 + 2");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 42);
}

TEST(PipelineTest, InferenceDefaultsToInt) {
  // f x = x infers a -> a with a :: Type (never levity-polymorphic,
  // Section 5.2).
  Pipeline P;
  COMPILE_OK(P, "f x = x ; main = f 5");
  const core::Type *T = P.elaborator().globalType("f");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "forall (a :: Type). a -> a");
}

// Section 2.1: the full sumTo at both representations, from source.
TEST(PipelineTest, SumToBothWays) {
  Pipeline P;
  COMPILE_OK(P,
             "sumTo :: Int -> Int -> Int ;"
             "sumTo acc n = case n of {"
             "  0 -> acc ;"
             "  _ -> sumTo (acc + n) (n - 1)"
             "} ;"
             "sumToH :: Int# -> Int# -> Int# ;"
             "sumToH acc n = case n of {"
             "  0# -> acc ;"
             "  _  -> sumToH (acc +# n) (n -# 1#)"
             "} ;"
             "boxed = sumTo 0 100 ;"
             "unboxed = sumToH 0# 100#");
  runtime::InterpResult RB = P.evalName("boxed");
  ASSERT_EQ(RB.Status, runtime::InterpStatus::Value) << RB.Message;
  EXPECT_EQ(P.interp().asBoxedInt(RB.V).value_or(-1), 5050);

  runtime::InterpResult RU = P.evalName("unboxed");
  ASSERT_EQ(RU.Status, runtime::InterpStatus::Value) << RU.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(RU.V).value_or(-1), 5050);
  // The unboxed loop performs no heap allocation beyond the top-level
  // closures (cost-model claim E1).
  EXPECT_EQ(RU.Stats.ThunkAllocs, 0u);
  EXPECT_EQ(RU.Stats.BoxAllocs, 0u);
}

// Section 2.3: divMod with an unboxed pair, from source.
TEST(PipelineTest, DivModUnboxedTuple) {
  Pipeline P;
  COMPILE_OK(P,
             "divMod :: Int# -> Int# -> (# Int#, Int# #) ;"
             "divMod a b = (# quotInt# a b, remInt# a b #) ;"
             "main = case divMod 17# 5# of { (# q, r #) -> q *# 10# +# r }");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 32);
  EXPECT_EQ(R.Stats.BoxAllocs, 0u);
  EXPECT_EQ(R.Stats.ThunkAllocs, 0u);
}

// Section 3.3/5.2: myError with a declared levity-polymorphic signature
// is accepted and usable at an unboxed type.
TEST(PipelineTest, MyErrorLevityPolymorphic) {
  Pipeline P;
  COMPILE_OK(P,
             "myError :: forall r (a :: TYPE r). String -> a ;"
             "myError s = error s ;"
             "f :: Int# -> Int# ;"
             "f n = case n <# 0# of {"
             "  1# -> myError \"negative\" ;"
             "  _  -> n"
             "} ;"
             "ok = f 4# ;"
             "bad = f (0# -# 7#)");
  runtime::InterpResult ROk = P.evalName("ok");
  ASSERT_EQ(ROk.Status, runtime::InterpStatus::Value) << ROk.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(ROk.V).value_or(-1), 4);

  runtime::InterpResult RBad = P.evalName("bad");
  EXPECT_EQ(RBad.Status, runtime::InterpStatus::Bottom);
  EXPECT_EQ(RBad.Message, "negative");
}

// Without a signature, myError gets the levity-monomorphic default
// (a :: Type) — usable at Int but NOT at Int#.
TEST(PipelineTest, UnannotatedWrapperDefaultsToLifted) {
  Pipeline P;
  COMPILE_OK(P, "myError s = error s");
  const core::Type *T = P.elaborator().globalType("myError");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "forall (a :: Type). String -> a");

  // And instantiating it at Int# fails.
  Pipeline P2;
  EXPECT_FALSE(P2.compile("myError s = error s ;"
                          "f :: Int# -> Int# ;"
                          "f n = myError \"no\""));
  EXPECT_TRUE(P2.diags().hasErrors());
}

// Section 5: the levity-polymorphic bTwice signature is rejected with
// the binder restriction.
TEST(PipelineTest, BTwiceRepPolyRejected) {
  Pipeline P;
  EXPECT_FALSE(P.compile(
      "bTwice :: forall r (a :: TYPE r). Bool -> a -> (a -> a) -> a ;"
      "bTwice b x f = case b of { True -> f (f x) ; False -> x }"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::LevityPolymorphicBinder))
      << P.diags().str();
}

// ...while the Type-kinded bTwice is accepted and runs.
TEST(PipelineTest, BTwiceLiftedAccepted) {
  Pipeline P;
  COMPILE_OK(P,
             "bTwice :: forall a. Bool -> a -> (a -> a) -> a ;"
             "bTwice b x f = case b of { True -> f (f x) ; False -> x } ;"
             "main = bTwice True 5 (\\n -> n + 1)");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 7);
}

// Section 7.2: ($) at an unboxed *result* type — the generalized type in
// action. Note the argument must stay lifted (only b :: TYPE r): `f $ 3#`
// would be rejected, exactly as in GHC.
TEST(PipelineTest, DollarAtUnboxedResult) {
  Pipeline P;
  COMPILE_OK(P,
             "unbox :: Int -> Int# ;"
             "unbox n = case n of { I# h -> h +# 1# } ;"
             "main = unbox $ 41");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 42);
}

// And the flip side: ($) with an *unboxed argument* is rejected — the
// argument position of ($) is not levity-generalizable (Section 7.2).
TEST(PipelineTest, DollarAtUnboxedArgumentRejected) {
  Pipeline P;
  EXPECT_FALSE(P.compile("f :: Int# -> Int# ;"
                         "f x = x ;"
                         "main = f $ 3#"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::KindError)) << P.diags().str();
}

// Section 7.2: (.) with an unboxed final result.
TEST(PipelineTest, ComposeAtUnboxedResult) {
  Pipeline P;
  COMPILE_OK(P,
             "unbox :: Int -> Int# ;"
             "unbox n = case n of { I# h -> h } ;"
             "inc :: Int -> Int ;"
             "inc n = n + 1 ;"
             "both :: Int -> Int# ;"
             "both = unbox . inc ;"
             "main = both 41");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 42);
}

TEST(PipelineTest, UserDataTypesAndCase) {
  Pipeline P;
  COMPILE_OK(P,
             "data Shape = Circle Int | Rect Int Int ;"
             "area s = case s of {"
             "  Circle r -> r * r ;"
             "  Rect w h -> w * h"
             "} ;"
             "main = area (Rect 6 7)");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 42);
}

TEST(PipelineTest, PolymorphicDataTypes) {
  Pipeline P;
  COMPILE_OK(P,
             "data Box a = MkBox a ;"
             "unbox b = case b of { MkBox x -> x } ;"
             "main = unbox (MkBox 42)");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 42);
  const core::Type *T = P.elaborator().globalType("unbox");
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "forall (a :: Type). Box a -> a");
}

TEST(PipelineTest, LazinessObservable) {
  // Passing `error` to a constant function terminates (boxed argument).
  Pipeline P;
  COMPILE_OK(P,
             "konst :: Int -> Int -> Int ;"
             "konst x y = x ;"
             "main = konst 1 (error \"boom\")");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
}

TEST(PipelineTest, StrictnessObservable) {
  // An Int# argument is evaluated before the call: error propagates.
  Pipeline P;
  COMPILE_OK(P,
             "konst :: Int# -> Int# -> Int# ;"
             "konst x y = x ;"
             "main = konst 1# (error \"boom\")");
  runtime::InterpResult R = P.evalName("main");
  EXPECT_EQ(R.Status, runtime::InterpStatus::Bottom);
}

TEST(PipelineTest, LocalLetAndLambda) {
  Pipeline P;
  COMPILE_OK(P,
             "main = let go acc n = case n of {"
             "                        0 -> acc ;"
             "                        _ -> go (acc + n) (n - 1) }"
             "       in go 0 10");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 55);
}

TEST(PipelineTest, IfOverComparisons) {
  Pipeline P;
  COMPILE_OK(P, "main = if 3 < 4 then 1 else 0");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 1);
}

TEST(PipelineTest, DoubleHashArithmetic) {
  Pipeline P;
  COMPILE_OK(P, "main = 2.5## *## 4.0##");
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_DOUBLE_EQ(runtime::Interp::asDoubleHash(R.V).value_or(-1), 10.0);
}

TEST(PipelineTest, ScopeErrorsReported) {
  Pipeline P;
  EXPECT_FALSE(P.compile("main = nonexistent"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::ScopeError));
}

TEST(PipelineTest, TypeErrorsReported) {
  Pipeline P;
  EXPECT_FALSE(P.compile("main = 1# +# 2.0##"));
  EXPECT_TRUE(P.diags().hasErrors());
}

// Kind-mismatched instantiation: a lifted-only function at Int#.
TEST(PipelineTest, InstantiationPrincipleViaKinds) {
  Pipeline P;
  EXPECT_FALSE(P.compile("apply :: forall a. (a -> a) -> a -> a ;"
                         "apply f x = f x ;"
                         "bad :: Int# -> Int# ;"
                         "bad n = apply (\\x -> x) n"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::KindError)) << P.diags().str();
}

} // namespace
