//===- integration_test.cpp - Cross-module pipeline edge cases ------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// End-to-end scenarios that cross several modules at once: mixed-rep
// programs, deep recursion through the pipeline, error propagation,
// laziness interacting with classes, and diagnostics quality.
//
//===----------------------------------------------------------------------===//

#include "PipelineFixture.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::surface;

namespace {

// Fibonacci with boxed ints: deep-ish recursion + sharing.
TEST(IntegrationTest, FibBoxed) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "fib :: Int -> Int ;"
      "fib n = case n < 2 of {"
      "  True -> n ;"
      "  False -> fib (n - 1) + fib (n - 2)"
      "} ;"
      "main = fib 15"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 610);
}

// GCD at Int#: a non-tail recursion over unboxed values.
TEST(IntegrationTest, GcdUnboxed) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "gcdH :: Int# -> Int# -> Int# ;"
      "gcdH a b = case b of {"
      "  0# -> a ;"
      "  _  -> gcdH b (remInt# a b)"
      "} ;"
      "main = gcdH 1071# 462#"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 21);
  EXPECT_EQ(R.Stats.heapAllocations() - R.Stats.ClosureAllocs, 0u);
}

// Mixed representations through one data type: unbox, compute at
// Double#, rebox.
TEST(IntegrationTest, MixedRepRoundTrip) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "data Vec = MkVec Double# Double# ;"
      "norm2 :: Vec -> Double# ;"
      "norm2 v = case v of {"
      "  MkVec x y -> x *## x +## y *## y"
      "} ;"
      "main = norm2 (MkVec 3.0## 4.0##)"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_DOUBLE_EQ(runtime::Interp::asDoubleHash(R.V).value_or(-1), 25.0);
}

// Unlifted fields are strict: constructing the box forces them.
TEST(IntegrationTest, UnliftedFieldsAreStrict) {
  Pipeline P;
  ASSERT_TRUE(P.compile("data Box = MkBox Int# ;"
                        "main = case MkBox (error \"strict!\") of {"
                        "  MkBox n -> 1#"
                        "}"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  EXPECT_EQ(R.Status, runtime::InterpStatus::Bottom);
  EXPECT_EQ(R.Message, "strict!");
}

// ...while lifted fields are lazy.
TEST(IntegrationTest, LiftedFieldsAreLazy) {
  Pipeline P;
  ASSERT_TRUE(P.compile("data Box = MkBox Int ;"
                        "main = case MkBox (error \"lazy\") of {"
                        "  MkBox n -> 1#"
                        "}"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
}

// Unboxed tuples as arguments AND results, through a helper.
TEST(IntegrationTest, UnboxedTupleThreading) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "swap :: (# Int#, Int# #) -> (# Int#, Int# #) ;"
      "swap p = case p of { (# a, b #) -> (# b, a #) } ;"
      "main = case swap (# 1#, 2# #) of { (# x, y #) -> x *# 10# +# y }"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 21);
}

// The empty unboxed tuple is a legal value with zero registers.
TEST(IntegrationTest, EmptyUnboxedTuple) {
  Pipeline P;
  ASSERT_TRUE(P.compile("unit :: (# #) ;"
                        "unit = (# #) ;"
                        "main = case unit of { (# #) -> 42# }"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 42);
}

// Diagnostics carry source locations.
TEST(IntegrationTest, DiagnosticsCarryLocations) {
  Pipeline P;
  EXPECT_FALSE(P.compile("main =\n  nonexistent"));
  bool FoundLoc = false;
  for (const Diagnostic &D : P.diags().diagnostics())
    if (D.Loc.Line == 2)
      FoundLoc = true;
  EXPECT_TRUE(FoundLoc) << P.diags().str();
}

// Shadowing: local binders shadow globals and each other.
TEST(IntegrationTest, ShadowingResolvesInnermost) {
  Pipeline P;
  ASSERT_TRUE(P.compile("x = 1 ;"
                        "main = let x = 2 in (\\x -> x + 10) x"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 12);
}

// Higher-order functions over unboxed results through ($).
TEST(IntegrationTest, HigherOrderUnboxedResults) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "applyTo :: forall r (b :: TYPE r). Int -> (Int -> b) -> b ;"
      "applyTo x f = f x ;"
      "unbox :: Int -> Int# ;"
      "unbox n = case n of { I# h -> h } ;"
      "main = applyTo 41 unbox +# 1#"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 42);
}

// A rep-polymorphic *argument* position in a signature is rejected even
// if the body never runs.
TEST(IntegrationTest, RepPolyParameterSignatureRejected) {
  Pipeline P;
  EXPECT_FALSE(P.compile(
      "bad :: forall r (a :: TYPE r). a -> Int ;"
      "bad x = 0"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::LevityPolymorphicBinder))
      << P.diags().str();
}

// Interpreter guards: deep boxed recursion does not overflow the C++
// stack for tail calls, and fuel stops runaway loops.
TEST(IntegrationTest, TailCallsRunDeep) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      "count :: Int# -> Int# ;"
      "count n = case n of { 0# -> 0# ; _ -> count (n -# 1#) } ;"
      "main = count 500000#"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
}

TEST(IntegrationTest, RunawayLoopHitsFuel) {
  Pipeline P;
  ASSERT_TRUE(P.compile("loop :: Int# -> Int# ;"
                        "loop n = loop n ;"
                        "main = loop 1#"))
      << P.diags().str();
  runtime::InterpResult R =
      P.interp().eval(P.ctx().var(P.ctx().sym("main")), /*MaxSteps=*/100000);
  EXPECT_EQ(R.Status, runtime::InterpStatus::OutOfFuel);
}

// Full pipeline stats: the elaborated sample program's Lint and
// LevityCheck both ran (no diagnostics), and every user binding got a
// zonked, closed type.
TEST(IntegrationTest, AllBindingsHaveClosedTypes) {
  Pipeline P;
  ASSERT_TRUE(P.compile("f x = x + 1 ;"
                        "g y = f (f y) ;"
                        "h = g 5"))
      << P.diags().str();
  for (Symbol Name : P.Comp->elabOutput()->UserBindings) {
    const core::Type *T = P.elaborator().globalType(Name.str());
    ASSERT_NE(T, nullptr);
    core::MetaSet Metas;
    core::collectMetas(P.ctx(), T, Metas);
    EXPECT_TRUE(Metas.TypeMetaIds.empty() && Metas.RepMetaIds.empty())
        << std::string(Name.str()) << " : " << T->str();
  }
}

} // namespace
