//===- lcalc_metatheory_test.cpp - Preservation & Progress (Section 6.1) --===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Randomized property tests for the two type-safety theorems of Section
// 6.1, over the correct-by-construction term generator:
//
//   Preservation: if Γ ⊢ e : τ and Γ ⊢ e → e', then Γ ⊢ e' : τ.
//   Progress:     if Γ ⊢ e : τ (no term bindings), e is a value or steps.
//
// Also checks that the generator itself only produces well-typed terms
// (a meta-meta test: if this fails, the other properties are vacuous).
//
//===----------------------------------------------------------------------===//

#include "lcalc/Eval.h"
#include "lcalc/Gen.h"
#include "lcalc/Subst.h"
#include "lcalc/TypeCheck.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::lcalc;

namespace {

struct GenParams {
  uint64_t Seed;
  unsigned MaxDepth;
};

class MetatheoryTest : public ::testing::TestWithParam<GenParams> {};

constexpr unsigned TermsPerCase = 300;

TEST_P(MetatheoryTest, GeneratorProducesWellTypedClosedTerms) {
  LContext C;
  TypeChecker TC(C);
  TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  TermGen Gen(C, GetParam().Seed, Opts);
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    TermGen::Generated G = Gen.generate();
    ASSERT_TRUE(isClosed(G.E)) << G.E->str();
    Result<const Type *> T = TC.typeOfClosed(G.E);
    ASSERT_TRUE(T.ok()) << "generated ill-typed term: " << G.E->str()
                        << "\n  error: " << T.error();
    EXPECT_TRUE(typeEqual(*T, G.Ty))
        << "generator type " << G.Ty->str() << " vs checker type "
        << (*T)->str() << "\n  term: " << G.E->str();
  }
}

TEST_P(MetatheoryTest, Preservation) {
  LContext C;
  TypeChecker TC(C);
  Evaluator Ev(C);
  TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  TermGen Gen(C, GetParam().Seed ^ 0x9e3779b97f4a7c15ull, Opts);
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    TermGen::Generated G = Gen.generate();
    const Expr *Cur = G.E;
    // Follow the whole reduction sequence, checking the type after every
    // step (stronger than single-step preservation).
    for (unsigned Step = 0; Step != 64; ++Step) {
      TypeEnv Env;
      StepResult R = Ev.step(Env, Cur);
      if (R.Status != StepStatus::Stepped)
        break;
      Cur = R.Next;
      Result<const Type *> T = TC.typeOfClosed(Cur);
      ASSERT_TRUE(T.ok()) << "step broke typing (rule " << R.Rule
                          << "): " << Cur->str() << "\n  error: "
                          << T.error() << "\n  from: " << G.E->str();
      ASSERT_TRUE(typeEqual(*T, G.Ty))
          << "type changed from " << G.Ty->str() << " to " << (*T)->str()
          << "\n  after rule " << R.Rule << "\n  term: " << Cur->str();
    }
  }
}

TEST_P(MetatheoryTest, Progress) {
  LContext C;
  Evaluator Ev(C);
  TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  TermGen Gen(C, GetParam().Seed ^ 0xdeadbeefcafef00dull, Opts);
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    TermGen::Generated G = Gen.generate();
    const Expr *Cur = G.E;
    for (unsigned Step = 0; Step != 64; ++Step) {
      TypeEnv Env;
      StepResult R = Ev.step(Env, Cur);
      // Progress: never stuck.
      ASSERT_NE(R.Status, StepStatus::Stuck)
          << "stuck non-value: " << Cur->str() << " (" << R.Rule << ")";
      if (R.Status != StepStatus::Stepped)
        break;
      Cur = R.Next;
    }
  }
}

// Terms reach a value or bottom within a generous fuel bound: L has no
// recursion, so reduction always terminates (strong normalization).
TEST_P(MetatheoryTest, Termination) {
  LContext C;
  Evaluator Ev(C);
  TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  TermGen Gen(C, GetParam().Seed ^ 0x12345678u, Opts);
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    TermGen::Generated G = Gen.generate();
    RunResult R = Ev.runClosed(G.E, 100000);
    EXPECT_TRUE(R.Final == StepStatus::Value ||
                R.Final == StepStatus::Bottom)
        << "did not terminate cleanly: " << G.E->str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MetatheoryTest,
    ::testing::Values(GenParams{1, 3}, GenParams{2, 4}, GenParams{3, 5},
                      GenParams{4, 5}, GenParams{5, 6}, GenParams{6, 6},
                      GenParams{7, 7}, GenParams{8, 4}),
    [](const ::testing::TestParamInfo<GenParams> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "depth" +
             std::to_string(Info.param.MaxDepth);
    });

} // namespace
