//===- anf_simulation_test.cpp - Compilation & Simulation theorems --------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Property tests for the two compilation theorems of Section 6.3:
//
//   Compilation: if Γ ⊢ e : τ (and Γ ∝ V) then ⟦e⟧ᵥΓ ⇝ t — compilation
//     is *total* on well-typed terms.
//   Simulation:  if Γ ⊢ e : τ and Γ ⊢ e → e', then ⟦e⟧ ⇝ t, ⟦e'⟧ ⇝ t',
//     and t ⇔ t' — the machine agrees with the reduction semantics.
//
// Joinability t ⇔ t' is approximated by the observational oracle in
// anf/Joinability.h. We additionally check full-run agreement: the L
// evaluator's final outcome matches the M machine's on the compiled term.
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"
#include "anf/Joinability.h"
#include "lcalc/Eval.h"
#include "lcalc/Gen.h"
#include "mcalc/Machine.h"

#include <gtest/gtest.h>

using namespace levity;

namespace {

struct SimParams {
  uint64_t Seed;
  unsigned MaxDepth;
};

class SimulationTest : public ::testing::TestWithParam<SimParams> {};

constexpr unsigned TermsPerCase = 200;

// Compilation theorem: every well-typed closed term compiles.
TEST_P(SimulationTest, CompilationIsTotalOnWellTypedTerms) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::Compiler Comp(L, MC);
  lcalc::TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  lcalc::TermGen Gen(L, GetParam().Seed, Opts);
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    lcalc::TermGen::Generated G = Gen.generate();
    Result<const mcalc::Term *> T = Comp.compileClosed(G.E);
    ASSERT_TRUE(T.ok()) << "well-typed term failed to compile: "
                        << G.E->str() << "\n  " << T.error();
  }
}

// Simulation theorem, stepwise: compile before and after an L step; the
// results must be joinable.
TEST_P(SimulationTest, StepwiseSimulation) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::Compiler Comp(L, MC);
  anf::JoinOracle Oracle(L, MC);
  lcalc::Evaluator Ev(L);
  lcalc::TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  lcalc::TermGen Gen(L, GetParam().Seed ^ 0xabcdefull, Opts);

  unsigned Unknown = 0, Checked = 0;
  for (unsigned I = 0; I != TermsPerCase; ++I) {
    lcalc::TermGen::Generated G = Gen.generate();
    const lcalc::Expr *Cur = G.E;
    for (unsigned Step = 0; Step != 16; ++Step) {
      lcalc::TypeEnv Env;
      lcalc::StepResult R = Ev.step(Env, Cur);
      if (R.Status != lcalc::StepStatus::Stepped)
        break;
      Result<const mcalc::Term *> T1 = Comp.compileClosed(Cur);
      Result<const mcalc::Term *> T2 = Comp.compileClosed(R.Next);
      ASSERT_TRUE(T1.ok()) << T1.error();
      ASSERT_TRUE(T2.ok()) << T2.error();
      anf::JoinResult J = Oracle.joinable(G.Ty, *T1, *T2);
      ASSERT_NE(J.Verdict, anf::JoinVerdict::NotJoinable)
          << "simulation failed after rule " << R.Rule << "\n  before: "
          << Cur->str() << "\n  after: " << R.Next->str() << "\n  detail: "
          << J.Detail;
      if (J.Verdict == anf::JoinVerdict::Unknown)
        ++Unknown;
      ++Checked;
      Cur = R.Next;
    }
  }
  // The oracle must actually decide most cases, or the test is vacuous.
  ASSERT_GT(Checked, 0u);
  EXPECT_LT(Unknown, Checked / 2)
      << "oracle undecided on " << Unknown << "/" << Checked << " steps";
}

// Full-run agreement: L evaluation and M execution reach consistent
// final outcomes (value vs ⊥), and equal observables at base types.
TEST_P(SimulationTest, FullRunAgreement) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::Compiler Comp(L, MC);
  anf::JoinOracle Oracle(L, MC);
  lcalc::Evaluator Ev(L);
  mcalc::Machine M(MC);
  lcalc::TermGen::Options Opts;
  Opts.MaxDepth = GetParam().MaxDepth;
  lcalc::TermGen Gen(L, GetParam().Seed ^ 0x5eedull, Opts);

  for (unsigned I = 0; I != TermsPerCase; ++I) {
    lcalc::TermGen::Generated G = Gen.generate();
    lcalc::RunResult LR = Ev.runClosed(G.E, 100000);
    Result<const mcalc::Term *> T = Comp.compileClosed(G.E);
    ASSERT_TRUE(T.ok()) << T.error();
    mcalc::MachineResult MR = M.run(*T, 1000000);

    ASSERT_NE(MR.Status, mcalc::MachineOutcome::Stuck)
        << "compiled code stuck (" << MR.StuckReason << ") for "
        << G.E->str();

    if (LR.Final == lcalc::StepStatus::Bottom) {
      EXPECT_EQ(MR.Status, mcalc::MachineOutcome::Bottom)
          << "L diverged but M did not: " << G.E->str();
      continue;
    }
    ASSERT_EQ(LR.Final, lcalc::StepStatus::Value);
    ASSERT_EQ(MR.Status, mcalc::MachineOutcome::Value)
        << "L reached a value but M did not: " << G.E->str();

    // Compare observables by compiling the L value and asking the oracle.
    Result<const mcalc::Term *> TV = Comp.compileClosed(LR.Last);
    ASSERT_TRUE(TV.ok()) << TV.error();
    anf::JoinResult J = Oracle.joinable(G.Ty, *T, *TV);
    EXPECT_NE(J.Verdict, anf::JoinVerdict::NotJoinable)
        << "final values disagree for " << G.E->str() << "\n  L value: "
        << LR.Last->str() << "\n  detail: " << J.Detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimulationTest,
    ::testing::Values(SimParams{11, 3}, SimParams{12, 4}, SimParams{13, 5},
                      SimParams{14, 5}, SimParams{15, 6}, SimParams{16, 6}),
    [](const ::testing::TestParamInfo<SimParams> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "depth" +
             std::to_string(Info.param.MaxDepth);
    });

//===--------------------------------------------------------------------===//
// Joinability oracle self-tests
//===--------------------------------------------------------------------===//

TEST(JoinOracleTest, DistinguishesDifferentLiterals) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::JoinOracle Oracle(L, MC);
  anf::JoinResult J =
      Oracle.joinable(L.intHashTy(), MC.lit(1), MC.lit(2));
  EXPECT_EQ(J.Verdict, anf::JoinVerdict::NotJoinable);
}

TEST(JoinOracleTest, EquatesEqualBoxes) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::JoinOracle Oracle(L, MC);
  anf::JoinResult J =
      Oracle.joinable(L.intTy(), MC.conLit(4), MC.conLit(4));
  EXPECT_EQ(J.Verdict, anf::JoinVerdict::Joinable);
}

TEST(JoinOracleTest, BottomOnlyMatchesBottom) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::JoinOracle Oracle(L, MC);
  EXPECT_EQ(Oracle.joinable(L.intTy(), MC.error(), MC.error()).Verdict,
            anf::JoinVerdict::Joinable);
  EXPECT_EQ(Oracle.joinable(L.intTy(), MC.error(), MC.conLit(1)).Verdict,
            anf::JoinVerdict::NotJoinable);
}

TEST(JoinOracleTest, ProbesFunctions) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::JoinOracle Oracle(L, MC);
  // λi. i versus λi. 0 at Int# → Int#: distinguished by probing.
  mcalc::MVar I1 = MC.freshInt(), I2 = MC.freshInt();
  const mcalc::Term *Id = MC.lam(I1, MC.var(I1));
  const mcalc::Term *Zero = MC.lam(I2, MC.lit(0));
  const lcalc::Type *Ty = L.arrowTy(L.intHashTy(), L.intHashTy());
  EXPECT_EQ(Oracle.joinable(Ty, Id, Id).Verdict,
            anf::JoinVerdict::Joinable);
  EXPECT_EQ(Oracle.joinable(Ty, Id, Zero).Verdict,
            anf::JoinVerdict::NotJoinable);
}

TEST(JoinOracleTest, ProbesBoxedFunctions) {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::JoinOracle Oracle(L, MC);
  // λp. p versus λp. I#[0]-thunk at Int → Int.
  mcalc::MVar P1 = MC.freshPtr(), P2 = MC.freshPtr();
  const mcalc::Term *Id = MC.lam(P1, MC.var(P1));
  const mcalc::Term *K0 = MC.lam(P2, MC.conLit(0));
  const lcalc::Type *Ty = L.arrowTy(L.intTy(), L.intTy());
  EXPECT_EQ(Oracle.joinable(Ty, Id, Id).Verdict,
            anf::JoinVerdict::Joinable);
  EXPECT_EQ(Oracle.joinable(Ty, Id, K0).Verdict,
            anf::JoinVerdict::NotJoinable);
}

} // namespace
