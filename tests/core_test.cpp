//===- core_test.cpp - Core IR: kinds, types, lint -------------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The generalized kind system of Section 4: TYPE :: Rep -> Type, kinds of
// base/unboxed/tuple types, rep-polymorphic foralls, kinding of (->), and
// the Core-Lint expression checker.
//
//===----------------------------------------------------------------------===//

#include "core/LevityCheck.h"
#include "core/TypeCheck.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::core;

namespace {

class CoreKindTest : public ::testing::Test {
protected:
  CoreContext C;
  CoreChecker Checker{C};
  CoreEnv Env;

  const Kind *kindOk(const Type *T) {
    Result<const Kind *> K = Checker.kindOf(Env, T);
    EXPECT_TRUE(K.ok()) << (K.ok() ? "" : K.error()) << " for " << T->str();
    return K.ok() ? *K : nullptr;
  }
};

// Section 4.1's table of examples.
TEST_F(CoreKindTest, KindsOfBaseTypes) {
  EXPECT_EQ(kindOk(C.intTy())->str(), "Type");
  EXPECT_EQ(kindOk(C.boolTy())->str(), "Type");
  EXPECT_EQ(kindOk(C.intHashTy())->str(), "TYPE IntRep");
  EXPECT_EQ(kindOk(C.floatHashTy())->str(), "TYPE FloatRep");
  EXPECT_EQ(kindOk(C.doubleHashTy())->str(), "TYPE DoubleRep");
}

// Type = TYPE LiftedRep, definitionally.
TEST_F(CoreKindTest, TypeIsSynonymForTYPELiftedRep) {
  EXPECT_TRUE(kindEqual(C.typeKind(), C.kindTYPE(C.liftedRep())));
}

// Section 4.2: unboxed tuple kinds.
TEST_F(CoreKindTest, UnboxedTupleKinds) {
  const Type *T1 = C.unboxedTupleTy({C.intTy(), C.boolTy()});
  EXPECT_EQ(kindOk(T1)->str(), "TYPE TupleRep '[LiftedRep, LiftedRep]");
  const Type *T2 = C.unboxedTupleTy({C.intHashTy(), C.boolTy()});
  EXPECT_EQ(kindOk(T2)->str(), "TYPE TupleRep '[IntRep, LiftedRep]");
  const Type *T0 = C.unboxedTupleTy({});
  EXPECT_EQ(kindOk(T0)->str(), "TYPE TupleRep '[]");
}

// Regression: UnboxedTupleType stores only a span, so the construction
// path must arena-intern the element array. Build a tuple type from a
// temporary vector, let the vector die (and scribble over fresh stack),
// then use the type — a non-interning implementation reads freed memory
// here and returns garbage elements.
TEST_F(CoreKindTest, UnboxedTupleElemsSurviveCallerStorage) {
  const Type *T = nullptr;
  {
    std::vector<const Type *> Temp = {C.intHashTy(), C.doubleHashTy(),
                                      C.intTy()};
    T = C.unboxedTupleTy(Temp);
  } // Temp's buffer is freed here.

  // Occupy the freed allocation/stack region with different pointers so a
  // dangling span cannot accidentally still see the old contents.
  std::vector<const Type *> Clobber(64, C.boolTy());
  ASSERT_EQ(Clobber.size(), 64u);

  const auto *U = cast<UnboxedTupleType>(T);
  ASSERT_EQ(U->elems().size(), 3u);
  EXPECT_EQ(U->elems()[0]->str(), "Int#");
  EXPECT_EQ(U->elems()[1]->str(), "Double#");
  EXPECT_EQ(U->elems()[2]->str(), "Int");
  EXPECT_EQ(kindOk(T)->str(),
            "TYPE TupleRep '[IntRep, DoubleRep, LiftedRep]");
}

// Nested tuples have *different kinds* even when conventions match.
TEST_F(CoreKindTest, NestedTupleKindsDiffer) {
  const Type *Nested = C.unboxedTupleTy(
      {C.intTy(), C.unboxedTupleTy({C.boolTy(), C.intTy()})});
  const Type *Flat =
      C.unboxedTupleTy({C.intTy(), C.boolTy(), C.intTy()});
  EXPECT_FALSE(kindEqual(kindOk(Nested), kindOk(Flat)));
}

// (->) accepts any-rep operands and yields Type (Section 4.3).
TEST_F(CoreKindTest, ArrowKinding) {
  const Type *T = C.funTy(C.intHashTy(), C.doubleHashTy());
  EXPECT_EQ(kindOk(T)->str(), "Type");
}

// forall (r :: Rep). forall (a :: TYPE r). String -> a : the type of
// error, kind Type (arrow body).
TEST_F(CoreKindTest, ErrorTypeKinding) {
  EXPECT_EQ(kindOk(C.errorType())->str(), "Type");
}

// A forall whose body kind mentions the bound rep var cannot erase.
TEST_F(CoreKindTest, EscapingRepVarRejected) {
  Symbol R = C.sym("r"), A = C.sym("a");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *Bad =
      C.forAllTy(R, C.repKind(), C.forAllTy(A, KA, C.varTy(A, KA)));
  Result<const Kind *> K = Checker.kindOf(Env, Bad);
  ASSERT_FALSE(K.ok());
  EXPECT_NE(K.error().find("mentions the bound variable"),
            std::string::npos);
}

// Higher kinds: a tycon of kind Type -> Type applied to Int.
TEST_F(CoreKindTest, HigherKindedApplication) {
  TyCon *Maybe = C.makeTyCon(C.sym("Maybe"),
                             C.kindArrow(C.typeKind(), C.typeKind()),
                             C.liftedRep());
  const Type *T = C.appTy(C.conTy(Maybe), C.intTy());
  EXPECT_EQ(kindOk(T)->str(), "Type");
  // Applying at the wrong kind fails.
  const Type *Bad = C.appTy(C.conTy(Maybe), C.intHashTy());
  EXPECT_FALSE(Checker.kindOf(Env, Bad).ok());
}

// Promoted reps are types of kind Rep.
TEST_F(CoreKindTest, RepLiftKinding) {
  EXPECT_EQ(kindOk(C.repLiftTy(C.intRep()))->str(), "Rep");
}

TEST_F(CoreKindTest, IsConcreteValueKind) {
  EXPECT_TRUE(Checker.isConcreteValueKind(C.typeKind()));
  EXPECT_TRUE(Checker.isConcreteValueKind(C.kindTYPE(C.intRep())));
  EXPECT_TRUE(Checker.isConcreteValueKind(
      C.kindTYPE(C.repTuple({C.intRep(), C.liftedRep()}))));
  EXPECT_FALSE(
      Checker.isConcreteValueKind(C.kindTYPE(C.repVar(C.sym("r")))));
  EXPECT_FALSE(
      Checker.isConcreteValueKind(C.kindTYPE(C.freshRepMeta())));
  EXPECT_FALSE(Checker.isConcreteValueKind(C.kindTYPE(
      C.repTuple({C.intRep(), C.repVar(C.sym("r"))}))));
  EXPECT_FALSE(Checker.isConcreteValueKind(C.repKind()));
}

//===--------------------------------------------------------------------===//
// Equality / substitution / zonking
//===--------------------------------------------------------------------===//

TEST_F(CoreKindTest, AlphaEquality) {
  Symbol A = C.sym("a"), B = C.sym("b");
  const Type *TA = C.forAllTy(
      A, C.typeKind(),
      C.funTy(C.varTy(A, C.typeKind()), C.varTy(A, C.typeKind())));
  const Type *TB = C.forAllTy(
      B, C.typeKind(),
      C.funTy(C.varTy(B, C.typeKind()), C.varTy(B, C.typeKind())));
  EXPECT_TRUE(typeEqual(TA, TB));
}

TEST_F(CoreKindTest, RepForallAlphaEquality) {
  Symbol R = C.sym("r"), Q = C.sym("q"), A = C.sym("a");
  auto Mk = [&](Symbol RV) {
    const Kind *KA = C.kindTYPE(C.repVar(RV));
    return C.forAllTy(RV, C.repKind(),
                      C.forAllTy(A, KA,
                                 C.funTy(C.stringTy(), C.varTy(A, KA))));
  };
  EXPECT_TRUE(typeEqual(Mk(R), Mk(Q)));
}

TEST_F(CoreKindTest, SubstRepVarThroughKinds) {
  // (forall (a :: TYPE r). a -> a)[IntRep/r] instantiates the kind.
  Symbol R = C.sym("r"), A = C.sym("a");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *T =
      C.forAllTy(A, KA, C.funTy(C.varTy(A, KA), C.varTy(A, KA)));
  const Type *Out = substType(C, T, R, C.repLiftTy(C.intRep()));
  const auto *F = cast<ForAllType>(Out);
  EXPECT_EQ(F->varKind()->str(), "TYPE IntRep");
}

TEST_F(CoreKindTest, ZonkResolvesMetaChains) {
  const Type *M1 = C.freshTypeMeta(C.typeKind());
  const Type *M2 = C.freshTypeMeta(C.typeKind());
  C.typeMetaCell(cast<MetaType>(M1)->id()).Solution = M2;
  C.typeMetaCell(cast<MetaType>(M2)->id()).Solution = C.intTy();
  EXPECT_TRUE(typeEqual(C.zonkType(M1), C.intTy()));
}

TEST_F(CoreKindTest, ZonkRepMetas) {
  const RepTy *M = C.freshRepMeta();
  C.repMetaCell(M->metaId()).Solution = C.intRep();
  const RepTy *T = C.repTuple({M, C.liftedRep()});
  EXPECT_EQ(C.zonkRep(T)->str(), "TupleRep '[IntRep, LiftedRep]");
}

TEST_F(CoreKindTest, ConcreteRepBridge) {
  RepContext RC;
  const RepTy *T = C.repTuple({C.intRep(), C.liftedRep()});
  const Rep *R = C.concreteRep(T, RC);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R, RC.tuple({RC.intRep(), RC.lifted()}));
  EXPECT_EQ(C.concreteRep(C.repVar(C.sym("r")), RC), nullptr);
}

//===--------------------------------------------------------------------===//
// Core lint
//===--------------------------------------------------------------------===//

class CoreLintTest : public ::testing::Test {
protected:
  CoreContext C;
  CoreChecker Checker{C};
  CoreEnv Env;

  const Type *typeOk(const Expr *E) {
    Result<const Type *> T = Checker.typeOf(Env, E);
    EXPECT_TRUE(T.ok()) << (T.ok() ? "" : T.error()) << " for " << E->str();
    return T.ok() ? *T : nullptr;
  }
};

TEST_F(CoreLintTest, Literals) {
  EXPECT_TRUE(typeEqual(typeOk(C.litInt(42)), C.intHashTy()));
  EXPECT_TRUE(typeEqual(typeOk(C.litDouble(3.14)), C.doubleHashTy()));
  EXPECT_TRUE(typeEqual(typeOk(C.litString(C.sym("hi"))), C.stringTy()));
}

TEST_F(CoreLintTest, BoxingViaConApp) {
  const Expr *L = C.litInt(5);
  const Expr *E = C.conApp(C.iHashCon(), {}, {&L, 1});
  EXPECT_TRUE(typeEqual(typeOk(E), C.intTy()));
}

TEST_F(CoreLintTest, ConFieldMismatchRejected) {
  const Expr *L = C.litDouble(5.0);
  const Expr *E = C.conApp(C.iHashCon(), {}, {&L, 1});
  EXPECT_FALSE(Checker.typeOf(Env, E).ok());
}

TEST_F(CoreLintTest, PrimOpTyping) {
  const Expr *E = C.primOp(PrimOp::AddI, {C.litInt(1), C.litInt(2)});
  EXPECT_TRUE(typeEqual(typeOk(E), C.intHashTy()));
  const Expr *Bad = C.primOp(PrimOp::AddI, {C.litInt(1), C.litDouble(2)});
  EXPECT_FALSE(Checker.typeOf(Env, Bad).ok());
}

TEST_F(CoreLintTest, LambdaAndApplication) {
  Symbol X = C.sym("x");
  const Expr *Id = C.lam(X, C.intHashTy(), C.var(X));
  EXPECT_TRUE(
      typeEqual(typeOk(Id), C.funTy(C.intHashTy(), C.intHashTy())));
  const Expr *App = C.app(Id, C.litInt(3), /*StrictArg=*/true);
  EXPECT_TRUE(typeEqual(typeOk(App), C.intHashTy()));
}

// The strictness bit must agree with the argument kind.
TEST_F(CoreLintTest, StrictnessBitChecked) {
  Symbol X = C.sym("x");
  const Expr *Id = C.lam(X, C.intHashTy(), C.var(X));
  const Expr *Wrong = C.app(Id, C.litInt(3), /*StrictArg=*/false);
  Result<const Type *> T = Checker.typeOf(Env, Wrong);
  ASSERT_FALSE(T.ok());
  EXPECT_NE(T.error().find("strictness bit"), std::string::npos);
}

TEST_F(CoreLintTest, TypeAbstractionAndApplication) {
  // /\(a :: Type) -> \(x :: a) -> x, applied at Int.
  Symbol A = C.sym("a"), X = C.sym("x");
  const Type *AT = C.varTy(A, C.typeKind());
  const Expr *PolyId = C.tyLam(A, C.typeKind(), C.lam(X, AT, C.var(X)));
  const Type *PolyTy = typeOk(PolyId);
  ASSERT_NE(PolyTy, nullptr);
  EXPECT_EQ(PolyTy->str(), "forall (a :: Type). a -> a");
  const Expr *AtInt = C.tyApp(PolyId, C.intTy());
  EXPECT_TRUE(typeEqual(typeOk(AtInt), C.funTy(C.intTy(), C.intTy())));
  // At a wrongly-kinded type: rejected.
  EXPECT_FALSE(Checker.typeOf(Env, C.tyApp(PolyId, C.intHashTy())).ok());
}

// Rep instantiation: id :: forall (r::Rep) (a::TYPE r). a -> a applied
// at 'IntRep then Int# — the Section 4.3 story, expression-level.
TEST_F(CoreLintTest, RepPolymorphicInstantiation) {
  Symbol R = C.sym("r"), A = C.sym("a"), X = C.sym("x");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  // The *expression* binds x :: a (levity-polymorphic binder!); Lint
  // accepts it — LevityCheck is the pass that rejects (tested there).
  const Expr *E = C.tyLam(
      R, C.repKind(), C.tyLam(A, KA, C.lam(X, AT, C.var(X))));
  const Type *T = typeOk(E);
  ASSERT_NE(T, nullptr);

  const Expr *Inst =
      C.tyApp(C.tyApp(E, C.repLiftTy(C.intRep())), C.intHashTy());
  EXPECT_TRUE(
      typeEqual(typeOk(Inst), C.funTy(C.intHashTy(), C.intHashTy())));
}

TEST_F(CoreLintTest, CaseOverConstructors) {
  // case True of { True -> 1#; False -> 0# }.
  Alt T, F;
  T.Kind = Alt::AltKind::ConPat;
  T.Con = C.trueCon();
  T.Rhs = C.litInt(1);
  F.Kind = Alt::AltKind::ConPat;
  F.Con = C.falseCon();
  F.Rhs = C.litInt(0);
  Alt Alts[2] = {T, F};
  const Expr *E =
      C.caseOf(C.conApp(C.trueCon(), {}, {}), C.intHashTy(), Alts);
  EXPECT_TRUE(typeEqual(typeOk(E), C.intHashTy()));
}

TEST_F(CoreLintTest, CaseAltTypeMismatchRejected) {
  Alt T;
  T.Kind = Alt::AltKind::Default;
  T.Rhs = C.litDouble(1.0);
  const Expr *E =
      C.caseOf(C.conApp(C.trueCon(), {}, {}), C.intHashTy(), {&T, 1});
  EXPECT_FALSE(Checker.typeOf(Env, E).ok());
}

TEST_F(CoreLintTest, UnboxedTupleExprAndPattern) {
  const Expr *Elems[2] = {C.litInt(1), C.litDouble(2.0)};
  const Expr *Tup = C.unboxedTuple(Elems);
  const Type *T = typeOk(Tup);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->str(), "(# Int#, Double# #)");

  Symbol A = C.sym("ta"), B = C.sym("tb");
  Alt TP;
  TP.Kind = Alt::AltKind::TuplePat;
  TP.Binders = C.arena().copyArray({A, B});
  TP.Rhs = C.var(A);
  const Expr *E = C.caseOf(Tup, C.intHashTy(), {&TP, 1});
  EXPECT_TRUE(typeEqual(typeOk(E), C.intHashTy()));
}

TEST_F(CoreLintTest, ErrorNodeTyping) {
  const Expr *E = C.errorExpr(C.intHashTy(), C.intRep(),
                              C.litString(C.sym("boom")));
  EXPECT_TRUE(typeEqual(typeOk(E), C.intHashTy()));
  // Mismatched rep instantiation is rejected.
  const Expr *Bad = C.errorExpr(C.intHashTy(), C.doubleRep(),
                                C.litString(C.sym("boom")));
  EXPECT_FALSE(Checker.typeOf(Env, Bad).ok());
}

TEST_F(CoreLintTest, LetRecRequiresLiftedBinders) {
  Symbol F = C.sym("f");
  RecBinding B{F, C.intHashTy(), C.litInt(1)};
  const Expr *E = C.letRec({&B, 1}, C.var(F));
  Result<const Type *> T = Checker.typeOf(Env, E);
  ASSERT_FALSE(T.ok());
  EXPECT_NE(T.error().find("unlifted"), std::string::npos);
}

} // namespace
