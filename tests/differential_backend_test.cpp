//===- differential_backend_test.cpp - Tree vs machine as oracles ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The differential harness the widened core→L→ANF→M fragment unlocks:
// every program in the corpus runs on Backend::TreeInterp (the big-step
// core evaluator) and Backend::AbstractMachine (core → L → Figure 7 ANF →
// the Figure 6 machine), and the two RunResults must agree — same status,
// same Int#/Double# value, same error message on ⊥. Programs outside the
// widened fragment must report Unsupported with a "not expressible in L"
// diagnostic, never crash and never silently diverge.
//
// This is deliberately stronger coverage than per-backend unit tests:
// every corpus program is an oracle for both semantics at once.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::driver;

namespace {

struct CorpusProgram {
  const char *Label;   ///< Test-output name.
  const char *Source;  ///< Surface program text.
  const char *Global;  ///< Top-level binding to evaluate.
  bool InFragment;     ///< False: the machine must report Unsupported.
};

// The corpus: arithmetic, comparisons, cases, lets, lambdas, loops,
// Double#, bottoms, and known out-of-fragment shapes.
const CorpusProgram Corpus[] = {
    // Int# arithmetic.
    {"IntLiteral", "v = 42#", "v", true},
    {"Add", "v = 40# +# 2#", "v", true},
    {"NestedArith", "v = (1# +# 2#) *# (3# +# 4#)", "v", true},
    {"SubToNegative", "v = 5# -# 9#", "v", true},
    {"MulChain", "v = 2# *# 3# *# 7#", "v", true},
    {"Quot", "v = quotInt# 17# 5#", "v", true},
    {"Rem", "v = remInt# 17# 5#", "v", true},
    // Both division hazards must fail as runtime errors on both
    // backends, never crash the process.
    {"QuotByZeroAgrees", "v = quotInt# 1# 0#", "v", true},
    {"QuotOverflowDoesNotCrash",
     "v = quotInt# (0# -# 9223372036854775807# -# 1#) (0# -# 1#)", "v",
     true},
    {"Negate", "v = negateInt# 21#", "v", true},

    // Int# comparisons (0/1 results).
    {"LtTrue", "v = 3# <# 4#", "v", true},
    {"LtFalse", "v = 4# <# 3#", "v", true},
    {"LeEqual", "v = 4# <=# 4#", "v", true},
    {"Gt", "v = 9# ># 2#", "v", true},
    {"GeFalse", "v = 1# >=# 2#", "v", true},
    {"EqHash", "v = 5# ==# 5#", "v", true},
    {"NeFalse", "v = 5# /=# 5#", "v", true},

    // Boxing, cases, lets, lambdas.
    {"BoxedRoundTrip",
     "inc :: Int -> Int ;"
     "inc n = case n of { I# x -> I# (x +# 1#) } ;"
     "v = inc (inc (I# 40#))",
     "v", true},
    {"SurfaceLet", "v = let y = 20# in y +# 22#", "v", true},
    {"LambdaApply",
     "apply :: (Int# -> Int#) -> Int# -> Int# ;"
     "apply f x = f x ;"
     "v = apply (\\y -> y *# 3#) 14#",
     "v", true},
    {"LitCaseFirstAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 0#",
     "v", true},
    {"LitCaseSecondAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 1#",
     "v", true},
    {"LitCaseDefaultAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 9#",
     "v", true},
    {"BoxedLitCase",
     "f :: Int -> Int ;"
     "f n = case n of { 0 -> I# 7# ; _ -> n } ;"
     "v = f (I# 0#)",
     "v", true},

    // Loops and recursion (the fix/RECLET path).
    {"SumToUnboxed",
     "sumToH :: Int# -> Int# -> Int# ;"
     "sumToH acc n = case n of {"
     "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
     "} ;"
     "v = sumToH 0# 100#",
     "v", true},
    {"SumToUnboxedZeroIters",
     "sumToH :: Int# -> Int# -> Int# ;"
     "sumToH acc n = case n of {"
     "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
     "} ;"
     "v = sumToH 0# 0#",
     "v", true},
    {"FibViaComparisonCase",
     "fib :: Int# -> Int# ;"
     "fib n = case (n <# 2#) of { 1# -> n ; _ ->"
     "  fib (n -# 1#) +# fib (n -# 2#) } ;"
     "v = fib 12#",
     "v", true},
    {"MutualViaSelfParity",
     "parity :: Int# -> Int# ;"
     "parity n = case n of { 0# -> 0# ; _ ->"
     "  case (parity (n -# 1#)) of { 0# -> 1# ; _ -> 0# } } ;"
     "v = parity 7#",
     "v", true},
    {"BoxedSumToLoop",
     "sumTo :: Int -> Int -> Int ;"
     "sumTo acc n = case n of {"
     "  0 -> acc ; _ -> sumTo (acc + n) (n - 1)"
     "} ;"
     "v = sumTo (I# 0#) (I# 50#)",
     "v", true},

    // Double#.
    {"DoubleAdd", "v = 1.5## +## 2.25##", "v", true},
    {"DoubleDiv", "v = 7.0## /## 2.0##", "v", true},
    {"DoubleNegate", "v = negateDouble# 2.5##", "v", true},
    // negateDouble# lowers to -0.0## -## x; plain 0.0## -## x would give
    // +0.0 for x = 0.0 and flip this quotient's infinity sign.
    {"DoubleNegateSignedZero",
     "v = 1.0## /## (negateDouble# 0.0##)", "v", true},
    {"DoubleLtTrue", "v = 2.5## <## 2.75##", "v", true},
    {"DoubleEqFalse", "v = 2.5## ==## 2.75##", "v", true},
    {"DoubleSumLoop",
     "sumD :: Double# -> Double# -> Double# ;"
     "sumD acc n = case (n ==## 0.0##) of {"
     "  1# -> acc ; _ -> sumD (acc +## n) (n -## 1.0##)"
     "} ;"
     "v = sumD 0.0## 100.0##",
     "v", true},
    {"MixedDoubleComparisonToInt",
     "v = case (3.0## <## 4.0##) of { 1# -> 10# ; _ -> 20# }", "v", true},

    // Bottom: the diagnostic must match across backends.
    {"ErrorBottom",
     "v :: Int# ;"
     "v = error \"differential bottom\"",
     "v", true},

    // Outside the widened fragment: Unsupported, never divergence.
    {"UnsupportedBoolCase",
     "v = if isTrue# (3# <# 4#) then 1# else 0#", "v", false},
    {"UnsupportedUnboxedTuple", "v = (# 1#, 2# #)", "v", false},
    {"UnsupportedConversion", "v = int2Double# 3#", "v", false},
    {"UnsupportedMutualRecursion",
     "ev :: Int# -> Int# ;"
     "ev n = case n of { 0# -> 1# ; _ -> od (n -# 1#) } ;"
     "od :: Int# -> Int# ;"
     "od n = case n of { 0# -> 0# ; _ -> ev (n -# 1#) } ;"
     "v = ev 10#",
     "v", false},
};

/// Runs one corpus program on both backends and asserts agreement.
void runDifferential(const CorpusProgram &P) {
  SCOPED_TRACE(P.Label);
  Session S;
  auto Comp = S.compile(P.Source);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run(P.Global, Backend::TreeInterp);
  RunResult Mach = Comp->run(P.Global, Backend::AbstractMachine);

  // The tree interpreter runs the whole core language; it must never
  // report a fragment restriction.
  ASSERT_NE(Tree.St, RunResult::Status::Unsupported) << Tree.Error;

  if (!P.InFragment) {
    ASSERT_EQ(Mach.St, RunResult::Status::Unsupported) << Mach.Error;
    EXPECT_EQ(Mach.Error.rfind("not expressible in L", 0), 0u)
        << "unsupported programs must carry the fragment diagnostic, got: "
        << Mach.Error;
    return;
  }

  ASSERT_EQ(Tree.St, Mach.St)
      << "status diverged: tree='" << Tree.Error << "' machine='"
      << Mach.Error << "'";
  switch (Tree.St) {
  case RunResult::Status::Ok:
    ASSERT_EQ(Tree.IntValue.has_value(), Mach.IntValue.has_value());
    ASSERT_EQ(Tree.DoubleValue.has_value(), Mach.DoubleValue.has_value());
    if (Tree.IntValue)
      EXPECT_EQ(*Tree.IntValue, *Mach.IntValue);
    if (Tree.DoubleValue)
      EXPECT_DOUBLE_EQ(*Tree.DoubleValue, *Mach.DoubleValue);
    break;
  case RunResult::Status::Bottom:
    EXPECT_EQ(Tree.Error, Mach.Error);
    break;
  default:
    break; // Status equality is the contract for the rest.
  }
}

class DifferentialBackendTest
    : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(DifferentialBackendTest, TreeAndMachineAgree) {
  runDifferential(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialBackendTest, ::testing::ValuesIn(Corpus),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Label);
    });

//===----------------------------------------------------------------------===//
// Cross-cutting agreement properties
//===----------------------------------------------------------------------===//

TEST(DifferentialBackendTest, SumToAgreesAcrossIterationCounts) {
  // The flagship loop at several sizes through one cached Compilation.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "a = sumToH 0# 1# ;"
                        "b = sumToH 0# 17# ;"
                        "c = sumToH 0# 500# ;"
                        "d = sumToH 0# 2000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  const std::pair<const char *, int64_t> Expected[] = {
      {"a", 1}, {"b", 153}, {"c", 125250}, {"d", 2001000}};
  for (const auto &[Name, Value] : Expected) {
    RunResult Tree = Comp->run(Name, Backend::TreeInterp);
    RunResult Mach = Comp->run(Name, Backend::AbstractMachine);
    ASSERT_TRUE(Tree.ok()) << Name << ": " << Tree.Error;
    ASSERT_TRUE(Mach.ok()) << Name << ": " << Mach.Error;
    EXPECT_EQ(Tree.IntValue.value_or(-1), Value) << Name;
    EXPECT_EQ(Mach.IntValue.value_or(-1), Value) << Name;
  }
}

TEST(DifferentialBackendTest, MachineLoopRunsUnboxed) {
  // Section 2.1's claim on the machine side: the unboxed loop's only
  // heap traffic is the letrec knot and the top-level binding chain —
  // the per-iteration path allocates nothing.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "small = sumToH 0# 10# ;"
                        "large = sumToH 0# 1000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Small = Comp->run("small", Backend::AbstractMachine);
  RunResult Large = Comp->run("large", Backend::AbstractMachine);
  ASSERT_TRUE(Small.ok()) << Small.Error;
  ASSERT_TRUE(Large.ok()) << Large.Error;
  // 100x the iterations, identical allocation count.
  EXPECT_EQ(Small.Machine.Allocations, Large.Machine.Allocations);
  EXPECT_GT(Large.Machine.BetaInt, Small.Machine.BetaInt);
}

} // namespace
