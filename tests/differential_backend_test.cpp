//===- differential_backend_test.cpp - Tree vs machine as oracles ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The differential harness the widened core→L→ANF→M fragment unlocks:
// every program in the corpus runs on Backend::TreeInterp (the big-step
// core evaluator), Backend::AbstractMachine (core → L → Figure 7 ANF →
// the Figure 6 machine), and Backend::Bytecode (the same M lowering
// compiled to the flat bytecode VM), and the three RunResults must agree
// — same status, same Int#/Double# value, same error message on ⊥.
// Programs outside the widened fragment must report Unsupported with a
// "not expressible in L" diagnostic, never crash and never silently
// diverge.
//
// This is deliberately stronger coverage than per-backend unit tests:
// every corpus program is an oracle for all three semantics at once.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "DifferentialCorpus.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::driver;

namespace {

using levity::testing::CorpusProgram;
using levity::testing::Corpus;

/// Runs one corpus program on all three backends and asserts agreement.
void runDifferential(const CorpusProgram &P) {
  SCOPED_TRACE(P.Label);
  Session S;
  auto Comp = S.compile(P.Source);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  RunResult Tree = Comp->run(P.Global, Backend::TreeInterp);
  RunResult Mach = Comp->run(P.Global, Backend::AbstractMachine);
  RunResult Bc = Comp->run(P.Global, Backend::Bytecode);

  // The tree interpreter runs the whole core language; it must never
  // report a fragment restriction.
  ASSERT_NE(Tree.St, RunResult::Status::Unsupported) << Tree.Error;

  if (!P.InFragment) {
    ASSERT_EQ(Mach.St, RunResult::Status::Unsupported) << Mach.Error;
    EXPECT_EQ(Mach.Error.rfind("not expressible in L", 0), 0u)
        << "unsupported programs must carry the fragment diagnostic, got: "
        << Mach.Error;
    // The bytecode backend is gated by the same lowering: identical
    // diagnostic, on every backend.
    ASSERT_EQ(Bc.St, RunResult::Status::Unsupported) << Bc.Error;
    EXPECT_EQ(Bc.Error, Mach.Error);
    return;
  }

  // In-fragment programs must actually execute on the VM (the machine
  // fallback is only for bytecode-fragment gaps, and the lowering's
  // whole output compiles).
  EXPECT_EQ(Bc.Used, Backend::Bytecode)
      << "bytecode compile fell back: " << Bc.Error;

  ASSERT_EQ(Tree.St, Mach.St)
      << "status diverged: tree='" << Tree.Error << "' machine='"
      << Mach.Error << "'";
  ASSERT_EQ(Tree.St, Bc.St)
      << "status diverged: tree='" << Tree.Error << "' bytecode='"
      << Bc.Error << "'";
  switch (Tree.St) {
  case RunResult::Status::Ok:
    ASSERT_EQ(Tree.IntValue.has_value(), Mach.IntValue.has_value());
    ASSERT_EQ(Tree.DoubleValue.has_value(), Mach.DoubleValue.has_value());
    ASSERT_EQ(Tree.IntValue.has_value(), Bc.IntValue.has_value());
    ASSERT_EQ(Tree.DoubleValue.has_value(), Bc.DoubleValue.has_value());
    if (Tree.IntValue) {
      EXPECT_EQ(*Tree.IntValue, *Mach.IntValue);
      EXPECT_EQ(*Tree.IntValue, *Bc.IntValue);
    }
    if (Tree.DoubleValue) {
      EXPECT_DOUBLE_EQ(*Tree.DoubleValue, *Mach.DoubleValue);
      EXPECT_DOUBLE_EQ(*Tree.DoubleValue, *Bc.DoubleValue);
    }
    break;
  case RunResult::Status::Bottom:
    EXPECT_EQ(Tree.Error, Mach.Error);
    EXPECT_EQ(Tree.Error, Bc.Error);
    break;
  default:
    break; // Status equality is the contract for the rest.
  }
}

class DifferentialBackendTest
    : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(DifferentialBackendTest, TreeMachineAndBytecodeAgree) {
  runDifferential(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialBackendTest, ::testing::ValuesIn(Corpus),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Label);
    });

//===----------------------------------------------------------------------===//
// Cross-cutting agreement properties
//===----------------------------------------------------------------------===//

TEST(DifferentialBackendTest, SumToAgreesAcrossIterationCounts) {
  // The flagship loop at several sizes through one cached Compilation.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "a = sumToH 0# 1# ;"
                        "b = sumToH 0# 17# ;"
                        "c = sumToH 0# 500# ;"
                        "d = sumToH 0# 2000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  const std::pair<const char *, int64_t> Expected[] = {
      {"a", 1}, {"b", 153}, {"c", 125250}, {"d", 2001000}};
  for (const auto &[Name, Value] : Expected) {
    RunResult Tree = Comp->run(Name, Backend::TreeInterp);
    RunResult Mach = Comp->run(Name, Backend::AbstractMachine);
    RunResult Bc = Comp->run(Name, Backend::Bytecode);
    ASSERT_TRUE(Tree.ok()) << Name << ": " << Tree.Error;
    ASSERT_TRUE(Mach.ok()) << Name << ": " << Mach.Error;
    ASSERT_TRUE(Bc.ok()) << Name << ": " << Bc.Error;
    EXPECT_EQ(Tree.IntValue.value_or(-1), Value) << Name;
    EXPECT_EQ(Mach.IntValue.value_or(-1), Value) << Name;
    EXPECT_EQ(Bc.IntValue.value_or(-1), Value) << Name;
  }
}

TEST(DifferentialBackendTest, MachineLoopRunsUnboxed) {
  // Section 2.1's claim on the machine side: the unboxed loop's only
  // heap traffic is the letrec knot and the top-level binding chain —
  // the per-iteration path allocates nothing.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "small = sumToH 0# 10# ;"
                        "large = sumToH 0# 1000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Small = Comp->run("small", Backend::AbstractMachine);
  RunResult Large = Comp->run("large", Backend::AbstractMachine);
  ASSERT_TRUE(Small.ok()) << Small.Error;
  ASSERT_TRUE(Large.ok()) << Large.Error;
  // 100x the iterations, identical allocation count.
  EXPECT_EQ(Small.Machine.Allocations, Large.Machine.Allocations);
  EXPECT_GT(Large.Machine.BetaInt, Small.Machine.BetaInt);
}

TEST(DifferentialBackendTest, BytecodeLoopRunsUnboxedAtConstantDepth) {
  // The Section 2.1 claim in the VM's own cost model: the loop's
  // arguments stay in Int# registers — no thunks, no I# boxes, no
  // closures, no PAPs per iteration — and the self-call is a saturated
  // TailCallN that re-enters at the same stack position, so the stack
  // stays at constant depth no matter the iteration count. Before
  // multi-arg uncurrying the curried `sumToH acc` spine allocated one
  // closure per iteration; the per-iteration heap traffic is now zero,
  // pinned exactly below.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "small = sumToH 0# 10# ;"
                        "large = sumToH 0# 1000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  RunResult Small = Comp->run("small", Backend::Bytecode);
  RunResult Large = Comp->run("large", Backend::Bytecode);
  ASSERT_TRUE(Small.ok()) << Small.Error;
  ASSERT_TRUE(Large.ok()) << Large.Error;
  ASSERT_EQ(Small.Used, Backend::Bytecode);
  ASSERT_EQ(Large.Used, Backend::Bytecode);
  EXPECT_EQ(Small.Vm.MaxFrameDepth, Large.Vm.MaxFrameDepth)
      << "the recursive call must run as a frame-reusing tail call";
  EXPECT_GT(Large.Vm.TailCalls, Small.Vm.TailCalls);
  EXPECT_GT(Large.Vm.UncurriedCalls, Small.Vm.UncurriedCalls)
      << "the recursive spine must compile to a multi-arg TailCallN";
  // 100x the iterations, *identical* heap traffic: every argument
  // arrives saturated in a register-typed frame slot.
  EXPECT_EQ(Small.Vm.ThunkEvals, Large.Vm.ThunkEvals);
  EXPECT_EQ(Small.Vm.ConAllocs, Large.Vm.ConAllocs);
  EXPECT_EQ(Small.Vm.Allocations, Large.Vm.Allocations)
      << "the unboxed loop must not allocate per iteration";
  EXPECT_EQ(Small.Vm.PapAllocs, 0u);
  EXPECT_EQ(Large.Vm.PapAllocs, 0u);
  // The fused superinstructions carry the loop's arithmetic.
  EXPECT_GT(Large.Vm.FusedOps, Small.Vm.FusedOps);
  // The accessor satellite: steps()/allocations() must read the VM
  // ledger when the VM ran.
  EXPECT_EQ(Large.steps(), Large.Vm.Steps);
  EXPECT_EQ(Large.allocations(), Large.Vm.Allocations);
}

} // namespace
