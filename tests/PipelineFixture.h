//===- PipelineFixture.h - Shared driver-backed test fixture ----*- C++ -*-===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline fixture shared by the integration and surface
/// test suites: one driver::Session per test, with thin views over the
/// Compilation (immutable artifact) and its Executor (this test's run
/// state) so assertions read like the old hand-wired pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef LEVITY_TESTS_PIPELINEFIXTURE_H
#define LEVITY_TESTS_PIPELINEFIXTURE_H

#include "driver/Executor.h"
#include "driver/Session.h"

#include <optional>

namespace levity {

struct Pipeline {
  driver::Session S;
  std::shared_ptr<driver::Compilation> Comp;
  std::optional<driver::Executor> Exec;

  bool compile(std::string_view Src) {
    Comp = S.compile(Src);
    Exec.emplace(Comp);
    return Comp->ok();
  }

  runtime::InterpResult evalName(std::string_view Name) {
    return Exec->evalName(Name);
  }

  const DiagnosticEngine &diags() const { return Comp->diags(); }
  runtime::Interp &interp() { return Exec->interp(); }
  core::CoreContext &ctx() { return Comp->ctx(); }
  const surface::Elaborator &elaborator() const {
    return Comp->elaborator();
  }
};

} // namespace levity

#endif // LEVITY_TESTS_PIPELINEFIXTURE_H
