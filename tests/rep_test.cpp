//===- rep_test.cpp - Unit tests for the Rep algebra (Section 4) ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Covers experiment E2 (Figure 1's boxity/levity quadrant) and Section 4.2
// (unboxed tuple representations, nesting irrelevance at runtime).
//
//===----------------------------------------------------------------------===//

#include "rep/CallingConv.h"
#include "rep/Rep.h"

#include <gtest/gtest.h>

using namespace levity;

namespace {

class RepTest : public ::testing::Test {
protected:
  RepContext RC;
};

// Figure 1: the boxity/levity quadrant. Lifted implies boxed; the
// lifted-unboxed corner does not exist.
TEST_F(RepTest, Figure1Quadrant) {
  // Boxed & lifted: Int, Bool.
  EXPECT_TRUE(RC.lifted()->isBoxed());
  EXPECT_TRUE(RC.lifted()->isLifted());
  // Boxed & unlifted: ByteArray#.
  EXPECT_TRUE(RC.unlifted()->isBoxed());
  EXPECT_FALSE(RC.unlifted()->isLifted());
  // Unboxed & unlifted: Int#, Char#, Double#.
  EXPECT_FALSE(RC.intRep()->isBoxed());
  EXPECT_FALSE(RC.intRep()->isLifted());
  EXPECT_FALSE(RC.doubleRep()->isBoxed());
  EXPECT_FALSE(RC.doubleRep()->isLifted());
}

// The lifted-unboxed corner is uninhabited by construction: every
// constructor is either boxed or unlifted.
TEST_F(RepTest, LiftedImpliesBoxed) {
  const Rep *All[] = {RC.lifted(),  RC.unlifted(), RC.intRep(),
                      RC.wordRep(), RC.floatRep(), RC.doubleRep(),
                      RC.addrRep(), RC.tuple({RC.lifted(), RC.intRep()}),
                      RC.sum({RC.lifted(), RC.intRep()})};
  for (const Rep *R : All)
    EXPECT_TRUE(!R->isLifted() || R->isBoxed()) << R->str();
}

TEST_F(RepTest, AtomsAreSingletons) {
  EXPECT_EQ(RC.intRep(), RC.atom(RepCtor::Int));
  EXPECT_NE(RC.intRep(), RC.wordRep());
}

TEST_F(RepTest, TuplesAreInterned) {
  const Rep *A = RC.tuple({RC.intRep(), RC.lifted()});
  const Rep *B = RC.tuple({RC.intRep(), RC.lifted()});
  const Rep *C = RC.tuple({RC.lifted(), RC.intRep()});
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
}

TEST_F(RepTest, SumAndTupleDiffer) {
  const Rep *T = RC.tuple({RC.intRep()});
  const Rep *S = RC.sum({RC.intRep()});
  EXPECT_NE(T, S);
}

TEST_F(RepTest, UnitTupleHasNoRegisters) {
  // (# #) :: TYPE (TupleRep '[]) — represented by nothing at all.
  const Rep *Unit = RC.unitTuple();
  EXPECT_TRUE(Unit->registers().empty());
  EXPECT_EQ(Unit->widthBytes(), 0u);
}

// Section 4.1's examples: kinds of Int, Int#, Float#.
TEST_F(RepTest, PrintsHaskellStyle) {
  EXPECT_EQ(RC.lifted()->str(), "LiftedRep");
  EXPECT_EQ(RC.intRep()->str(), "IntRep");
  EXPECT_EQ(RC.tuple({RC.intRep(), RC.lifted()})->str(),
            "TupleRep '[IntRep, LiftedRep]");
}

// Section 4.2: (# Int, Bool #) is two pointer registers;
// (# Int#, Bool #) is an integer register and a pointer register.
TEST_F(RepTest, TupleRegisterAssignment) {
  const Rep *Both = RC.tuple({RC.lifted(), RC.lifted()});
  std::vector<RegClass> Regs = Both->registers();
  ASSERT_EQ(Regs.size(), 2u);
  EXPECT_EQ(Regs[0], RegClass::GcPtr);
  EXPECT_EQ(Regs[1], RegClass::GcPtr);

  const Rep *Mixed = RC.tuple({RC.intRep(), RC.lifted()});
  Regs = Mixed->registers();
  ASSERT_EQ(Regs.size(), 2u);
  EXPECT_EQ(Regs[0], RegClass::IntReg);
  EXPECT_EQ(Regs[1], RegClass::GcPtr);
}

// Section 4.2: (# Int, (# Bool, Double #) #) and
// (# (# Char, String #), Int #) have *different kinds* but the *same*
// runtime representation (three GC pointers).
TEST_F(RepTest, NestingIsComputationallyIrrelevant) {
  const Rep *Nested1 =
      RC.tuple({RC.lifted(), RC.tuple({RC.lifted(), RC.lifted()})});
  const Rep *Nested2 =
      RC.tuple({RC.tuple({RC.lifted(), RC.lifted()}), RC.lifted()});
  const Rep *Flat = RC.tuple({RC.lifted(), RC.lifted(), RC.lifted()});

  // Different kinds (no function may be polymorphic over both)...
  EXPECT_NE(Nested1, Nested2);
  EXPECT_NE(Nested1, Flat);
  // ...but identical calling conventions.
  EXPECT_TRUE(Nested1->sameConvention(Nested2));
  EXPECT_TRUE(Nested1->sameConvention(Flat));
}

TEST_F(RepTest, DifferentClassesDifferentConvention) {
  EXPECT_FALSE(RC.intRep()->sameConvention(RC.doubleRep()));
  EXPECT_FALSE(RC.intRep()->sameConvention(RC.lifted()));
  // Int# and Word# share a register class, hence a convention — but they
  // are distinct reps (and kinds).
  EXPECT_TRUE(RC.intRep()->sameConvention(RC.wordRep()));
  EXPECT_NE(RC.intRep(), RC.wordRep());
}

TEST_F(RepTest, WidthsAreSane) {
  EXPECT_EQ(RC.lifted()->widthBytes(), 8u);
  EXPECT_EQ(RC.intRep()->widthBytes(), 8u);
  EXPECT_EQ(RC.int8Rep()->widthBytes(), 1u);
  EXPECT_EQ(RC.int16Rep()->widthBytes(), 2u);
  EXPECT_EQ(RC.int32Rep()->widthBytes(), 4u);
  EXPECT_EQ(RC.int64Rep()->widthBytes(), 8u);
  EXPECT_EQ(RC.floatRep()->widthBytes(), 4u);
  EXPECT_EQ(RC.doubleRep()->widthBytes(), 8u);
  EXPECT_EQ(RC.tuple({RC.intRep(), RC.doubleRep()})->widthBytes(), 16u);
}

TEST_F(RepTest, FloatAndDoubleUseFpRegisters) {
  EXPECT_EQ(RC.floatRep()->registers()[0], RegClass::FloatReg);
  EXPECT_EQ(RC.doubleRep()->registers()[0], RegClass::DoubleReg);
}

TEST_F(RepTest, SumRepCarriesTag) {
  const Rep *S = RC.sum({RC.lifted(), RC.intRep()});
  std::vector<RegClass> Regs = S->registers();
  ASSERT_EQ(Regs.size(), 3u);
  EXPECT_EQ(Regs[0], RegClass::IntReg); // tag
}

//===--------------------------------------------------------------------===//
// Calling conventions (kinds determine them)
//===--------------------------------------------------------------------===//

class CallingConvTest : public ::testing::Test {
protected:
  RepContext RC;
};

// sumTo# :: Int# -> Int# -> Int# passes both args in integer registers.
TEST_F(CallingConvTest, UnboxedIntFunction) {
  const Rep *Args[] = {RC.intRep(), RC.intRep()};
  CallingConv CC = CallingConv::compute(Args, RC.intRep());
  EXPECT_EQ(CC.numArgs(), 2u);
  EXPECT_EQ(CC.argRegisters(0)[0], (RegAssignment{RegClass::IntReg, 0}));
  EXPECT_EQ(CC.argRegisters(1)[0], (RegAssignment{RegClass::IntReg, 1}));
  EXPECT_EQ(CC.retRegisters()[0], (RegAssignment{RegClass::IntReg, 0}));
}

// Int and Bool have the same kind, hence the same calling convention
// (Section 4.1): a polymorphic function can share code for them.
TEST_F(CallingConvTest, SameKindSameConvention) {
  const Rep *IntArgs[] = {RC.lifted()};
  const Rep *BoolArgs[] = {RC.lifted()};
  EXPECT_EQ(CallingConv::compute(IntArgs, RC.lifted()),
            CallingConv::compute(BoolArgs, RC.lifted()));
}

// divMod :: Int -> Int -> (# Int, Int #) returns two values in two
// registers — no heap tuple (Section 2.3).
TEST_F(CallingConvTest, UnboxedTupleReturn) {
  const Rep *Args[] = {RC.lifted(), RC.lifted()};
  const Rep *Pair = RC.tuple({RC.lifted(), RC.lifted()});
  CallingConv CC = CallingConv::compute(Args, Pair);
  ASSERT_EQ(CC.retRegisters().size(), 2u);
  EXPECT_EQ(CC.retRegisters()[0], (RegAssignment{RegClass::GcPtr, 0}));
  EXPECT_EQ(CC.retRegisters()[1], (RegAssignment{RegClass::GcPtr, 1}));
}

// (+) :: (# Int, Int #) -> Int compiles to the same convention as
// (+) :: Int -> Int -> Int (Section 2.3).
TEST_F(CallingConvTest, UnboxedTupleArgumentEqualsCurried) {
  const Rep *Pair = RC.tuple({RC.lifted(), RC.lifted()});
  const Rep *TupleArg[] = {Pair};
  const Rep *Curried[] = {RC.lifted(), RC.lifted()};
  CallingConv A = CallingConv::compute(TupleArg, RC.lifted());
  CallingConv B = CallingConv::compute(Curried, RC.lifted());
  // Same flat register usage for arguments.
  EXPECT_TRUE(std::equal(A.allArgRegisters().begin(),
                         A.allArgRegisters().end(),
                         B.allArgRegisters().begin(),
                         B.allArgRegisters().end()));
}

// Mixed-class arguments get independent numbering per class.
TEST_F(CallingConvTest, PerClassNumbering) {
  const Rep *Args[] = {RC.lifted(), RC.intRep(), RC.lifted(),
                       RC.doubleRep()};
  CallingConv CC = CallingConv::compute(Args, RC.lifted());
  EXPECT_EQ(CC.argRegisters(0)[0], (RegAssignment{RegClass::GcPtr, 0}));
  EXPECT_EQ(CC.argRegisters(1)[0], (RegAssignment{RegClass::IntReg, 0}));
  EXPECT_EQ(CC.argRegisters(2)[0], (RegAssignment{RegClass::GcPtr, 1}));
  EXPECT_EQ(CC.argRegisters(3)[0], (RegAssignment{RegClass::DoubleReg, 0}));
  EXPECT_EQ(CC.numArgRegisters(RegClass::GcPtr), 2u);
}

// The empty unboxed tuple occupies no argument registers at all.
TEST_F(CallingConvTest, UnitTupleArgTakesNothing) {
  const Rep *Args[] = {RC.unitTuple(), RC.intRep()};
  CallingConv CC = CallingConv::compute(Args, RC.intRep());
  EXPECT_TRUE(CC.argRegisters(0).empty());
  EXPECT_EQ(CC.argRegisters(1)[0], (RegAssignment{RegClass::IntReg, 0}));
}

TEST_F(CallingConvTest, PrintsReadably) {
  const Rep *Args[] = {RC.intRep(), RC.tuple({RC.lifted(), RC.intRep()})};
  CallingConv CC = CallingConv::compute(Args, RC.intRep());
  EXPECT_EQ(CC.str(), "(I0, [P0, I1]) -> [I0]");
}

} // namespace
