//===- server_test.cpp - levityd: protocol + server semantics -------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The server stack end to end:
//
//   * LEVP/1 wire protocol — format/parse round trips for every request
//     kind, strict per-frame parse errors with stable codes, incremental
//     (byte-at-a-time) feeding, resync after malformed frames;
//   * Server semantics — COMPILE outcomes (front-end / cache-hit /
//     disk-hit), RUN across all three backends, typed BUSY under a full
//     admission queue, typed TIMEOUT from the per-request fuel deadline,
//     EVICT, tenant isolation, and STATS ledgers that reconcile exactly
//     with Session::Stats;
//   * Transports — the stdin/stdout REPL (serveStream) and the
//     Unix-domain socket path, both through the same process() core;
//   * The load generator — a small clean run of the deterministic
//     cold/warm/run/timeout mix.
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"
#include "server/Net.h"
#include "server/Protocol.h"
#include "server/Server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace levity;
using namespace levity::driver;
using namespace levity::server;

namespace {

namespace fs = std::filesystem;

const char *AnswerSrc =
    "square :: Int# -> Int# ;"
    "square x = x *# x ;"
    "answer = square 6# +# 6#";

const char *LoopSrc =
    "sumToH :: Int# -> Int# -> Int# ;"
    "sumToH acc n = case n of {"
    "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
    "} ;"
    "total = sumToH 0# 1000#";

Request compileReq(std::string Tenant, std::string Name,
                   std::string Source) {
  Request R;
  R.K = Request::Kind::Compile;
  R.Tenant = std::move(Tenant);
  R.Name = std::move(Name);
  R.Source = std::move(Source);
  return R;
}

Request runReq(std::string Tenant, std::string Name,
               std::optional<Backend> B = std::nullopt,
               std::optional<uint64_t> Fuel = std::nullopt) {
  Request R;
  R.K = Request::Kind::Run;
  R.Tenant = std::move(Tenant);
  R.Name = std::move(Name);
  R.B = B;
  R.Fuel = Fuel;
  return R;
}

/// Parses a STATS payload ("key value" lines) into a map.
std::map<std::string, uint64_t> parseStats(const std::string &Payload) {
  std::map<std::string, uint64_t> M;
  std::istringstream In(Payload);
  std::string Key;
  uint64_t Value;
  while (In >> Key >> Value)
    M[Key] = Value;
  return M;
}

//===----------------------------------------------------------------------===//
// Protocol: round trips
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, RequestRoundTripsEveryKind) {
  std::vector<Request> Originals;
  Originals.push_back(compileReq("alice", "prog.1", "answer = 1#"));
  Originals.push_back(runReq("bob", "prog-2", Backend::Bytecode, 500));
  Originals.push_back(runReq("bob", "p", std::nullopt, std::nullopt));
  {
    Request R;
    R.K = Request::Kind::Stats;
    R.Tenant = "*";
    Originals.push_back(R);
  }
  {
    Request R;
    R.K = Request::Kind::Evict;
    R.EvictMaxEntries = 4;
    R.EvictMaxBytes = 1 << 20;
    Originals.push_back(R);
  }
  {
    Request R;
    R.K = Request::Kind::Shutdown;
    Originals.push_back(R);
  }

  FrameReader Reader;
  for (const Request &R : Originals)
    Reader.append(formatRequest(R));

  for (const Request &Want : Originals) {
    std::optional<Result<Request>> F = Reader.next();
    ASSERT_TRUE(F.has_value());
    ASSERT_TRUE(F->ok()) << F->error();
    const Request &Got = **F;
    EXPECT_EQ(Got.K, Want.K);
    EXPECT_EQ(Got.Tenant, Want.Tenant);
    EXPECT_EQ(Got.Name, Want.Name);
    EXPECT_EQ(Got.Source, Want.Source);
    EXPECT_EQ(Got.Fuel, Want.Fuel);
    EXPECT_EQ(Got.EvictMaxEntries, Want.EvictMaxEntries);
    EXPECT_EQ(Got.EvictMaxBytes, Want.EvictMaxBytes);
    if (Want.B)
      EXPECT_EQ(Got.B, Want.B);
  }
  EXPECT_FALSE(Reader.next().has_value());
}

TEST(ProtocolTest, FuelWithoutBackendPinsTheWireBackend) {
  // formatRequest must not emit an ambiguous "RUN t n 500": fuel with no
  // backend pins "machine" explicitly.
  std::string Wire = formatRequest(runReq("t", "n", std::nullopt, 500));
  EXPECT_EQ(Wire, "LEVP/1 RUN t n machine 500\n");
}

TEST(ProtocolTest, ResponseRoundTrips) {
  ResponseReader Reader;
  std::vector<Response> Originals = {
      {Response::Status::Ok, "5050"},
      {Response::Status::Busy, "queue full"},
      {Response::Status::Timeout, "out of fuel"},
      {Response::Status::Error, "compile-error: boom"},
      {Response::Status::BadRequest, "bad-version: nope"},
      {Response::Status::Bye, ""},
  };
  for (const Response &R : Originals)
    Reader.append(formatResponse(R));
  for (const Response &Want : Originals) {
    std::optional<Result<Response>> F = Reader.next();
    ASSERT_TRUE(F.has_value());
    ASSERT_TRUE(F->ok()) << F->error();
    EXPECT_EQ((*F)->St, Want.St);
    EXPECT_EQ((*F)->Payload, Want.Payload);
  }
}

TEST(ProtocolTest, PayloadsMayContainNewlines) {
  // Length-prefixed framing: multi-line payloads (diagnostics, stats)
  // pass through byte-exact.
  Response R{Response::Status::Ok, "line one\nline two\n"};
  ResponseReader Reader;
  Reader.append(formatResponse(R));
  std::optional<Result<Response>> F = Reader.next();
  ASSERT_TRUE(F.has_value() && F->ok());
  EXPECT_EQ((*F)->Payload, "line one\nline two\n");

  Request C = compileReq("t", "n", "a = 1# ;\nb = 2#\n");
  FrameReader FR;
  FR.append(formatRequest(C));
  std::optional<Result<Request>> G = FR.next();
  ASSERT_TRUE(G.has_value() && G->ok());
  EXPECT_EQ((*G)->Source, "a = 1# ;\nb = 2#\n");
}

TEST(ProtocolTest, IncrementalFeedingByteAtATime) {
  std::string Wire = formatRequest(compileReq("t", "n", "answer = 7#")) +
                     formatRequest(runReq("t", "n", Backend::TreeInterp));
  FrameReader Reader;
  std::vector<Request> Got;
  for (char C : Wire) {
    Reader.append(std::string_view(&C, 1));
    while (std::optional<Result<Request>> F = Reader.next()) {
      ASSERT_TRUE(F->ok()) << F->error();
      Got.push_back(**F);
    }
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].K, Request::Kind::Compile);
  EXPECT_EQ(Got[0].Source, "answer = 7#");
  EXPECT_EQ(Got[1].K, Request::Kind::Run);
}

//===----------------------------------------------------------------------===//
// Protocol: strict errors and resync
//===----------------------------------------------------------------------===//

/// Feeds one line and expects a parse error whose code prefixes the text.
void expectBadFrame(const std::string &Wire, const std::string &Code) {
  FrameReader Reader;
  Reader.append(Wire);
  std::optional<Result<Request>> F = Reader.next();
  ASSERT_TRUE(F.has_value()) << Wire;
  ASSERT_FALSE(F->ok()) << Wire;
  EXPECT_EQ(F->error().substr(0, Code.size() + 1), Code + ":")
      << F->error();
}

TEST(ProtocolTest, StrictParseErrorsHaveStableCodes) {
  expectBadFrame("LEVP/2 RUN t n\n", "bad-version");
  expectBadFrame("HTTP/1.1 GET /\n", "bad-version");
  expectBadFrame("LEVP/1 FROB t\n", "unknown-command");
  expectBadFrame("LEVP/1 RUN bad!tenant n\n", "bad-tenant");
  expectBadFrame("LEVP/1 RUN t bad$name\n", "bad-name");
  expectBadFrame("LEVP/1 RUN t n quantum\n", "bad-arg");
  expectBadFrame("LEVP/1 RUN t n machine zero\n", "bad-arg");
  expectBadFrame("LEVP/1 RUN t n machine 0\n", "bad-arg");
  expectBadFrame("LEVP/1 RUN t\n", "bad-arg");
  expectBadFrame("LEVP/1 COMPILE t n xyz\n", "bad-length");
  expectBadFrame("LEVP/1 COMPILE t n\n", "bad-arg");
  expectBadFrame("LEVP/1 STATS\n", "bad-arg");
  expectBadFrame("LEVP/1 SHUTDOWN now\n", "bad-arg");
  expectBadFrame("LEVP/1  RUN t n\n", "bad-frame"); // Doubled space.
  expectBadFrame("\n", "bad-frame");
}

TEST(ProtocolTest, OversizedPayloadIsRejectedBeforeBuffering) {
  FrameLimits Limits;
  Limits.MaxSourceBytes = 16;
  FrameReader Reader(Limits);
  Reader.append("LEVP/1 COMPILE t n 1000000\n");
  std::optional<Result<Request>> F = Reader.next();
  ASSERT_TRUE(F.has_value());
  ASSERT_FALSE(F->ok());
  EXPECT_EQ(F->error().substr(0, 18), "payload-too-large:");

  // The (discarded) payload and a following good frame: the reader
  // resyncs at the payload's terminating newline.
  Reader.append(std::string(1000000, 'x') + "\n");
  Reader.append("LEVP/1 RUN t n\n");
  std::optional<Result<Request>> G = Reader.next();
  ASSERT_TRUE(G.has_value());
  ASSERT_TRUE(G->ok()) << G->error();
  EXPECT_EQ((*G)->K, Request::Kind::Run);
}

TEST(ProtocolTest, BadPayloadTerminatorResyncsAtNextLine) {
  FrameReader Reader;
  // Claimed 5 bytes but the sixth byte is not '\n': the remainder of
  // that junk is skipped by line discipline, the next frame parses.
  Reader.append("LEVP/1 COMPILE t n 5\nabcdefgh\n");
  Reader.append("LEVP/1 RUN t n tree\n");
  std::optional<Result<Request>> F = Reader.next();
  ASSERT_TRUE(F.has_value());
  ASSERT_FALSE(F->ok());
  EXPECT_EQ(F->error().substr(0, 10), "bad-frame:");
  std::optional<Result<Request>> G = Reader.next();
  ASSERT_TRUE(G.has_value());
  ASSERT_TRUE(G->ok()) << G->error();
  EXPECT_EQ((*G)->B, Backend::TreeInterp);
}

TEST(ProtocolTest, OverlongHeaderLineResyncs) {
  FrameLimits Limits;
  Limits.MaxLineBytes = 64;
  FrameReader Reader(Limits);
  Reader.append(std::string(200, 'a')); // No newline yet.
  std::optional<Result<Request>> F = Reader.next();
  ASSERT_TRUE(F.has_value());
  ASSERT_FALSE(F->ok());
  EXPECT_EQ(F->error().substr(0, 10), "bad-frame:");
  Reader.append("aaaa\nLEVP/1 SHUTDOWN\n");
  std::optional<Result<Request>> G = Reader.next();
  ASSERT_TRUE(G.has_value());
  ASSERT_TRUE(G->ok()) << G->error();
  EXPECT_EQ((*G)->K, Request::Kind::Shutdown);
}

TEST(ProtocolTest, MalformedFrameNeverStallsFollowingFrames) {
  FrameReader Reader;
  Reader.append("LEVP/1 NONSENSE\n");
  Reader.append(formatRequest(runReq("t", "n")));
  std::optional<Result<Request>> F = Reader.next();
  ASSERT_TRUE(F.has_value());
  ASSERT_FALSE(F->ok());
  std::optional<Result<Request>> G = Reader.next();
  ASSERT_TRUE(G.has_value());
  EXPECT_TRUE(G->ok());
}

//===----------------------------------------------------------------------===//
// Server semantics
//===----------------------------------------------------------------------===//

TEST(ServerTest, CompileRunAcrossBackendsAndOutcomes) {
  Server S({});
  Response C1 = S.handle(compileReq("alice", "answer", AnswerSrc));
  ASSERT_EQ(C1.St, Response::Status::Ok) << C1.Payload;
  EXPECT_EQ(C1.Payload, "outcome=front-end");

  Response C2 = S.handle(compileReq("alice", "answer", AnswerSrc));
  ASSERT_EQ(C2.St, Response::Status::Ok);
  EXPECT_EQ(C2.Payload, "outcome=cache-hit");

  for (Backend B :
       {Backend::TreeInterp, Backend::AbstractMachine, Backend::Bytecode}) {
    Response R = S.handle(runReq("alice", "answer", B));
    ASSERT_EQ(R.St, Response::Status::Ok) << R.Payload;
    EXPECT_EQ(extractInt(R.Payload).value_or(-1), 42)
        << backendName(B) << ": " << R.Payload;
  }

  TenantStats T = S.tenantStats("alice");
  EXPECT_EQ(T.CompileRequests, 2u);
  EXPECT_EQ(T.FrontEndCompiles, 1u);
  EXPECT_EQ(T.CacheHits, 4u); // 1 re-COMPILE + 3 RUN lookups.
  EXPECT_EQ(T.RunsTree, 1u);
  EXPECT_EQ(T.RunsMachine, 1u);
  EXPECT_EQ(T.RunsBytecode, 1u);
  EXPECT_EQ(T.RunErrors, 0u);
  EXPECT_GT(T.Steps, 0u);
}

TEST(ServerTest, UnknownProgramIsATypedError) {
  Server S({});
  Response R = S.handle(runReq("alice", "ghost"));
  EXPECT_EQ(R.St, Response::Status::Error);
  EXPECT_NE(R.Payload.find("unknown-program"), std::string::npos);
  EXPECT_EQ(S.tenantStats("alice").UnknownPrograms, 1u);
  EXPECT_EQ(S.inFlight(), 0u); // The slot was released.
}

TEST(ServerTest, CompileErrorsAreReportedAndCounted) {
  Server S({});
  Response R = S.handle(compileReq("alice", "broken", "answer = \\x ->"));
  EXPECT_EQ(R.St, Response::Status::Error);
  EXPECT_EQ(R.Payload.substr(0, 14), "compile-error:");
  TenantStats T = S.tenantStats("alice");
  EXPECT_EQ(T.CompileErrors, 1u);
  // A failed COMPILE registers nothing.
  EXPECT_EQ(S.handle(runReq("alice", "broken")).St,
            Response::Status::Error);
  EXPECT_EQ(S.tenantStats("alice").UnknownPrograms, 1u);
}

TEST(ServerTest, TenantsAreIsolated) {
  Server S({});
  ASSERT_TRUE(S.handle(compileReq("alice", "answer", AnswerSrc)).ok());
  // bob never registered "answer": same session cache, distinct registry.
  Response R = S.handle(runReq("bob", "answer"));
  EXPECT_EQ(R.St, Response::Status::Error);
  EXPECT_NE(R.Payload.find("unknown-program"), std::string::npos);
  EXPECT_EQ(S.tenantStats("bob").UnknownPrograms, 1u);
  EXPECT_EQ(S.tenantStats("alice").UnknownPrograms, 0u);
}

TEST(ServerTest, FuelDeadlineComesBackAsTypedTimeout) {
  Server S({});
  ASSERT_TRUE(S.handle(compileReq("alice", "total", LoopSrc)).ok());
  for (Backend B :
       {Backend::TreeInterp, Backend::AbstractMachine, Backend::Bytecode}) {
    Response R = S.handle(runReq("alice", "total", B, 1));
    EXPECT_EQ(R.St, Response::Status::Timeout) << backendName(B);
    EXPECT_EQ(R.Payload, "out of fuel") << backendName(B);
  }
  EXPECT_EQ(S.tenantStats("alice").Timeouts, 3u);
  // Full fuel still completes: the deadline is per-request.
  Response Ok = S.handle(runReq("alice", "total", Backend::Bytecode));
  ASSERT_EQ(Ok.St, Response::Status::Ok) << Ok.Payload;
  EXPECT_EQ(extractInt(Ok.Payload).value_or(-1), 500500);
}

TEST(ServerTest, DefaultRunFuelAppliesWhenRequestNamesNone) {
  ServerOptions Opts;
  Opts.DefaultRunFuel = 1;
  Server S(Opts);
  ASSERT_TRUE(S.handle(compileReq("alice", "total", LoopSrc)).ok());
  Response R = S.handle(runReq("alice", "total", Backend::AbstractMachine));
  EXPECT_EQ(R.St, Response::Status::Timeout);
  // An explicit per-request fuel overrides the default.
  Response Ok =
      S.handle(runReq("alice", "total", Backend::AbstractMachine,
                      100000000));
  EXPECT_EQ(Ok.St, Response::Status::Ok) << Ok.Payload;
}

TEST(ServerTest, AdmissionControlRejectsBeyondQueueDepth) {
  ServerOptions Opts;
  Opts.MaxQueueDepth = 1;
  Server S(Opts);
  ASSERT_TRUE(S.handle(compileReq("alice", "answer", AnswerSrc)).ok());

  // A pipelined batch admits requests before executing any of them, so
  // with depth 1 exactly the first RUN is admitted and the rest get a
  // deterministic typed BUSY.
  std::vector<Result<Request>> Frames;
  for (int I = 0; I != 3; ++I)
    Frames.emplace_back(runReq("alice", "answer", Backend::TreeInterp));
  std::vector<Response> Out = S.process(Frames);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_EQ(Out[0].St, Response::Status::Ok) << Out[0].Payload;
  EXPECT_EQ(Out[1].St, Response::Status::Busy);
  EXPECT_EQ(Out[2].St, Response::Status::Busy);
  EXPECT_EQ(S.tenantStats("alice").Rejected, 2u);
  EXPECT_EQ(S.inFlight(), 0u);

  // Sequential requests are admitted again — the slots were released.
  EXPECT_TRUE(S.handle(runReq("alice", "answer")).ok());
}

TEST(ServerTest, PipelinedRunsBatchThroughRunAll) {
  Server S({});
  ASSERT_TRUE(S.handle(compileReq("alice", "answer", AnswerSrc)).ok());
  ASSERT_TRUE(S.handle(compileReq("alice", "total", LoopSrc)).ok());

  std::vector<Result<Request>> Frames;
  for (int I = 0; I != 8; ++I)
    Frames.emplace_back(runReq("alice", I % 2 ? "answer" : "total",
                               I % 4 < 2 ? Backend::TreeInterp
                                         : Backend::Bytecode));
  std::vector<Response> Out = S.process(Frames);
  ASSERT_EQ(Out.size(), 8u);
  for (int I = 0; I != 8; ++I) {
    ASSERT_EQ(Out[I].St, Response::Status::Ok) << I << ": " << Out[I].Payload;
    EXPECT_EQ(extractInt(Out[I].Payload).value_or(-1),
              I % 2 ? 42 : 500500)
        << I;
  }
  TenantStats T = S.tenantStats("alice");
  EXPECT_EQ(T.RunsTree + T.RunsMachine + T.RunsBytecode, 8u);
}

TEST(ServerTest, MixedBatchAnswersEveryFrameInOrder) {
  Server S({});
  std::vector<Result<Request>> Frames;
  Frames.emplace_back(compileReq("alice", "answer", AnswerSrc));
  Frames.emplace_back(err(std::string("bad-version: nope")));
  Frames.emplace_back(runReq("alice", "answer", Backend::TreeInterp));
  Request St;
  St.K = Request::Kind::Stats;
  St.Tenant = "alice";
  Frames.emplace_back(St);

  std::vector<Response> Out = S.process(Frames);
  ASSERT_EQ(Out.size(), 4u);
  EXPECT_EQ(Out[0].St, Response::Status::Ok);
  EXPECT_EQ(Out[1].St, Response::Status::BadRequest);
  EXPECT_EQ(Out[2].St, Response::Status::Ok);
  EXPECT_EQ(Out[3].St, Response::Status::Ok);
  EXPECT_EQ(S.badRequests(), 1u);
  EXPECT_EQ(extractInt(Out[2].Payload).value_or(-1), 42);
}

TEST(ServerTest, EvictEnforcesStoreBudgetsNow) {
  std::string Dir = (fs::temp_directory_path() /
                     ("levity-server-evict-" +
                      std::to_string(::getpid())))
                        .string();
  fs::remove_all(Dir);
  ServerOptions Opts;
  Opts.Compile.StorePath = Dir;
  {
    Server S(Opts);
    for (int I = 0; I != 4; ++I)
      ASSERT_TRUE(S.handle(compileReq("alice", "p" + std::to_string(I),
                                      "answer = " + std::to_string(I) +
                                          "# +# 1#"))
                      .ok());
    S.session().flushStoreWrites();

    Request E;
    E.K = Request::Kind::Evict;
    E.EvictMaxEntries = 1;
    Response R = S.handle(E);
    ASSERT_EQ(R.St, Response::Status::Ok);
    EXPECT_EQ(R.Payload, "evicted=3");

    Request StReq;
    StReq.K = Request::Kind::Stats;
    StReq.Tenant = "*";
    std::map<std::string, uint64_t> St =
        parseStats(S.handle(StReq).Payload);
    EXPECT_EQ(St["session-disk-evictions"], 3u);
  }
  fs::remove_all(Dir);
}

TEST(ServerTest, StatsReconcileExactlyWithSession) {
  Server S({});
  ASSERT_TRUE(S.handle(compileReq("alice", "answer", AnswerSrc)).ok());
  ASSERT_TRUE(S.handle(compileReq("bob", "total", LoopSrc)).ok());
  ASSERT_TRUE(S.handle(compileReq("bob", "answer", AnswerSrc)).ok());
  for (int I = 0; I != 3; ++I) {
    ASSERT_TRUE(S.handle(runReq("alice", "answer")).ok());
    ASSERT_TRUE(S.handle(runReq("bob", "total", Backend::Bytecode)).ok());
  }
  S.handle(runReq("carol", "ghost")); // UnknownPrograms for a 3rd tenant.

  TenantStats Sum;
  for (const auto &[Name, T] : S.allTenantStats()) {
    Sum.FrontEndCompiles += T.FrontEndCompiles;
    Sum.CacheHits += T.CacheHits;
    Sum.DiskHits += T.DiskHits;
  }
  Session::Stats St = S.session().stats();
  EXPECT_EQ(Sum.FrontEndCompiles, St.Compilations);
  EXPECT_EQ(Sum.CacheHits, St.CacheHits);
  EXPECT_EQ(Sum.DiskHits, St.DiskHits);

  // And the wire-level "*" snapshot carries the same reconciliation.
  Request StReq;
  StReq.K = Request::Kind::Stats;
  StReq.Tenant = "*";
  std::map<std::string, uint64_t> Wire =
      parseStats(S.handle(StReq).Payload);
  EXPECT_EQ(Wire["front-end-compiles"], Wire["session-compilations"]);
  EXPECT_EQ(Wire["cache-hits"], Wire["session-cache-hits"]);
  EXPECT_EQ(Wire["disk-hits"], Wire["session-disk-hits"]);
  EXPECT_EQ(Wire["tenants"], 3u);
}

TEST(ServerTest, ShutdownRequestAnswersByeAndUnblocksWaiters) {
  Server S({});
  std::thread Waiter([&] { S.waitForShutdown(); });
  Request R;
  R.K = Request::Kind::Shutdown;
  Response Resp = S.handle(R);
  EXPECT_EQ(Resp.St, Response::Status::Bye);
  EXPECT_TRUE(S.shutdownRequested());
  Waiter.join();
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

TEST(ServerStreamTest, ServeStreamSpeaksTheFullProtocol) {
  std::string Src(AnswerSrc);
  std::string Wire = formatRequest(compileReq("alice", "answer", Src)) +
                     formatRequest(runReq("alice", "answer",
                                          Backend::Bytecode)) +
                     "LEVP/1 NONSENSE\n" +
                     formatRequest(runReq("alice", "answer",
                                          Backend::TreeInterp, 1));
  Request Bye;
  Bye.K = Request::Kind::Shutdown;
  Wire += formatRequest(Bye);

  std::istringstream In(Wire);
  std::ostringstream Out;
  Server S({});
  S.serveStream(In, Out);
  EXPECT_TRUE(S.shutdownRequested());

  ResponseReader Reader;
  Reader.append(Out.str());
  std::vector<Response> Got;
  while (std::optional<Result<Response>> F = Reader.next()) {
    ASSERT_TRUE(F->ok()) << F->error();
    Got.push_back(std::move(**F));
  }
  ASSERT_EQ(Got.size(), 5u);
  EXPECT_EQ(Got[0].St, Response::Status::Ok);
  EXPECT_EQ(Got[0].Payload, "outcome=front-end");
  EXPECT_EQ(Got[1].St, Response::Status::Ok);
  EXPECT_EQ(extractInt(Got[1].Payload).value_or(-1), 42);
  EXPECT_EQ(Got[2].St, Response::Status::BadRequest);
  EXPECT_EQ(Got[3].St, Response::Status::Timeout);
  EXPECT_EQ(Got[3].Payload, "out of fuel");
  EXPECT_EQ(Got[4].St, Response::Status::Bye);
}

TEST(ServerSocketTest, SocketClientsCompileRunAndShutDown) {
  if (!haveSockets())
    GTEST_SKIP() << "no unix-domain sockets on this platform";
  std::string Path = (fs::temp_directory_path() /
                      ("levity-ut-" + std::to_string(::getpid()) + ".sock"))
                         .string();
  Server S({});
  Result<bool> L = S.listenUnix(Path);
  ASSERT_TRUE(L.ok()) << L.error();

  {
    Result<std::unique_ptr<SocketClient>> C = SocketClient::connect(Path);
    ASSERT_TRUE(C.ok()) << C.error();
    // One pipelined exchange: compile + three runs.
    std::vector<Request> Batch;
    Batch.push_back(compileReq("alice", "answer", AnswerSrc));
    Batch.push_back(runReq("alice", "answer", Backend::TreeInterp));
    Batch.push_back(runReq("alice", "answer", Backend::AbstractMachine));
    Batch.push_back(runReq("alice", "answer", Backend::Bytecode));
    Result<std::vector<Response>> R = (*C)->exchange(Batch);
    ASSERT_TRUE(R.ok()) << R.error();
    ASSERT_EQ(R->size(), 4u);
    EXPECT_EQ((*R)[0].Payload, "outcome=front-end");
    for (int I = 1; I != 4; ++I)
      EXPECT_EQ(extractInt((*R)[I].Payload).value_or(-1), 42) << I;
  }
  {
    // A second connection shares the registry and the ledgers.
    Result<std::unique_ptr<SocketClient>> C = SocketClient::connect(Path);
    ASSERT_TRUE(C.ok()) << C.error();
    Result<std::vector<Response>> R =
        (*C)->exchange({runReq("alice", "answer")});
    ASSERT_TRUE(R.ok()) << R.error();
    EXPECT_EQ(extractInt((*R)[0].Payload).value_or(-1), 42);

    Request Bye;
    Bye.K = Request::Kind::Shutdown;
    Result<std::vector<Response>> B = (*C)->exchange({Bye});
    ASSERT_TRUE(B.ok()) << B.error();
    EXPECT_EQ((*B)[0].St, Response::Status::Bye);
  }
  S.waitForShutdown();
  EXPECT_EQ(S.tenantStats("alice").RunsTree, 2u);
}

//===----------------------------------------------------------------------===//
// The load generator
//===----------------------------------------------------------------------===//

TEST(LoadGenTest, ExtractIntHandlesEveryDisplayShape) {
  EXPECT_EQ(extractInt("5050#").value_or(-1), 5050);
  EXPECT_EQ(extractInt("5050").value_or(-1), 5050);
  EXPECT_EQ(extractInt("I#[42]").value_or(-1), 42);
  EXPECT_EQ(extractInt("I# 42#").value_or(-1), 42);
  EXPECT_EQ(extractInt("x = -7#").value_or(0), -7);
  EXPECT_FALSE(extractInt("<closure>").has_value());
}

TEST(LoadGenTest, WorkloadProgramsComputeTheirExpectedAnswers) {
  Session S;
  for (const WorkProgram &P : makeWorkload(3)) {
    auto Comp = S.compile(P.Source);
    ASSERT_TRUE(Comp->ok()) << P.Name << ": " << Comp->diagText();
    RunResult R = Comp->run(P.Name, Backend::Bytecode);
    ASSERT_TRUE(R.ok()) << P.Name << ": " << R.Error;
    EXPECT_EQ(R.IntValue.value_or(-1), P.Expected) << P.Name;
  }
}

TEST(LoadGenTest, InProcessLoadRunIsClean) {
  Server S({});
  LoadOptions Load;
  Load.Clients = 3;
  Load.RequestsPerClient = 40;
  Load.Programs = 6;
  LoadReport R = runLoad(
      [&](size_t) { return std::make_unique<InProcessClient>(S); }, Load);
  EXPECT_TRUE(R.clean()) << formatReport(R, false);
  EXPECT_GT(R.Ok, 0u);
  EXPECT_GT(R.Timeouts, 0u); // The fuel-starved probes fired.
  EXPECT_EQ(R.WrongAnswers, 0u);
  EXPECT_EQ(S.inFlight(), 0u);
}

} // namespace