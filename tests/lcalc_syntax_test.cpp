//===- lcalc_syntax_test.cpp - L syntax, alpha-equivalence, substitution --===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Figure 2 structures: values (recursive under Λ), type alpha-equivalence,
// free-variable computation, and capture-avoiding substitution.
//
//===----------------------------------------------------------------------===//

#include "lcalc/Subst.h"
#include "lcalc/Syntax.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::lcalc;

namespace {

class LSyntaxTest : public ::testing::Test {
protected:
  LContext C;

  Symbol s(std::string_view N) { return C.sym(N); }
};

//===--------------------------------------------------------------------===//
// Values (Figure 2)
//===--------------------------------------------------------------------===//

TEST_F(LSyntaxTest, LiteralsAndLambdasAreValues) {
  EXPECT_TRUE(isValue(C.intLit(3)));
  EXPECT_TRUE(isValue(C.lam(s("x"), C.intTy(), C.var(s("x")))));
}

TEST_F(LSyntaxTest, ConOfValueIsValue) {
  EXPECT_TRUE(isValue(C.con(C.intLit(3))));
  // I#[e] with reducible payload is not a value.
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  EXPECT_FALSE(isValue(C.con(Redex)));
}

// Values are recursive under Λ: Λα:κ. v is a value only if v is.
TEST_F(LSyntaxTest, ValueRecursionUnderTypeLambda) {
  const Expr *V = C.tyLam(s("a"), LKind::typePtr(), C.intLit(3));
  EXPECT_TRUE(isValue(V));
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  EXPECT_FALSE(isValue(C.tyLam(s("a"), LKind::typePtr(), Redex)));
}

TEST_F(LSyntaxTest, ValueRecursionUnderRepLambda) {
  EXPECT_TRUE(isValue(C.repLam(s("r"), C.intLit(3))));
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  EXPECT_FALSE(isValue(C.repLam(s("r"), Redex)));
}

TEST_F(LSyntaxTest, ApplicationsAreNotValues) {
  EXPECT_FALSE(isValue(C.app(C.var(s("f")), C.intLit(1))));
  EXPECT_FALSE(isValue(C.error()));
  EXPECT_FALSE(isValue(C.caseOf(C.con(C.intLit(1)), s("x"), C.intLit(2))));
}

//===--------------------------------------------------------------------===//
// Pretty printing
//===--------------------------------------------------------------------===//

TEST_F(LSyntaxTest, PrintsTypes) {
  EXPECT_EQ(C.intTy()->str(), "Int");
  EXPECT_EQ(C.intHashTy()->str(), "Int#");
  EXPECT_EQ(C.arrowTy(C.intHashTy(), C.intHashTy())->str(), "Int# -> Int#");
  // Arrows associate right.
  EXPECT_EQ(
      C.arrowTy(C.arrowTy(C.intTy(), C.intTy()), C.intTy())->str(),
      "(Int -> Int) -> Int");
  EXPECT_EQ(C.errorType()->str(),
            "forall r. forall a:TYPE r. Int -> a");
}

TEST_F(LSyntaxTest, PrintsExprs) {
  const Expr *E = C.app(C.lam(s("x"), C.intTy(), C.var(s("x"))),
                        C.con(C.intLit(4)));
  EXPECT_EQ(E->str(), "(\\x:Int. x) I#[4]");
}

//===--------------------------------------------------------------------===//
// Alpha-equivalence of types
//===--------------------------------------------------------------------===//

TEST_F(LSyntaxTest, AlphaEqualForAll) {
  const Type *A =
      C.forAllTy(s("a"), LKind::typePtr(),
                 C.arrowTy(C.varTy(s("a")), C.varTy(s("a"))));
  const Type *B =
      C.forAllTy(s("b"), LKind::typePtr(),
                 C.arrowTy(C.varTy(s("b")), C.varTy(s("b"))));
  EXPECT_TRUE(typeEqual(A, B));
}

TEST_F(LSyntaxTest, AlphaInequalDifferentKinds) {
  const Type *A = C.forAllTy(s("a"), LKind::typePtr(), C.varTy(s("a")));
  const Type *B = C.forAllTy(s("a"), LKind::typeInt(), C.varTy(s("a")));
  EXPECT_FALSE(typeEqual(A, B));
}

TEST_F(LSyntaxTest, AlphaEqualForAllRep) {
  const Type *A = C.forAllRepTy(
      s("r"), C.forAllTy(s("a"), LKind::typeVar(s("r")),
                         C.arrowTy(C.intTy(), C.varTy(s("a")))));
  const Type *B = C.forAllRepTy(
      s("q"), C.forAllTy(s("b"), LKind::typeVar(s("q")),
                         C.arrowTy(C.intTy(), C.varTy(s("b")))));
  EXPECT_TRUE(typeEqual(A, B));
}

TEST_F(LSyntaxTest, ShadowingRespectsInnermostBinder) {
  // ∀a.∀a. a  ≡  ∀a.∀b. b   but  ∀a.∀a. a  ≢  ∀a.∀b. a.
  const Type *AA = C.forAllTy(
      s("a"), LKind::typePtr(),
      C.forAllTy(s("a"), LKind::typePtr(), C.varTy(s("a"))));
  const Type *AB_b = C.forAllTy(
      s("a"), LKind::typePtr(),
      C.forAllTy(s("b"), LKind::typePtr(), C.varTy(s("b"))));
  const Type *AB_a = C.forAllTy(
      s("a"), LKind::typePtr(),
      C.forAllTy(s("b"), LKind::typePtr(), C.varTy(s("a"))));
  EXPECT_TRUE(typeEqual(AA, AB_b));
  EXPECT_FALSE(typeEqual(AA, AB_a));
}

TEST_F(LSyntaxTest, FreeVariablesMustMatchByName) {
  EXPECT_TRUE(typeEqual(C.varTy(s("a")), C.varTy(s("a"))));
  EXPECT_FALSE(typeEqual(C.varTy(s("a")), C.varTy(s("b"))));
}

//===--------------------------------------------------------------------===//
// Free variables
//===--------------------------------------------------------------------===//

TEST_F(LSyntaxTest, FreeTermVars) {
  const Expr *E = C.lam(s("x"), C.intTy(),
                        C.app(C.var(s("f")), C.var(s("x"))));
  SymbolSet FV;
  freeTermVars(E, FV);
  EXPECT_EQ(FV.size(), 1u);
  EXPECT_TRUE(FV.count(s("f")));
}

TEST_F(LSyntaxTest, CaseBinderScopesOverBodyOnly) {
  // case x of I#[x] -> x : outer x is free (scrutinee), body x is bound.
  const Expr *E = C.caseOf(C.var(s("x")), s("x"), C.var(s("x")));
  SymbolSet FV;
  freeTermVars(E, FV);
  EXPECT_EQ(FV.size(), 1u);
  EXPECT_TRUE(FV.count(s("x")));
}

TEST_F(LSyntaxTest, FreeRepVarsThroughKinds) {
  // Λα:TYPE r. x has r free (in the kind annotation).
  const Expr *E = C.tyLam(s("a"), LKind::typeVar(s("r")), C.intLit(1));
  SymbolSet FV;
  freeRepVars(E, FV);
  EXPECT_TRUE(FV.count(s("r")));
}

TEST_F(LSyntaxTest, IsClosedDetectsEscapes) {
  EXPECT_TRUE(isClosed(C.lam(s("x"), C.intTy(), C.var(s("x")))));
  EXPECT_FALSE(isClosed(C.var(s("x"))));
  EXPECT_FALSE(isClosed(C.tyApp(C.intLit(1), C.varTy(s("a")))));
  EXPECT_FALSE(isClosed(C.repApp(C.intLit(1), RuntimeRep::var(s("r")))));
}

//===--------------------------------------------------------------------===//
// Substitution
//===--------------------------------------------------------------------===//

TEST_F(LSyntaxTest, SubstTermVariable) {
  const Expr *Body = C.app(C.var(s("f")), C.var(s("x")));
  const Expr *Out = substExprInExpr(C, Body, s("x"), C.intLit(7));
  EXPECT_EQ(Out->str(), "f 7");
}

TEST_F(LSyntaxTest, SubstShadowedVariableIsNoOp) {
  const Expr *E = C.lam(s("x"), C.intTy(), C.var(s("x")));
  EXPECT_EQ(substExprInExpr(C, E, s("x"), C.intLit(7)), E);
}

TEST_F(LSyntaxTest, SubstAvoidsCapture) {
  // (λy:Int. x)[y/x] must freshen the binder, not capture.
  const Expr *E = C.lam(s("y"), C.intTy(), C.var(s("x")));
  const Expr *Out = substExprInExpr(C, E, s("x"), C.var(s("y")));
  const auto *L = cast<LamExpr>(Out);
  EXPECT_NE(L->var(), s("y"));
  EXPECT_EQ(cast<VarExpr>(L->body())->name(), s("y"));
}

TEST_F(LSyntaxTest, SubstSharesUnchangedSubtrees) {
  const Expr *E = C.lam(s("y"), C.intTy(), C.intLit(3));
  EXPECT_EQ(substExprInExpr(C, E, s("zzz"), C.intLit(7)), E);
}

TEST_F(LSyntaxTest, SubstTypeInType) {
  const Type *T = C.arrowTy(C.varTy(s("a")), C.varTy(s("a")));
  const Type *Out = substTypeInType(C, T, s("a"), C.intHashTy());
  EXPECT_EQ(Out->str(), "Int# -> Int#");
}

TEST_F(LSyntaxTest, SubstTypeAvoidsCaptureUnderForAll) {
  // (∀b. a -> b)[b/a] must not capture the free b.
  const Type *T = C.forAllTy(s("b"), LKind::typePtr(),
                             C.arrowTy(C.varTy(s("a")), C.varTy(s("b"))));
  const Type *Out = substTypeInType(C, T, s("a"), C.varTy(s("b")));
  const auto *F = cast<ForAllType>(Out);
  EXPECT_NE(F->var(), s("b"));
  const auto *Arrow = cast<ArrowType>(F->body());
  EXPECT_EQ(cast<VarType>(Arrow->param())->name(), s("b"));
  EXPECT_EQ(cast<VarType>(Arrow->result())->name(), F->var());
}

TEST_F(LSyntaxTest, SubstRepInType) {
  const Type *T = C.forAllTy(s("a"), LKind::typeVar(s("r")),
                             C.varTy(s("a")));
  const Type *Out =
      substRepInType(C, T, s("r"), RuntimeRep::integer());
  EXPECT_EQ(cast<ForAllType>(Out)->varKind(), LKind::typeInt());
}

TEST_F(LSyntaxTest, SubstRepShadowed) {
  const Type *T = C.forAllRepTy(
      s("r"), C.forAllTy(s("a"), LKind::typeVar(s("r")), C.varTy(s("a"))));
  EXPECT_EQ(substRepInType(C, T, s("r"), RuntimeRep::pointer()), T);
}

TEST_F(LSyntaxTest, SubstRepInExprKinds) {
  const Expr *E = C.tyLam(s("a"), LKind::typeVar(s("r")),
                          C.lam(s("x"), C.varTy(s("a")), C.var(s("x"))));
  const Expr *Out = substRepInExpr(C, E, s("r"), RuntimeRep::pointer());
  EXPECT_EQ(cast<TyLamExpr>(Out)->varKind(), LKind::typePtr());
}

TEST_F(LSyntaxTest, SubstTypeInExprAnnotations) {
  const Expr *E = C.lam(s("x"), C.varTy(s("a")), C.var(s("x")));
  const Expr *Out = substTypeInExpr(C, E, s("a"), C.intHashTy());
  EXPECT_EQ(cast<LamExpr>(Out)->varType(), C.intHashTy());
}

} // namespace
