//===- classlib_test.cpp - Section 8.1 analysis tests (E9) ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "classlib/Analysis.h"
#include "classlib/Catalog.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::classlib;

namespace {

const AnalysisReport &report() {
  static AnalysisReport R = runClassAnalysis();
  return R;
}

const ClassVerdict *find(const std::string &Name) {
  for (const ClassVerdict &V : report().Verdicts)
    if (V.Name == Name)
      return &V;
  return nullptr;
}

TEST(ClasslibTest, CatalogHas76Classes) {
  EXPECT_EQ(catalogEntries().size(), 76u);
  EXPECT_EQ(report().NumClasses, 76u) << report().Log;
}

TEST(ClasslibTest, EveryCatalogEntryWasAnalyzed) {
  for (const CatalogEntry &E : catalogEntries())
    EXPECT_NE(find(std::string(E.Name)), nullptr)
        << "class " << E.Name << " missing from analysis";
}

// The paper's flagship generalizable classes.
TEST(ClasslibTest, NumericTowerGeneralizes) {
  for (const char *Name :
       {"Num", "Fractional", "Floating", "Real", "RealFloat"}) {
    const ClassVerdict *V = find(Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_TRUE(V->Generalizable) << Name << ": " << V->Reason;
  }
}

TEST(ClasslibTest, ComparisonClassesGeneralize) {
  for (const char *Name : {"Eq", "Ord", "Bounded", "Semigroup", "Monoid",
                           "Bits", "FiniteBits", "IsString"}) {
    const ClassVerdict *V = find(Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_TRUE(V->Generalizable) << Name << ": " << V->Reason;
  }
}

// Classes blocked by lifted-only structure in their minimal methods.
TEST(ClasslibTest, StructurallyBlockedClasses) {
  struct Case {
    const char *Name;
    const char *Why;
  } Cases[] = {
      {"Integral", "quotRem returns a boxed pair (a, a)"},
      {"RealFrac", "properFraction returns (b, a)"},
      {"Read", "readsPrec mentions ReadS a"},
      {"Ix", "range consumes boxed pairs and produces [a]"},
      {"Storable", "peek/poke go through Ptr a"},
      {"Exception", "fromException returns Maybe a"},
      {"Typeable", "typeRep consumes Proxy a"},
      {"Data", "gunfold returns Maybe a"},
      {"Generic", "from/to mention GRep a"},
      {"KnownNat", "natVal consumes Proxy a"},
  };
  for (const Case &C : Cases) {
    const ClassVerdict *V = find(C.Name);
    ASSERT_NE(V, nullptr) << C.Name;
    EXPECT_TRUE(V->ValueKinded) << C.Name;
    EXPECT_FALSE(V->Generalizable)
        << C.Name << " should be blocked (" << C.Why << ")";
  }
}

// Constructor classes are out of scope for class-variable levity
// generalization (their variable has an arrow kind).
TEST(ClasslibTest, ConstructorClassesDetected) {
  for (const char *Name :
       {"Functor", "Applicative", "Monad", "Foldable", "Traversable",
        "Category", "Arrow", "Bifunctor", "Eq1", "Show2"}) {
    const ClassVerdict *V = find(Name);
    ASSERT_NE(V, nullptr) << Name;
    EXPECT_FALSE(V->ValueKinded) << Name;
    EXPECT_FALSE(V->Generalizable) << Name;
  }
  EXPECT_GE(report().NumConstructorClasses, 20u);
}

// The headline number: close to the paper's 34/76. Our reconstruction
// of minimal method sets lands within a small band; EXPERIMENTS.md
// documents the per-class deltas.
TEST(ClasslibTest, GeneralizableCountNearPaper) {
  EXPECT_GE(report().NumGeneralizable, 25u) << formatReport(report());
  EXPECT_LE(report().NumGeneralizable, 40u) << formatReport(report());
}

// Every verdict for a non-generalizable value class carries a reason.
TEST(ClasslibTest, ReasonsAreReported) {
  for (const ClassVerdict &V : report().Verdicts)
    if (V.ValueKinded && !V.Generalizable)
      EXPECT_FALSE(V.Reason.empty()) << V.Name;
}

// The six Section 8.1 functions elaborate at their generalized types.
TEST(ClasslibTest, GeneralizedFunctionsElaborate) {
  ASSERT_EQ(report().GeneralizedFunctions.size(), 6u) << report().Log;
  for (const auto &[Name, Ty] : report().GeneralizedFunctions) {
    EXPECT_NE(Ty.find("TYPE r"), std::string::npos)
        << Name << " :: " << Ty;
    EXPECT_NE(Ty.find("forall (r"), std::string::npos)
        << Name << " :: " << Ty;
  }
}

TEST(ClasslibTest, ReportFormats) {
  std::string S = formatReport(report());
  EXPECT_NE(S.find("GENERALIZE"), std::string::npos);
  EXPECT_NE(S.find("of 76"), std::string::npos);
  EXPECT_NE(S.find("oneShot"), std::string::npos);
}

} // namespace
