//===- surface_syntax_test.cpp - Lexer and parser tests -------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "surface/Parser.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::surface;

namespace {

std::vector<Token> lex(std::string_view Src, DiagnosticEngine &Diags) {
  Lexer L(Src, Diags);
  return L.lexAll();
}

TEST(LexerTest, MagicHashLiterals) {
  DiagnosticEngine D;
  std::vector<Token> T = lex("42 42# 3.14 3.14## 0#", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_EQ(T[0].Kind, TokKind::IntLit);
  EXPECT_EQ(T[0].IntValue, 42);
  EXPECT_EQ(T[1].Kind, TokKind::IntHashLit);
  EXPECT_EQ(T[1].IntValue, 42);
  EXPECT_EQ(T[2].Kind, TokKind::DoubleLit);
  EXPECT_EQ(T[3].Kind, TokKind::DoubleHashLit);
  EXPECT_DOUBLE_EQ(T[3].DoubleValue, 3.14);
  EXPECT_EQ(T[4].Kind, TokKind::IntHashLit);
}

TEST(LexerTest, HashSuffixedNames) {
  DiagnosticEngine D;
  std::vector<Token> T = lex("Int# sumTo# x", D);
  EXPECT_EQ(T[0].Kind, TokKind::ConId);
  EXPECT_EQ(T[0].Text, "Int#");
  EXPECT_EQ(T[1].Kind, TokKind::VarId);
  EXPECT_EQ(T[1].Text, "sumTo#");
  EXPECT_EQ(T[2].Text, "x");
}

TEST(LexerTest, UnboxedTupleDelimiters) {
  DiagnosticEngine D;
  std::vector<Token> T = lex("(# 1#, x #)", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_EQ(T[0].Kind, TokKind::LHashParen);
  EXPECT_EQ(T[1].Kind, TokKind::IntHashLit);
  EXPECT_EQ(T[2].Kind, TokKind::Comma);
  EXPECT_EQ(T[3].Kind, TokKind::VarId);
  EXPECT_EQ(T[4].Kind, TokKind::RHashParen);
}

TEST(LexerTest, OperatorsAndPunctuation) {
  DiagnosticEngine D;
  std::vector<Token> T = lex("-> => :: = | . +# ==## $ \\", D);
  EXPECT_EQ(T[0].Kind, TokKind::Arrow);
  EXPECT_EQ(T[1].Kind, TokKind::DArrow);
  EXPECT_EQ(T[2].Kind, TokKind::DColon);
  EXPECT_EQ(T[3].Kind, TokKind::Equals);
  EXPECT_EQ(T[4].Kind, TokKind::Pipe);
  EXPECT_EQ(T[5].Kind, TokKind::Dot);
  EXPECT_EQ(T[6].Kind, TokKind::Operator);
  EXPECT_EQ(T[6].Text, "+#");
  EXPECT_EQ(T[7].Kind, TokKind::Operator);
  EXPECT_EQ(T[7].Text, "==##");
  EXPECT_EQ(T[8].Kind, TokKind::Operator);
  EXPECT_EQ(T[9].Kind, TokKind::Backslash);
}

TEST(LexerTest, CommentsAndStrings) {
  DiagnosticEngine D;
  std::vector<Token> T =
      lex("x -- line comment\n {- block {- nested -} -} \"hi\\n\"", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_EQ(T[0].Text, "x");
  EXPECT_EQ(T[1].Kind, TokKind::StringLit);
  EXPECT_EQ(T[1].Text, "hi\n");
}

TEST(LexerTest, KeywordsRecognized) {
  DiagnosticEngine D;
  std::vector<Token> T =
      lex("data class instance where let in case of if then else forall",
          D);
  EXPECT_EQ(T[0].Kind, TokKind::KwData);
  EXPECT_EQ(T[3].Kind, TokKind::KwWhere);
  EXPECT_EQ(T[11].Kind, TokKind::KwForall);
}

//===--------------------------------------------------------------------===//
// Parser
//===--------------------------------------------------------------------===//

SModule parse(std::string_view Src, DiagnosticEngine &D) {
  Lexer L(Src, D);
  Parser P(L.lexAll(), D);
  return P.parseModule();
}

TEST(ParserTest, DataDeclaration) {
  DiagnosticEngine D;
  SModule M = parse("data Shape = Circle Double | Square Double Double", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  ASSERT_EQ(M.Decls.size(), 1u);
  const SDataDecl &Data = M.Decls[0].Data;
  EXPECT_EQ(Data.Name, "Shape");
  ASSERT_EQ(Data.Cons.size(), 2u);
  EXPECT_EQ(Data.Cons[0].Name, "Circle");
  EXPECT_EQ(Data.Cons[0].Fields.size(), 1u);
  EXPECT_EQ(Data.Cons[1].Fields.size(), 2u);
}

TEST(ParserTest, AbstractDataDeclaration) {
  DiagnosticEngine D;
  SModule M = parse("data IO a", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_TRUE(M.Decls[0].Data.Cons.empty());
  EXPECT_EQ(M.Decls[0].Data.Params.size(), 1u);
}

TEST(ParserTest, SignatureAndBinding) {
  DiagnosticEngine D;
  SModule M = parse("inc :: Int -> Int ; inc x = x + 1", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  ASSERT_EQ(M.Decls.size(), 2u);
  EXPECT_EQ(M.Decls[0].T, SDecl::Tag::Sig);
  EXPECT_EQ(M.Decls[1].T, SDecl::Tag::Bind);
  EXPECT_EQ(M.Decls[1].Bind.Params.size(), 1u);
}

TEST(ParserTest, ForallWithKindAnnotations) {
  DiagnosticEngine D;
  SModule M = parse(
      "myError :: forall r (a :: TYPE r). String -> a ;"
      "f :: forall (a :: TYPE IntRep). a -> a", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SType &T = *M.Decls[0].Sig.Ty;
  ASSERT_EQ(T.T, SType::Tag::ForAll);
  ASSERT_EQ(T.Binders.size(), 2u);
  EXPECT_EQ(T.Binders[0].Name, "r");
  EXPECT_EQ(T.Binders[1].Name, "a");
  ASSERT_NE(T.Binders[1].Kind, nullptr);
  EXPECT_EQ(T.Binders[1].Kind->T, SKind::Tag::TypeOf);
}

TEST(ParserTest, ClassAndInstance) {
  DiagnosticEngine D;
  SModule M = parse("class Num (a :: TYPE r) where {"
                    "  (+) :: a -> a -> a ;"
                    "  abs :: a -> a"
                    "} ;"
                    "instance Num Int# where {"
                    "  (+) = plusIntHash ;"
                    "  abs x = x"
                    "}",
                    D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  ASSERT_EQ(M.Decls.size(), 2u);
  const SClassDecl &Cls = M.Decls[0].Class;
  EXPECT_EQ(Cls.Name, "Num");
  EXPECT_EQ(Cls.Var.Name, "a");
  ASSERT_EQ(Cls.Methods.size(), 2u);
  EXPECT_EQ(Cls.Methods[0].Name, "+");
  const SInstanceDecl &Inst = M.Decls[1].Instance;
  EXPECT_EQ(Inst.ClassName, "Num");
  ASSERT_EQ(Inst.Methods.size(), 2u);
  EXPECT_EQ(Inst.Methods[1].Params.size(), 1u);
}

TEST(ParserTest, SuperclassContext) {
  DiagnosticEngine D;
  SModule M = parse("class Eq a => Ord a where { compare :: a -> a -> Int }",
                    D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SClassDecl &Cls = M.Decls[0].Class;
  ASSERT_EQ(Cls.Supers.size(), 1u);
  EXPECT_EQ(Cls.Supers[0].ClassName, "Eq");
}

TEST(ParserTest, OperatorPrecedence) {
  DiagnosticEngine D;
  SModule M = parse("x = 1 + 2 * 3", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SExpr &E = *M.Decls[0].Bind.Rhs;
  ASSERT_EQ(E.T, SExpr::Tag::BinOp);
  EXPECT_EQ(E.Name, "+");
  EXPECT_EQ(E.Arg->T, SExpr::Tag::BinOp);
  EXPECT_EQ(E.Arg->Name, "*");
}

TEST(ParserTest, DollarIsRightAssociativeAndLoose) {
  DiagnosticEngine D;
  SModule M = parse("x = f $ g $ h 1", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SExpr &E = *M.Decls[0].Bind.Rhs;
  ASSERT_EQ(E.T, SExpr::Tag::BinOp);
  EXPECT_EQ(E.Name, "$");
  EXPECT_EQ(E.Arg->T, SExpr::Tag::BinOp); // right-nested
}

TEST(ParserTest, CaseWithPatterns) {
  DiagnosticEngine D;
  SModule M = parse("f n = case n of {"
                    "  I# h -> h ;"
                    "  _ -> 0#"
                    "}",
                    D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SExpr &E = *M.Decls[0].Bind.Rhs;
  ASSERT_EQ(E.T, SExpr::Tag::Case);
  ASSERT_EQ(E.Alts.size(), 2u);
  EXPECT_EQ(E.Alts[0].Pat.T, SPattern::Tag::Con);
  EXPECT_EQ(E.Alts[0].Pat.Name, "I#");
  EXPECT_EQ(E.Alts[1].Pat.T, SPattern::Tag::Wild);
}

TEST(ParserTest, UnboxedTupleExprAndPattern) {
  DiagnosticEngine D;
  SModule M = parse("f p = case p of { (# a, b #) -> a } ;"
                    "g x = (# x, 1# #)",
                    D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_EQ(M.Decls[0].Bind.Rhs->Alts[0].Pat.T,
            SPattern::Tag::UnboxedTuple);
  EXPECT_EQ(M.Decls[1].Bind.Rhs->T, SExpr::Tag::UnboxedTuple);
}

TEST(ParserTest, LambdaLetIf) {
  DiagnosticEngine D;
  SModule M = parse("f = \\x (y :: Int) -> "
                    "let z = x + y in if z > 0 then z else 0",
                    D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SExpr &Lam = *M.Decls[0].Bind.Rhs;
  ASSERT_EQ(Lam.T, SExpr::Tag::Lam);
  ASSERT_EQ(Lam.Binders.size(), 2u);
  EXPECT_NE(Lam.Binders[1].Ann, nullptr);
  EXPECT_EQ(Lam.Body->T, SExpr::Tag::Let);
  EXPECT_EQ(Lam.Body->Body->T, SExpr::Tag::If);
}

TEST(ParserTest, TypeAnnotationExpr) {
  DiagnosticEngine D;
  SModule M = parse("x = (1# :: Int#)", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  EXPECT_EQ(M.Decls[0].Bind.Rhs->T, SExpr::Tag::Ann);
}

TEST(ParserTest, ContextInSignature) {
  DiagnosticEngine D;
  SModule M = parse("double :: Num a => a -> a", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SType &T = *M.Decls[0].Sig.Ty;
  ASSERT_EQ(T.T, SType::Tag::ForAll);
  ASSERT_EQ(T.Context.size(), 1u);
  EXPECT_EQ(T.Context[0].ClassName, "Num");
}

TEST(ParserTest, RecoversAfterErrors) {
  DiagnosticEngine D;
  SModule M = parse("f = ) broken ; g = 1", D);
  EXPECT_TRUE(D.hasErrors());
  // g still parsed.
  bool FoundG = false;
  for (const SDecl &Decl : M.Decls)
    if (Decl.T == SDecl::Tag::Bind && Decl.Bind.Name == "g")
      FoundG = true;
  EXPECT_TRUE(FoundG);
}

TEST(ParserTest, RepKindsInClassHead) {
  DiagnosticEngine D;
  SModule M = parse(
      "f :: forall (a :: TYPE (TupleRep [IntRep, LiftedRep])). a -> a", D);
  ASSERT_FALSE(D.hasErrors()) << D.str();
  const SType &T = *M.Decls[0].Sig.Ty;
  ASSERT_EQ(T.Binders.size(), 1u);
  ASSERT_NE(T.Binders[0].Kind, nullptr);
  EXPECT_EQ(T.Binders[0].Kind->R.T, SRep::Tag::Tuple);
  EXPECT_EQ(T.Binders[0].Kind->R.Elems.size(), 2u);
}

} // namespace
