//===- driver_concurrency_test.cpp - Hammering one Session from N threads -===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The concurrent-driver contract, end to end:
//
//   * one Session serves ≥8 threads — same-source compiles hit the cache
//     (and build exactly once even when racing), distinct sources build
//     independently;
//   * one immutable Compilation serves many Executors on both backends
//     concurrently, with results identical to serial runs;
//   * compileAsync / runAll dispatch onto the worker pool and agree with
//     their synchronous counterparts;
//   * the LRU bound evicts (counted in Stats) without breaking inflight
//     shared_ptrs.
//
// This suite is the ThreadSanitizer workload in CI: it must run with
// zero reported races.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

using namespace levity;
using namespace levity::driver;

namespace {

constexpr int NumThreads = 8;

const char *QuickstartSrc =
    "square :: Int# -> Int# ;"
    "square x = x *# x ;"
    "answer = square 6# +# 6#";

/// A distinct source whose `answer` evaluates to Seed + 1.
std::string sourceFor(int Seed) {
  return "answer = " + std::to_string(Seed) + "# +# 1#";
}

void spawnAll(std::vector<std::thread> &Threads) {
  for (std::thread &T : Threads)
    T.join();
}

//===----------------------------------------------------------------------===//
// Same-source cache hits under contention
//===----------------------------------------------------------------------===//

TEST(DriverConcurrencyTest, SameSourceCompilesOnceAcrossThreads) {
  Session S;
  constexpr int Iters = 25;
  std::vector<std::shared_ptr<Compilation>> First(NumThreads);

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != Iters; ++I) {
        std::shared_ptr<Compilation> Comp = S.compile(QuickstartSrc);
        ASSERT_TRUE(Comp->ok());
        if (!First[T])
          First[T] = Comp;
        else
          EXPECT_EQ(First[T].get(), Comp.get());
      }
    });
  spawnAll(Threads);

  // Every thread saw the same artifact, and the front end ran once.
  for (int T = 1; T != NumThreads; ++T)
    EXPECT_EQ(First[0].get(), First[T].get());
  Session::Stats St = S.stats(); // one snapshot, fields read together
  EXPECT_EQ(St.Compilations, 1u);
  EXPECT_EQ(St.CacheHits, uint64_t(NumThreads) * Iters - 1);
}

//===----------------------------------------------------------------------===//
// Distinct sources, results identical to serial runs
//===----------------------------------------------------------------------===//

TEST(DriverConcurrencyTest, DistinctSourcesMatchSerialResults) {
  constexpr int NumSources = 24;

  // Serial baseline, its own session.
  std::vector<int64_t> Expected(NumSources);
  {
    Session Serial;
    for (int I = 0; I != NumSources; ++I) {
      RunResult R = Serial.compile(sourceFor(I))->run("answer");
      ASSERT_TRUE(R.ok()) << R.Error;
      Expected[I] = R.IntValue.value_or(-1);
      ASSERT_EQ(Expected[I], I + 1);
    }
  }

  // Concurrent: every thread compiles every source, in a skewed order.
  Session S;
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int K = 0; K != NumSources; ++K) {
        int I = (K + T * 3) % NumSources;
        std::shared_ptr<Compilation> Comp = S.compile(sourceFor(I));
        Executor Ex(Comp);
        RunResult R = Ex.run("answer");
        ASSERT_TRUE(R.ok()) << R.Error;
        EXPECT_EQ(R.IntValue.value_or(-1), Expected[I]);
      }
    });
  spawnAll(Threads);

  // Each source front-ended exactly once despite 8× traffic.
  Session::Stats St = S.stats(); // one snapshot, fields read together
  EXPECT_EQ(St.Compilations, uint64_t(NumSources));
  EXPECT_EQ(St.CacheHits, uint64_t(NumSources) * (NumThreads - 1));
}

//===----------------------------------------------------------------------===//
// One shared Compilation, mixed backends
//===----------------------------------------------------------------------===//

TEST(DriverConcurrencyTest, SharedCompilationRunsAllBackendsConcurrently) {
  Session S;
  std::shared_ptr<Compilation> Comp = S.compile(QuickstartSrc);
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  // Serial baseline.
  RunResult SerialTree = Comp->run("answer", Backend::TreeInterp);
  RunResult SerialMach = Comp->run("answer", Backend::AbstractMachine);
  RunResult SerialBc = Comp->run("answer", Backend::Bytecode);
  ASSERT_TRUE(SerialTree.ok() && SerialMach.ok() && SerialBc.ok());
  ASSERT_EQ(SerialBc.Used, Backend::Bytecode);

  // Rotate all three backends per thread: tree runs race the lazy
  // front-end path, machine runs race the memoized lowering, and
  // bytecode runs race the call_once-style module memoization (the
  // first N threads all want to compile the same module at once).
  const Backend Rotation[] = {Backend::TreeInterp, Backend::AbstractMachine,
                              Backend::Bytecode};
  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Executor Ex(Comp);
      for (int I = 0; I != 12; ++I) {
        Backend B = Rotation[(I + T) % 3];
        RunResult R = Ex.run("answer", B);
        ASSERT_TRUE(R.ok()) << R.Error;
        EXPECT_EQ(R.IntValue.value_or(-1), 42);
        EXPECT_EQ(R.Used, B);
        // Cost models agree with the serial baseline: machine runs
        // always allocate 1; the executor's first tree run allocates 1,
        // later ones 0 (memoized globals); VM runs replay identically.
        if (B == Backend::AbstractMachine)
          EXPECT_EQ(R.allocations(), SerialMach.allocations());
        if (B == Backend::Bytecode) {
          EXPECT_EQ(R.allocations(), SerialBc.allocations());
          EXPECT_EQ(R.steps(), SerialBc.steps());
        }
      }
      // The artifact also answers type queries concurrently.
      EXPECT_NE(Comp->globalType("square"), nullptr);
      EXPECT_NE(Comp->globalType("answer"), nullptr);
    });
  spawnAll(Threads);
}

TEST(DriverConcurrencyTest, RunAllDrivesBytecodeBackendConcurrently) {
  // Concurrent runAll over Bytecode-backend compilations: the ISSUE's
  // TSan-clean requirement — workers race the shared module memo and
  // each worker's own VM.
  Session S;
  std::vector<Session::RunRequest> Requests;
  for (int I = 0; I != 12; ++I) {
    Session::RunRequest Req;
    Req.Source = sourceFor(I % 6); // duplicates share one compile
    Req.Name = "answer";
    Req.B = Backend::Bytecode;
    Requests.push_back(std::move(Req));
  }
  std::vector<RunResult> Batch = S.runAll(Requests);
  ASSERT_EQ(Batch.size(), Requests.size());
  for (size_t I = 0; I != Batch.size(); ++I) {
    ASSERT_TRUE(Batch[I].ok()) << Batch[I].Error;
    EXPECT_EQ(Batch[I].IntValue.value_or(-1), int64_t(I % 6) + 1);
    EXPECT_EQ(Batch[I].Used, Backend::Bytecode);
  }
}

TEST(DriverConcurrencyTest, FormalCompilationRunsConcurrently) {
  Session S;
  std::shared_ptr<Compilation> Comp =
      S.compileFormal([](lcalc::LContext &L) {
        return L.prim(lcalc::LPrim::Add,
                      L.prim(lcalc::LPrim::Mul, L.intLit(6), L.intLit(6)),
                      L.intLit(6));
      });
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Executor Ex(Comp);
      const Backend Rotation[] = {Backend::TreeInterp,
                                  Backend::AbstractMachine,
                                  Backend::Bytecode};
      for (int I = 0; I != 12; ++I) {
        RunResult R = Ex.run(Rotation[(I + T) % 3]);
        ASSERT_TRUE(R.ok()) << R.Error;
        EXPECT_EQ(R.IntValue.value_or(-1), 42);
      }
    });
  spawnAll(Threads);
}

//===----------------------------------------------------------------------===//
// compileAsync / runAll
//===----------------------------------------------------------------------===//

TEST(DriverConcurrencyTest, AsyncCompileMatchesSync) {
  Session S;
  constexpr int NumSources = 16;

  std::vector<std::future<std::shared_ptr<Compilation>>> Futures;
  for (int I = 0; I != NumSources; ++I)
    Futures.push_back(S.compileAsync(sourceFor(I)));

  for (int I = 0; I != NumSources; ++I) {
    std::shared_ptr<Compilation> Comp = Futures[size_t(I)].get();
    ASSERT_TRUE(Comp->ok()) << Comp->diagText();
    RunResult R = Comp->run("answer");
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.IntValue.value_or(-1), I + 1);
    // The async result is the same cached artifact a sync compile sees.
    EXPECT_EQ(Comp.get(), S.compile(sourceFor(I)).get());
  }
}

TEST(DriverConcurrencyTest, RunAllAgreesWithSerialRuns) {
  Session S;
  std::vector<Session::RunRequest> Requests;
  for (int I = 0; I != 12; ++I) {
    Session::RunRequest Req;
    Req.Source = sourceFor(I % 6); // duplicates share one compile
    Req.Name = "answer";
    Req.B = I % 3 == 0   ? std::optional<Backend>(Backend::TreeInterp)
            : I % 3 == 1 ? std::optional<Backend>(Backend::AbstractMachine)
                         : std::optional<Backend>(Backend::Bytecode);
    Requests.push_back(std::move(Req));
  }

  std::vector<RunResult> Batch = S.runAll(Requests);
  ASSERT_EQ(Batch.size(), Requests.size());
  for (size_t I = 0; I != Batch.size(); ++I) {
    ASSERT_TRUE(Batch[I].ok()) << Batch[I].Error;
    EXPECT_EQ(Batch[I].IntValue.value_or(-1), int64_t(I % 6) + 1);
    EXPECT_EQ(Batch[I].Used, *Requests[I].B);
  }
  // Six distinct sources → six front-end runs, the rest cache hits.
  EXPECT_EQ(S.stats().Compilations, 6u);
}

//===----------------------------------------------------------------------===//
// The LRU bound
//===----------------------------------------------------------------------===//

TEST(DriverConcurrencyTest, LruBoundEvictsAndCounts) {
  CompileOptions Opts;
  Opts.MaxCachedCompilations = 8;
  Session S(Opts);

  constexpr int NumSources = 40;
  for (int I = 0; I != NumSources; ++I)
    ASSERT_TRUE(S.compile(sourceFor(I))->ok());

  Session::Stats St = S.stats();
  EXPECT_EQ(St.Compilations, uint64_t(NumSources));
  EXPECT_GT(St.Evictions, 0u);
  // Inserts = retained + evicted, and the cache respects the bound.
  EXPECT_EQ(S.cacheSize() + St.Evictions, uint64_t(NumSources));
  EXPECT_LE(S.cacheSize(), Opts.MaxCachedCompilations);

  // Evicted sources recompile correctly (a fresh front-end run).
  RunResult R = S.compile(sourceFor(0))->run("answer");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.IntValue.value_or(-1), 1);
  EXPECT_GT(S.stats().Compilations, uint64_t(NumSources));
}

TEST(DriverConcurrencyTest, LruBoundSurvivesConcurrentTraffic) {
  CompileOptions Opts;
  Opts.MaxCachedCompilations = 4;
  Session S(Opts);

  std::vector<std::thread> Threads;
  for (int T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int K = 0; K != 30; ++K) {
        int I = (K + T * 7) % 20;
        std::shared_ptr<Compilation> Comp = S.compile(sourceFor(I));
        RunResult R = Comp->run("answer");
        ASSERT_TRUE(R.ok()) << R.Error;
        EXPECT_EQ(R.IntValue.value_or(-1), I + 1);
      }
    });
  spawnAll(Threads);

  EXPECT_GT(S.stats().Evictions, 0u);
  // ceil(4/8)=1 per shard × 8 shards, plus slack: in-flight builds are
  // never evicted, so the bound may be transiently exceeded by up to one
  // outstanding build per thread.
  EXPECT_LE(S.cacheSize(), size_t(8 + NumThreads));
}

} // namespace
