//===- surface_classes_test.cpp - Levity-polymorphic classes (Sec 7.3) ----===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Experiment E8: class Num (a :: TYPE r) with instances at Int (boxed)
// and Int# (unboxed), dictionary translation, `3# + 4#` working through
// ad-hoc overloading, and the abs1/abs2 arity subtlety — all from source.
//
//===----------------------------------------------------------------------===//

#include "PipelineFixture.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::surface;

namespace {

// The paper's generalized Num class (Section 7.3), verbatim modulo
// syntax: class Num (a :: TYPE r) — one class, instances at *different
// representations*.
const char *NumClassPrelude =
    "class Num (a :: TYPE r) where {"
    "  (+) :: a -> a -> a ;"
    "  abs :: a -> a"
    "} ;"
    "instance Num Int# where {"
    "  (+) x y = x +# y ;"
    "  abs n = case n <# 0# of { 1# -> negateInt# n ; _ -> n }"
    "} ;"
    "instance Num Int where {"
    "  (+) a b = case a of { I# x -> case b of { I# y -> I# (x +# y) } } ;"
    "  abs n = case n < 0 of { True -> 0 - n ; False -> n }"
    "} ;";

TEST(ClassTest, UnboxedInstanceAddition) {
  // The headline: "we can now happily write 3# + 4# to add machine
  // integers".
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) +
                        "main = 3# + 4#"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 7);
}

TEST(ClassTest, BoxedInstanceAddition) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) + "main = 3 + 4"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 7);
}

TEST(ClassTest, AbsAtBothReps) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) +
                        "u = abs (0# -# 5#) ;"
                        "b = abs (0 - 5)"))
      << P.diags().str();
  runtime::InterpResult RU = P.evalName("u");
  ASSERT_EQ(RU.Status, runtime::InterpStatus::Value) << RU.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(RU.V).value_or(-1), 5);
  runtime::InterpResult RB = P.evalName("b");
  ASSERT_EQ(RB.Status, runtime::InterpStatus::Value) << RB.Message;
  EXPECT_EQ(P.interp().asBoxedInt(RB.V).value_or(-1), 5);
}

// abs1 = abs — no levity-polymorphic binder (the dictionary methods are
// lifted function values); ACCEPTED, exactly as the paper says.
TEST(ClassTest, Abs1Accepted) {
  Pipeline P;
  ASSERT_TRUE(P.compile(
      std::string(NumClassPrelude) +
      "abs1 :: forall r (a :: TYPE r). Num a => a -> a ;"
      "abs1 = abs ;"
      "main = abs1 (0# -# 3#)"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 3);
}

// abs2 x = abs x — the η-expansion binds x :: a :: TYPE r; REJECTED with
// the binder restriction. "When compiling, η-equivalent definitions are
// not equivalent!" (Section 7.3.)
TEST(ClassTest, Abs2Rejected) {
  Pipeline P;
  EXPECT_FALSE(P.compile(
      std::string(NumClassPrelude) +
      "abs2 :: forall r (a :: TYPE r). Num a => a -> a ;"
      "abs2 x = abs x"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::LevityPolymorphicBinder))
      << P.diags().str();
}

// A constrained-but-lifted function: polymorphism over Num a with
// a :: Type needs no levity machinery and can bind its argument.
TEST(ClassTest, LiftedConstrainedFunction) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) +
                        "double :: Num a => a -> a ;"
                        "double x = x + x ;"
                        "main = double 21"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(P.interp().asBoxedInt(R.V).value_or(-1), 42);
}

// Missing instances are reported.
TEST(ClassTest, MissingInstanceReported) {
  Pipeline P;
  EXPECT_FALSE(P.compile("class Num (a :: TYPE r) where {"
                         "  (+) :: a -> a -> a ;"
                         "  abs :: a -> a"
                         "} ;"
                         "main = 2.5## + 1.0##"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::MissingInstance))
      << P.diags().str();
}

// Incomplete instances are reported.
TEST(ClassTest, IncompleteInstanceReported) {
  Pipeline P;
  EXPECT_FALSE(P.compile("class Num (a :: TYPE r) where {"
                         "  (+) :: a -> a -> a ;"
                         "  abs :: a -> a"
                         "} ;"
                         "instance Num Int# where { (+) x y = x +# y }"));
  EXPECT_TRUE(P.diags().hasError(DiagCode::MissingInstance))
      << P.diags().str();
}

// Dictionary dispatch through a constraint goes to the right instance
// per call site.
TEST(ClassTest, DispatchSelectsInstance) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) +
                        "addBoth :: Int -> Int# -> Int# ;"
                        "addBoth b u = case b + b of {"
                        "  I# x -> (u + u) +# x"
                        "} ;"
                        "main = addBoth 10 3#"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_EQ(runtime::Interp::asIntHash(R.V).value_or(-1), 26);
}

// A Double# instance shows a third calling convention (float registers)
// through the same class.
TEST(ClassTest, DoubleHashInstance) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) +
                        "instance Num Double# where {"
                        "  (+) x y = x +## y ;"
                        "  abs d = case d <## 0.0## of {"
                        "    1# -> negateDouble# d ; _ -> d }"
                        "} ;"
                        "main = abs (2.0## + 0.5##)"))
      << P.diags().str();
  runtime::InterpResult R = P.evalName("main");
  ASSERT_EQ(R.Status, runtime::InterpStatus::Value) << R.Message;
  EXPECT_DOUBLE_EQ(runtime::Interp::asDoubleHash(R.V).value_or(-1), 2.5);
}

// The generalized method type is levity-polymorphic, like the paper's
// (+) :: forall (r::Rep) (a::TYPE r). Num a => a -> a -> a.
TEST(ClassTest, MethodSignatureShape) {
  Pipeline P;
  ASSERT_TRUE(P.compile(std::string(NumClassPrelude) + "main = 1 + 1"))
      << P.diags().str();
  ASSERT_EQ(P.elaborator().classes().size(), 1u);
  const ClassInfo &Num = P.elaborator().classes()[0];
  EXPECT_EQ(Num.RepVars.size(), 1u);
  EXPECT_EQ(Num.VarKind->str(), "TYPE r");
  ASSERT_EQ(Num.Methods.size(), 2u);
  EXPECT_EQ(Num.Methods[0].Sig->str(), "a -> a -> a");
}

} // namespace
