//===- bytecode_vm_test.cpp - The flat bytecode compiler and VM -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Unit coverage for src/bytecode/: direct compile+run of MContext-built
// terms (values, laziness, knots, switches, the machine-exact stuck
// states), the pinned out-of-fragment compiler diagnostics with the
// driver's clean fallback to the term-graph machine, the validate()
// verifier, and the Backend::Bytecode driver surface (backendName, fuel,
// the formal pipeline). Observable-equivalence over the full program
// corpus lives in differential_backend_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "bytecode/Vm.h"
#include "driver/Executor.h"
#include "driver/Session.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::bytecode;

namespace {

/// Compiles \p T (must be in-fragment) and runs it on a fresh VM.
VmResult compileAndRun(const mcalc::Term *T, uint64_t Fuel = 1u << 22) {
  auto Mod = compile(T);
  EXPECT_TRUE(Mod.ok()) << Mod.error();
  if (!Mod.ok())
    return VmResult();
  EXPECT_TRUE(validate(**Mod));
  Vm V;
  return V.run(**Mod, Fuel);
}

//===----------------------------------------------------------------------===//
// Values and control flow
//===----------------------------------------------------------------------===//

TEST(BytecodeVmTest, PrimArithmetic) {
  mcalc::MContext MC;
  VmResult R = compileAndRun(MC.prim(mcalc::MPrim::Mul, mcalc::MAtom::lit(6),
                                     mcalc::MAtom::lit(7)));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 42);
  EXPECT_EQ(R.Stats.Prims, 1u);
}

TEST(BytecodeVmTest, DoubleArithmetic) {
  mcalc::MContext MC;
  VmResult R = compileAndRun(MC.prim(
      mcalc::MPrim::DAdd, mcalc::MAtom::dlit(1.25), mcalc::MAtom::dlit(2.5)));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_DOUBLE_EQ(R.DoubleValue.value_or(-1), 3.75);
}

TEST(BytecodeVmTest, If0TakesBothBranches) {
  mcalc::MContext MC;
  auto Run = [&](int64_t Scrut) {
    return compileAndRun(MC.if0(MC.lit(Scrut), MC.lit(10), MC.lit(20)));
  };
  EXPECT_EQ(Run(0).IntValue.value_or(-1), 10);
  EXPECT_EQ(Run(3).IntValue.value_or(-1), 20);
  EXPECT_EQ(Run(3).Stats.Branches, 1u);
}

TEST(BytecodeVmTest, LambdaCallOverIntRegister) {
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  const mcalc::Term *Inc =
      MC.lam(N, MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(N),
                        mcalc::MAtom::lit(1)));
  VmResult R = compileAndRun(MC.appLit(Inc, 41));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 42);
}

TEST(BytecodeVmTest, BoxAndUnbox) {
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  VmResult R = compileAndRun(
      MC.caseOf(MC.conLit(7), N,
                MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(N),
                        mcalc::MAtom::lit(1))));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 8);
  EXPECT_EQ(R.Stats.ConAllocs, 1u);
}

TEST(BytecodeVmTest, SwitchDispatchesOnConTagAndBindsFields) {
  mcalc::MContext MC;
  mcalc::MAtom Fields[] = {mcalc::MAtom::lit(30), mcalc::MAtom::dlit(1.5)};
  mcalc::MVar BI = MC.freshInt(), BD = MC.freshDbl();
  mcalc::MVar Binders[] = {BI, BD};
  mcalc::MAlt Alts[2];
  Alts[0].Pat = mcalc::MAlt::PatKind::Con;
  Alts[0].Tag = 1;
  Alts[0].Body = MC.lit(-1);
  Alts[1].Pat = mcalc::MAlt::PatKind::Con;
  Alts[1].Tag = 2;
  Alts[1].Binders = std::span<const mcalc::MVar>(Binders, 2);
  Alts[1].Body = MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(BI),
                         mcalc::MAtom::lit(12));
  VmResult R =
      compileAndRun(MC.switchOf(MC.con(2, Fields), Alts, MC.lit(-2)));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 42);
  EXPECT_EQ(R.Stats.Switches, 1u);
}

TEST(BytecodeVmTest, SwitchIntLiteralAndDefault) {
  mcalc::MContext MC;
  mcalc::MAlt Alts[1];
  Alts[0].Pat = mcalc::MAlt::PatKind::Int;
  Alts[0].IntVal = 5;
  Alts[0].Body = MC.lit(100);
  EXPECT_EQ(compileAndRun(MC.switchOf(MC.lit(5), Alts, MC.lit(200)))
                .IntValue.value_or(-1),
            100);
  EXPECT_EQ(compileAndRun(MC.switchOf(MC.lit(6), Alts, MC.lit(200)))
                .IntValue.value_or(-1),
            200);
}

//===----------------------------------------------------------------------===//
// Laziness and knots
//===----------------------------------------------------------------------===//

TEST(BytecodeVmTest, LazyLetForcesOnceThenReusesTheUpdate) {
  // let p = <prim thunk> in case p of n1 -> case p of n2 -> n1 + n2:
  // the thunk must evaluate exactly once and be read back as a value.
  mcalc::MContext MC;
  mcalc::MVar P = MC.freshPtr();
  mcalc::MVar N1 = MC.freshInt(), N2 = MC.freshInt();
  const mcalc::Term *T = MC.let(
      P,
      MC.caseOf(MC.conLit(20), N1,
                MC.conVar(N1)), // forces to I#[20] via a real thunk body
      MC.caseOf(MC.var(P), N1,
                MC.caseOf(MC.var(P), N2,
                          MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(N1),
                                  mcalc::MAtom::var(N2)))));
  VmResult R = compileAndRun(T);
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 40);
  EXPECT_EQ(R.Stats.ThunkEvals, 1u) << "second force must hit the update";
  EXPECT_EQ(R.Stats.ThunkUpdates, 1u);
}

TEST(BytecodeVmTest, LetRecTiesTheKnot) {
  // letrec f = λn. if0 n then 42 else f (n-1) in f 5
  mcalc::MContext MC;
  mcalc::MVar F = MC.freshPtr(), N = MC.freshInt(), M = MC.freshInt();
  const mcalc::Term *Body = MC.if0(
      MC.var(N), MC.lit(42),
      MC.letBang(M,
                 MC.prim(mcalc::MPrim::Sub, mcalc::MAtom::var(N),
                         mcalc::MAtom::lit(1)),
                 MC.appVar(MC.var(F), M)));
  VmResult R =
      compileAndRun(MC.letRec(F, MC.lam(N, Body), MC.appLit(MC.var(F), 5)));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 42);
  EXPECT_GE(R.Stats.Knots, 1u);
}

TEST(BytecodeVmTest, SelfForcingThunkIsTheDanglingPointerStuck) {
  // letrec p = <force p> in case p of ...: the black hole must be
  // detected, exactly like the machine's dangling-pointer stuck.
  mcalc::MContext MC;
  mcalc::MVar P = MC.freshPtr(), N = MC.freshInt();
  const mcalc::Term *T = MC.letRec(
      P, MC.caseOf(MC.var(P), N, MC.conVar(N)),
      MC.caseOf(MC.var(P), N, MC.var(N)));
  VmResult R = compileAndRun(T);
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(R.StuckReason,
            "dangling heap pointer (thunk forced while evaluating)");
}

//===----------------------------------------------------------------------===//
// Bottom, stuck, and fuel — the machine-exact classification
//===----------------------------------------------------------------------===//

TEST(BytecodeVmTest, ErrorTermIsBottomWithItsMessage) {
  mcalc::MContext MC;
  VmResult R = compileAndRun(MC.error(MC.symbols().intern("boom")));
  ASSERT_EQ(R.Out, VmResult::Outcome::Bottom);
  EXPECT_EQ(R.ErrorMessage, "boom");
}

TEST(BytecodeVmTest, DivideByZeroIsStuckNotBottom) {
  mcalc::MContext MC;
  VmResult R = compileAndRun(MC.prim(mcalc::MPrim::Quot,
                                     mcalc::MAtom::lit(1),
                                     mcalc::MAtom::lit(0)));
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(R.StuckReason, "divide by zero");
}

TEST(BytecodeVmTest, CallingConventionMismatchIsStuck) {
  // Apply an integer literal to a λ over a pointer register: the
  // machine's calling-convention stuck, byte-for-byte.
  mcalc::MContext MC;
  mcalc::MVar P = MC.freshPtr();
  VmResult R = compileAndRun(MC.appLit(MC.lam(P, MC.lit(1)), 3));
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(
      R.StuckReason,
      "calling-convention mismatch: integer argument for a non-integer-register parameter");
}

TEST(BytecodeVmTest, CaseOverARawIntIsStuck) {
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  VmResult R = compileAndRun(MC.caseOf(MC.lit(5), N, MC.var(N)));
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(R.StuckReason, "case continuation expects I#[n]");
}

//===----------------------------------------------------------------------===//
// Eval/apply: uncurried calls, partial applications, over-application
//===----------------------------------------------------------------------===//

TEST(BytecodeVmTest, UnderApplicationBuildsAPap) {
  // (λx.λy. x +# y) 1 — one argument short of the two-parameter proto:
  // eval/apply parks the argument in a PAP, which is a first-class
  // function value rendered like any closure. The proto is never
  // entered.
  mcalc::MContext MC;
  mcalc::MVar X = MC.freshInt(), Y = MC.freshInt();
  const mcalc::Term *F =
      MC.lam(X, MC.lam(Y, MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(X),
                                  mcalc::MAtom::var(Y))));
  VmResult R = compileAndRun(MC.appLit(F, 1));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.Display, "<closure>");
  EXPECT_EQ(R.Stats.PapAllocs, 1u);
  EXPECT_EQ(R.Stats.Calls, 0u);
}

TEST(BytecodeVmTest, OverApplicationEntersThenAppliesTheResult) {
  // f = λx.λy. (let g = λz. (x+y)+z in g) — a two-parameter proto whose
  // body *returns* a one-parameter closure. f 1 2 3 compiles to a
  // single three-argument CallN: the VM enters f saturated, parks the
  // surplus 3 below the frame, and applies the returned g to it on the
  // way out. No PAP is ever built.
  mcalc::MContext MC;
  mcalc::MVar X = MC.freshInt(), Y = MC.freshInt(), Z = MC.freshInt(),
              W = MC.freshInt();
  mcalc::MVar G = MC.freshPtr();
  const mcalc::Term *GFn =
      MC.lam(Z, MC.letBang(W,
                           MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(X),
                                   mcalc::MAtom::var(Y)),
                           MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(W),
                                   mcalc::MAtom::var(Z))));
  const mcalc::Term *F =
      MC.lam(X, MC.lam(Y, MC.let(G, GFn, MC.var(G))));
  VmResult R =
      compileAndRun(MC.appLit(MC.appLit(MC.appLit(F, 1), 2), 3));
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 6);
  EXPECT_GE(R.Stats.UncurriedCalls, 1u);
  EXPECT_EQ(R.Stats.PapAllocs, 0u);
}

TEST(BytecodeVmTest, PapInAThunkIsBuiltOnceAndSharedAcrossCalls) {
  // let p = (λx.λy. x+y) 10 in (p 2) + (p 30): the partial application
  // lives in a lazy thunk. The first force builds the PAP and updates
  // the cell; the second call reuses the same PAP object, so exactly
  // one PAP is ever allocated.
  mcalc::MContext MC;
  mcalc::MVar X = MC.freshInt(), Y = MC.freshInt();
  mcalc::MVar Pv = MC.freshPtr(), A = MC.freshInt(), B = MC.freshInt();
  const mcalc::Term *F =
      MC.lam(X, MC.lam(Y, MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(X),
                                  mcalc::MAtom::var(Y))));
  const mcalc::Term *T = MC.let(
      Pv, MC.appLit(F, 10),
      MC.letBang(A, MC.appLit(MC.var(Pv), 2),
                 MC.letBang(B, MC.appLit(MC.var(Pv), 30),
                            MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(A),
                                    mcalc::MAtom::var(B)))));
  VmResult R = compileAndRun(T);
  ASSERT_TRUE(R.ok()) << R.StuckReason;
  EXPECT_EQ(R.IntValue.value_or(-1), 52);
  EXPECT_EQ(R.Stats.PapAllocs, 1u);
  EXPECT_EQ(R.Stats.ThunkEvals, 1u);
  EXPECT_EQ(R.Stats.ThunkUpdates, 1u);
}

TEST(BytecodeVmTest, MultiArgApplyAgainstNonLambdaNamesTheFirstArg) {
  // 5 applied to two arguments goes through the CallN path; the stuck
  // message is keyed by the *first* pending argument, exactly like the
  // machine unwinding its innermost App continuation.
  mcalc::MContext MC;
  VmResult R =
      compileAndRun(MC.appDbl(MC.appLit(MC.lit(5), 1), 2.5));
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(R.StuckReason, "App(n) against a non-lambda value");
}

TEST(BytecodeVmTest, PapMismatchedSecondArgIsTheMachineStuck) {
  // Saturating a PAP with a wrong-register argument reports the same
  // calling-convention stuck the one-at-a-time machine would: the
  // stored argument matched, the new one does not.
  mcalc::MContext MC;
  mcalc::MVar X = MC.freshInt(), Y = MC.freshInt();
  mcalc::MVar Pv = MC.freshPtr();
  const mcalc::Term *F =
      MC.lam(X, MC.lam(Y, MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(X),
                                  mcalc::MAtom::var(Y))));
  const mcalc::Term *T =
      MC.let(Pv, MC.appLit(F, 10), MC.appDbl(MC.var(Pv), 1.5));
  VmResult R = compileAndRun(T);
  ASSERT_EQ(R.Out, VmResult::Outcome::Stuck);
  EXPECT_EQ(
      R.StuckReason,
      "calling-convention mismatch: double argument for a non-double-register parameter");
}

TEST(BytecodeVmTest, DivergenceRunsOutOfFuel) {
  // letrec f = λn. f n in f 0
  mcalc::MContext MC;
  mcalc::MVar F = MC.freshPtr(), N = MC.freshInt();
  const mcalc::Term *T = MC.letRec(F, MC.lam(N, MC.appVar(MC.var(F), N)),
                                   MC.appLit(MC.var(F), 0));
  VmResult R = compileAndRun(T, /*Fuel=*/1000);
  EXPECT_EQ(R.Out, VmResult::Outcome::OutOfFuel);
  EXPECT_EQ(R.Stats.Steps, 1000u);
  // The loop is a tail call: frame depth must not grow with the fuel.
  EXPECT_LE(R.Stats.MaxFrameDepth, 3u);
}

//===----------------------------------------------------------------------===//
// Fragment boundaries: pinned diagnostics, clean fallback
//===----------------------------------------------------------------------===//

TEST(BytecodeCompilerTest, FreeVariableIsAPinnedDiagnostic) {
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  auto Mod = compile(MC.var(N));
  ASSERT_FALSE(Mod.ok());
  EXPECT_EQ(Mod.error().rfind("bytecode backend: free variable '", 0), 0u)
      << Mod.error();
}

TEST(BytecodeCompilerTest, OverDeepTermIsAPinnedDiagnostic) {
  // A term nested past MaxCompileDepth (built iteratively — only the
  // compiler recurses) must fail with the pinned diagnostic, never
  // overflow the C++ stack, never miscompile.
  mcalc::MContext MC;
  const mcalc::Term *T = MC.lit(0);
  for (unsigned I = 0; I != MaxCompileDepth + 64; ++I) {
    mcalc::MVar N = MC.freshInt();
    T = MC.letBang(N,
                   MC.prim(mcalc::MPrim::Add, mcalc::MAtom::lit(1),
                           mcalc::MAtom::lit(1)),
                   T);
  }
  auto Mod = compile(T);
  ASSERT_FALSE(Mod.ok());
  EXPECT_EQ(Mod.error(),
            "bytecode backend: term nests deeper than the bytecode "
            "compiler supports");
}

TEST(BytecodeCompilerTest, NullTermIsRejected) {
  EXPECT_FALSE(compile(nullptr).ok());
}

TEST(BytecodeDriverTest, OverDeepProgramFallsBackToTheMachine) {
  // Driver-level fallback: a program whose M lowering is deeper than
  // the bytecode fragment allows must still run — on the term-graph
  // machine, with Used reporting the backend that actually executed.
  driver::Session S;
  auto Comp = S.compileProgram([](core::CoreContext &C) {
    core::CoreProgram P;
    const core::Expr *E = C.litInt(0);
    for (unsigned I = 0; I != MaxCompileDepth + 64; ++I)
      E = C.primOp(core::PrimOp::AddI, {C.litInt(1), E});
    P.Bindings.push_back({C.sym("v"), C.intHashTy(), E});
    return P;
  });
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::RunResult R = Comp->run("v", driver::Backend::Bytecode);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Used, driver::Backend::AbstractMachine)
      << "out-of-fragment code must fall back, not fail";
  EXPECT_EQ(R.IntValue.value_or(-1),
            static_cast<int64_t>(MaxCompileDepth + 64));
  // The accessors must read the machine's ledger after the fallback.
  EXPECT_EQ(R.steps(), R.Machine.Steps);
  EXPECT_EQ(R.allocations(), R.Machine.Allocations);
}

//===----------------------------------------------------------------------===//
// The verifier
//===----------------------------------------------------------------------===//

TEST(BytecodeValidateTest, RejectsOperandUnderflow) {
  Module M;
  Proto P;
  P.Entry = 0;
  P.End = 1;
  M.Protos.push_back(P);
  M.Code.push_back({Op::Return, 0, 0, 0}); // Return with an empty stack.
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsJumpOutsideTheOwningProto) {
  Module M;
  M.IntPool.push_back(0);
  Proto P;
  P.Entry = 0;
  P.End = 3;
  M.Protos.push_back(P);
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Jump, 0, 0, /*C=*/17}); // Past End.
  M.Code.push_back({Op::Return, 0, 0, 0});
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsOutOfRangeLocals) {
  Module M;
  Proto P;
  P.Entry = 0;
  P.End = 2;
  P.NumLocals = 1;
  M.Protos.push_back(P);
  M.Code.push_back({Op::LoadLocal, 0, /*B=*/4, 0}); // Slot 4 of 1.
  M.Code.push_back({Op::Return, 0, 0, 0});
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsOverlappingProtos) {
  // An outer proto with a huge frame whose flow walk visits the interior
  // of an inner one-slot proto: the shared depth map memoizes the outer
  // walk's depths, so the inner walk never re-explores its successors
  // under its own [Entry, End) bounds, and running the inner proto would
  // fall through its End into a StoreLocal operand-checked only against
  // the outer frame — an out-of-bounds write. Protos must partition the
  // code stream, so this module is structurally rejected.
  Module M;
  M.IntPool.push_back(0);
  Proto Outer;
  Outer.Entry = 0;
  Outer.End = 5;
  Outer.NumLocals = 65535;
  M.Protos.push_back(Outer);
  Proto Inner;
  Inner.Entry = 1;
  Inner.End = 3;
  Inner.NumLocals = 1;
  M.Protos.push_back(Inner);
  M.Code.push_back({Op::Jump, 0, 0, /*C=*/1});
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::StoreLocal, 0, /*B=*/60000, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsProtosThatDoNotPartitionTheCode) {
  // Protos must cover [0, Code.size()) contiguously and in order —
  // exactly what compile() emits. A gap between protos is rejected.
  Module M;
  M.IntPool.push_back(0);
  Proto A;
  A.Entry = 0;
  A.End = 2;
  M.Protos.push_back(A);
  Proto B;
  B.Entry = 3; // Skips instruction 2.
  B.End = 5;
  M.Protos.push_back(B);
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0}); // Owned by no proto.
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsOpenEntryProto) {
  // Vm::run enters Protos[0] with no captures and no argument; an entry
  // expecting either would silently read default-initialized slots.
  Module M;
  M.IntPool.push_back(0);
  Proto P;
  P.Entry = 0;
  P.End = 2;
  P.NumLocals = 1;
  M.Protos.push_back(P);
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  ASSERT_TRUE(validate(M)); // Closed entry: fine.

  M.Protos[0].ParamSorts.push_back(static_cast<uint8_t>(mcalc::VarSort::Int));
  EXPECT_FALSE(validate(M));

  M.Protos[0].ParamSorts.clear();
  M.Protos[0].Caps.push_back({/*Src=*/0, /*Sort=*/0});
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsZeroArityCallN) {
  // CallN/TailCallN carry the argument count in B; zero arguments is
  // never emitted (plain evaluation needs no call) and the dispatch
  // loop reads the first argument's kind for its stuck message, so the
  // verifier rejects B == 0 outright.
  Module M;
  M.IntPool.push_back(0);
  Proto P;
  P.Entry = 0;
  P.End = 4;
  M.Protos.push_back(P);
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::CallN, 0, /*B=*/1, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  ASSERT_TRUE(validate(M)); // Well-typed one-argument CallN: fine.

  M.Code[2].B = 0;
  EXPECT_FALSE(validate(M));

  M.Code[2] = {Op::TailCallN, 0, /*B=*/0, 0};
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, RejectsArityMismatchedClosureProtos) {
  // MkThunk/MkThunkRec targets are entered by force with no arguments —
  // they must have zero parameters. MkClosure/MkClosureRec targets are
  // entered by apply at saturation — they must have at least one.
  Module M;
  M.IntPool.push_back(0);
  Proto Entry;
  Entry.Entry = 0;
  Entry.End = 2;
  M.Protos.push_back(Entry);
  Proto Fn;
  Fn.Entry = 2;
  Fn.End = 4;
  Fn.NumLocals = 1;
  Fn.ParamSorts.push_back(static_cast<uint8_t>(mcalc::VarSort::Int));
  M.Protos.push_back(Fn);
  M.Code.push_back({Op::MkClosure, 0, 0, /*C=*/1});
  M.Code.push_back({Op::Return, 0, 0, 0});
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  ASSERT_TRUE(validate(M)); // Closure over a one-parameter proto: fine.

  M.Protos[1].ParamSorts.clear();
  EXPECT_FALSE(validate(M)) << "closure over a zero-parameter proto";

  M.Code[0].Code = Op::MkThunk;
  EXPECT_TRUE(validate(M)); // Thunk over a zero-parameter proto: fine.

  M.Protos[1].ParamSorts.push_back(
      static_cast<uint8_t>(mcalc::VarSort::Int));
  EXPECT_FALSE(validate(M)) << "thunk over a parameterized proto";
}

TEST(BytecodeValidateTest, RejectsMalformedParamMetadata) {
  Module M;
  M.IntPool.push_back(0);
  Proto Entry;
  Entry.Entry = 0;
  Entry.End = 2;
  M.Protos.push_back(Entry);
  Proto Fn;
  Fn.Entry = 2;
  Fn.End = 4;
  Fn.NumLocals = 1;
  Fn.ParamSorts.push_back(static_cast<uint8_t>(mcalc::VarSort::Int));
  M.Protos.push_back(Fn);
  M.Code.push_back({Op::MkClosure, 0, 0, /*C=*/1});
  M.Code.push_back({Op::Return, 0, 0, 0});
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  ASSERT_TRUE(validate(M));

  // A parameter sort outside the Ptr/Int/Dbl trichotomy.
  M.Protos[1].ParamSorts[0] = 9;
  EXPECT_FALSE(validate(M));

  // Captures + parameters must fit in the frame's local slots.
  M.Protos[1].ParamSorts[0] = static_cast<uint8_t>(mcalc::VarSort::Int);
  M.Protos[1].ParamSorts.push_back(
      static_cast<uint8_t>(mcalc::VarSort::Int));
  EXPECT_FALSE(validate(M)) << "two fixed slots in a one-local frame";
}

TEST(BytecodeValidateTest, RejectsOutOfRangeSuperinstructionOperands) {
  // The fused forms carry a local slot or pool index the plain forms
  // would have read from the stack; each operand is range-checked.
  Module M;
  M.IntPool.push_back(4);
  Proto P;
  P.Entry = 0;
  P.End = 3;
  P.NumLocals = 1;
  M.Protos.push_back(P);
  M.Code.push_back({Op::PushInt, 0, 0, 0});
  M.Code.push_back(
      {Op::PrimLocal, static_cast<uint8_t>(mcalc::MPrim::Add), 0, 0});
  M.Code.push_back({Op::Return, 0, 0, 0});
  ASSERT_TRUE(validate(M));

  M.Code[1].B = 5; // Local slot out of range.
  EXPECT_FALSE(validate(M));
  M.Code[1].B = 0;

  M.Code[1].A = 255; // Not an MPrim.
  EXPECT_FALSE(validate(M));

  M.Code[1] = {Op::PrimInt, static_cast<uint8_t>(mcalc::MPrim::Add), 0,
               /*C=*/0};
  ASSERT_TRUE(validate(M));
  M.Code[1].C = 3; // Pool index out of range.
  EXPECT_FALSE(validate(M));

  M.Code = {{Op::ReturnLocal, 0, /*B=*/0, 0}};
  M.Protos[0].End = 1;
  ASSERT_TRUE(validate(M));
  M.Code[0].B = 1; // Local slot out of range.
  EXPECT_FALSE(validate(M));
}

TEST(BytecodeValidateTest, AcceptsCompilerOutput) {
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  auto Mod = compile(MC.caseOf(
      MC.conLit(3), N,
      MC.if0(MC.var(N), MC.lit(0),
             MC.prim(mcalc::MPrim::Mul, mcalc::MAtom::var(N),
                     mcalc::MAtom::var(N)))));
  ASSERT_TRUE(Mod.ok()) << Mod.error();
  EXPECT_TRUE(validate(**Mod));
}

//===----------------------------------------------------------------------===//
// The driver surface
//===----------------------------------------------------------------------===//

TEST(BytecodeDriverTest, BackendNameCoversAllBackends) {
  EXPECT_EQ(driver::backendName(driver::Backend::TreeInterp), "tree-interp");
  EXPECT_EQ(driver::backendName(driver::Backend::AbstractMachine),
            "abstract-machine");
  EXPECT_EQ(driver::backendName(driver::Backend::Bytecode), "bytecode");
}

TEST(BytecodeDriverTest, MaxVmStepsBoundsTheRun) {
  driver::Session S;
  auto Comp = S.compile("loop :: Int# -> Int# ;"
                        "loop n = loop (n +# 1#) ;"
                        "v = loop 0#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::Executor Ex(Comp);
  Ex.options().MaxVmSteps = 500;
  driver::RunResult R = Ex.run("v", driver::Backend::Bytecode);
  EXPECT_EQ(R.St, driver::RunResult::Status::OutOfFuel);
  EXPECT_EQ(R.Error, "out of fuel");
  EXPECT_EQ(R.Used, driver::Backend::Bytecode);
  EXPECT_EQ(R.steps(), 500u);
}

TEST(BytecodeDriverTest, ExecutorReusesItsVmAcrossRuns) {
  driver::Session S;
  auto Comp = S.compile("a = 1# +# 2# ; b = 3# *# 4#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::Executor Ex(Comp);
  EXPECT_EQ(Ex.run("a", driver::Backend::Bytecode).IntValue.value_or(-1), 3);
  EXPECT_EQ(Ex.run("b", driver::Backend::Bytecode).IntValue.value_or(-1), 12);
  // And runs stay correct when interleaved with the other backends.
  EXPECT_EQ(Ex.run("a", driver::Backend::AbstractMachine)
                .IntValue.value_or(-1),
            3);
  EXPECT_EQ(Ex.run("b", driver::Backend::Bytecode).IntValue.value_or(-1), 12);
}

TEST(BytecodeDriverTest, ExecutorRecoversAfterOutOfFuel) {
  // The VM mirror of the tree interpreter's un-blackhole fix: a run cut
  // off by fuel (or aborted by an error) mid-force must not leave heap
  // thunks black-holed. With the executor's heap recycled as a region
  // across runs, a stale Blackhole surviving the abort would make the
  // retry stick on a bogus re-entered-black-hole — so starve a run,
  // restore the fuel, and the SAME executor must succeed.
  driver::Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "total = sumToH 0# 1000#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();

  driver::Executor Ex(Comp);
  Ex.options().MaxVmSteps = 10; // Starve the first run mid-force.
  driver::RunResult Starved = Ex.run("total", driver::Backend::Bytecode);
  EXPECT_EQ(Starved.St, driver::RunResult::Status::OutOfFuel);
  EXPECT_EQ(Starved.Used, driver::Backend::Bytecode);

  Ex.options().MaxVmSteps = 1000000000;
  driver::RunResult Retry = Ex.run("total", driver::Backend::Bytecode);
  ASSERT_TRUE(Retry.ok()) << Retry.Error;
  EXPECT_EQ(Retry.Used, driver::Backend::Bytecode);
  EXPECT_EQ(Retry.IntValue.value_or(-1), 500500);
}

TEST(BytecodeDriverTest, RunsReportPeakHeapStats) {
  // Allocating programs must surface nonzero peak-heap stats through
  // RunResult; a pure-unboxed program legitimately reports zero (the
  // whole run lives in registers).
  driver::Session S;
  auto Comp = S.compile("inc :: Int -> Int ;"
                        "inc n = case n of { I# x -> I# (x +# 1#) } ;"
                        "boxed = inc (inc (I# 40#)) ;"
                        "pure = 40# +# 2#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::Executor Ex(Comp);

  driver::RunResult Boxed = Ex.run("boxed", driver::Backend::Bytecode);
  ASSERT_TRUE(Boxed.ok()) << Boxed.Error;
  EXPECT_GT(Boxed.peakHeapCells(), 0u);
  EXPECT_GT(Boxed.peakHeapBytes(), 0u);

  driver::RunResult Pure = Ex.run("pure", driver::Backend::Bytecode);
  ASSERT_TRUE(Pure.ok()) << Pure.Error;
  EXPECT_EQ(Pure.peakHeapCells(), 0u);
}

TEST(BytecodeDriverTest, FormalPipelineRunsOnTheVm) {
  driver::Session S;
  auto Comp = S.compileFormal([](lcalc::LContext &L) {
    return L.intLit(7);
  });
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::RunResult R = Comp->run(driver::Backend::Bytecode);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Used, driver::Backend::Bytecode);
  EXPECT_EQ(R.IntValue.value_or(-1), 7);
}

TEST(BytecodeDriverTest, StuckRunsNameTheVmTier) {
  // The VM names its own tier in stuck reports, so a diverging
  // diagnosis never points at the wrong backend.
  driver::Session S;
  auto Comp = S.compile("v = quotInt# 1# 0#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  driver::RunResult R = Comp->run("v", driver::Backend::Bytecode);
  EXPECT_EQ(R.St, driver::RunResult::Status::RuntimeError);
  EXPECT_EQ(R.Error, "bytecode vm stuck: divide by zero");
}

} // namespace
