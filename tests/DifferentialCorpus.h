//===- DifferentialCorpus.h - The shared differential program corpus ------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The ~40-program corpus shared by three harnesses:
//
//   * tests/differential_backend_test.cpp — every program runs on both
//     backends and the RunResults must agree;
//   * tests/artifact_store_test.cpp — every program round-trips through
//     serialize → deserialize → run with identical RunResults;
//   * examples/shared_store.cpp — the two-process store-sharing demo
//     (process A populates a store, process B must get 100% disk hits).
//
// Keep additions here so all three harnesses grow together: arithmetic,
// comparisons, cases, lets, lambdas, loops, Double#, bottoms, and the
// known out-of-fragment shapes (InFragment == false), which every
// harness must see reported as Unsupported — never a crash or silent
// divergence.
//
//===----------------------------------------------------------------------===//

#ifndef LEVITY_TESTS_DIFFERENTIALCORPUS_H
#define LEVITY_TESTS_DIFFERENTIALCORPUS_H

#include <cstddef>

namespace levity {
namespace testing {

struct CorpusProgram {
  const char *Label;   ///< Test-output name.
  const char *Source;  ///< Surface program text.
  const char *Global;  ///< Top-level binding to evaluate.
  bool InFragment;     ///< False: the machine must report Unsupported.
};

inline constexpr CorpusProgram Corpus[] = {
    // Int# arithmetic.
    {"IntLiteral", "v = 42#", "v", true},
    {"Add", "v = 40# +# 2#", "v", true},
    {"NestedArith", "v = (1# +# 2#) *# (3# +# 4#)", "v", true},
    {"SubToNegative", "v = 5# -# 9#", "v", true},
    {"MulChain", "v = 2# *# 3# *# 7#", "v", true},
    {"Quot", "v = quotInt# 17# 5#", "v", true},
    {"Rem", "v = remInt# 17# 5#", "v", true},
    // Both division hazards must fail as runtime errors on both
    // backends, never crash the process.
    {"QuotByZeroAgrees", "v = quotInt# 1# 0#", "v", true},
    {"QuotOverflowDoesNotCrash",
     "v = quotInt# (0# -# 9223372036854775807# -# 1#) (0# -# 1#)", "v",
     true},
    {"Negate", "v = negateInt# 21#", "v", true},

    // Int# comparisons (0/1 results).
    {"LtTrue", "v = 3# <# 4#", "v", true},
    {"LtFalse", "v = 4# <# 3#", "v", true},
    {"LeEqual", "v = 4# <=# 4#", "v", true},
    {"Gt", "v = 9# ># 2#", "v", true},
    {"GeFalse", "v = 1# >=# 2#", "v", true},
    {"EqHash", "v = 5# ==# 5#", "v", true},
    {"NeFalse", "v = 5# /=# 5#", "v", true},

    // Boxing, cases, lets, lambdas.
    {"BoxedRoundTrip",
     "inc :: Int -> Int ;"
     "inc n = case n of { I# x -> I# (x +# 1#) } ;"
     "v = inc (inc (I# 40#))",
     "v", true},
    {"SurfaceLet", "v = let y = 20# in y +# 22#", "v", true},
    {"LambdaApply",
     "apply :: (Int# -> Int#) -> Int# -> Int# ;"
     "apply f x = f x ;"
     "v = apply (\\y -> y *# 3#) 14#",
     "v", true},
    {"LitCaseFirstAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 0#",
     "v", true},
    {"LitCaseSecondAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 1#",
     "v", true},
    {"LitCaseDefaultAlt",
     "f :: Int# -> Int# ;"
     "f x = case x of { 0# -> 100# ; 1# -> 200# ; _ -> x } ;"
     "v = f 9#",
     "v", true},
    {"BoxedLitCase",
     "f :: Int -> Int ;"
     "f n = case n of { 0 -> I# 7# ; _ -> n } ;"
     "v = f (I# 0#)",
     "v", true},

    // Loops and recursion (the fix/RECLET path).
    {"SumToUnboxed",
     "sumToH :: Int# -> Int# -> Int# ;"
     "sumToH acc n = case n of {"
     "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
     "} ;"
     "v = sumToH 0# 100#",
     "v", true},
    {"SumToUnboxedZeroIters",
     "sumToH :: Int# -> Int# -> Int# ;"
     "sumToH acc n = case n of {"
     "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
     "} ;"
     "v = sumToH 0# 0#",
     "v", true},
    {"FibViaComparisonCase",
     "fib :: Int# -> Int# ;"
     "fib n = case (n <# 2#) of { 1# -> n ; _ ->"
     "  fib (n -# 1#) +# fib (n -# 2#) } ;"
     "v = fib 12#",
     "v", true},
    {"MutualViaSelfParity",
     "parity :: Int# -> Int# ;"
     "parity n = case n of { 0# -> 0# ; _ ->"
     "  case (parity (n -# 1#)) of { 0# -> 1# ; _ -> 0# } } ;"
     "v = parity 7#",
     "v", true},
    {"BoxedSumToLoop",
     "sumTo :: Int -> Int -> Int ;"
     "sumTo acc n = case n of {"
     "  0 -> acc ; _ -> sumTo (acc + n) (n - 1)"
     "} ;"
     "v = sumTo (I# 0#) (I# 50#)",
     "v", true},

    // Double#.
    {"DoubleAdd", "v = 1.5## +## 2.25##", "v", true},
    {"DoubleDiv", "v = 7.0## /## 2.0##", "v", true},
    {"DoubleNegate", "v = negateDouble# 2.5##", "v", true},
    // negateDouble# lowers to -0.0## -## x; plain 0.0## -## x would give
    // +0.0 for x = 0.0 and flip this quotient's infinity sign.
    {"DoubleNegateSignedZero",
     "v = 1.0## /## (negateDouble# 0.0##)", "v", true},
    {"DoubleLtTrue", "v = 2.5## <## 2.75##", "v", true},
    {"DoubleEqFalse", "v = 2.5## ==## 2.75##", "v", true},
    {"DoubleSumLoop",
     "sumD :: Double# -> Double# -> Double# ;"
     "sumD acc n = case (n ==## 0.0##) of {"
     "  1# -> acc ; _ -> sumD (acc +## n) (n -## 1.0##)"
     "} ;"
     "v = sumD 0.0## 100.0##",
     "v", true},
    {"MixedDoubleComparisonToInt",
     "v = case (3.0## <## 4.0##) of { 1# -> 10# ; _ -> 20# }", "v", true},

    // Algebraic data through the machine pipeline: Bool, Maybe, lists,
    // nested cases, default alternatives, lazy constructor fields.
    {"BoolIf", "v = if isTrue# (3# <# 4#) then 1# else 0#", "v", true},
    {"BoolNot",
     "not :: Bool -> Bool ;"
     "not b = case b of { True -> False ; False -> True } ;"
     "v = case not True of { True -> 1# ; False -> 0# }",
     "v", true},
    {"BoolCaseDefault",
     "v = case False of { True -> 1# ; _ -> 0# }", "v", true},
    {"MaybeJust",
     "data Maybe a = Nothing | Just a ;"
     "fromMaybe :: Int# -> Maybe Int -> Int# ;"
     "fromMaybe d m = case m of {"
     "  Nothing -> d ; Just n -> case n of { I# x -> x }"
     "} ;"
     "v = fromMaybe 0# (Just (I# 42#))",
     "v", true},
    {"MaybeNothing",
     "data Maybe a = Nothing | Just a ;"
     "fromMaybe :: Int# -> Maybe Int -> Int# ;"
     "fromMaybe d m = case m of {"
     "  Nothing -> d ; Just n -> case n of { I# x -> x }"
     "} ;"
     "v = fromMaybe 7# Nothing",
     "v", true},
    {"MaybeNested",
     "data Maybe a = Nothing | Just a ;"
     "v = case Just (Just (I# 5#)) of {"
     "  Nothing -> 0# ;"
     "  Just m -> case m of {"
     "    Nothing -> 1# ; Just n -> case n of { I# x -> x } } }",
     "v", true},
    {"SumList",
     "data IntList = Nil | Cons Int IntList ;"
     "sumList :: IntList -> Int# ;"
     "sumList xs = case xs of {"
     "  Nil -> 0# ;"
     "  Cons y ys -> case y of { I# n -> n +# sumList ys }"
     "} ;"
     "v = sumList (Cons (I# 1#) (Cons (I# 2#) (Cons (I# 3#) Nil)))",
     "v", true},
    {"ListLength",
     "data IntList = Nil | Cons Int IntList ;"
     "len :: IntList -> Int# ;"
     "len xs = case xs of { Nil -> 0# ; Cons y ys -> 1# +# len ys } ;"
     "v = len (Cons (I# 9#) (Cons (I# 9#) Nil))",
     "v", true},
    {"UnboxedFieldCon",
     "data Acc = MkAcc Int# Double# ;"
     "v = case MkAcc (40# +# 2#) 1.5## of { MkAcc n d -> n }",
     "v", true},
    {"LazyConField",
     // The second field is lifted, so the error thunk must never be
     // forced on either backend.
     "data P = MkP Int Int ;"
     "v = case MkP (I# 7#) (error \"never forced\") of {"
     "  MkP a b -> case a of { I# x -> x } }",
     "v", true},
    {"ColorCaseWithDefault",
     "data Color = Red | Green | Blue ;"
     "rank :: Color -> Int# ;"
     "rank c = case c of { Red -> 1# ; _ -> 99# } ;"
     "v = rank Green +# rank Red",
     "v", true},
    {"BoxedDoubleRoundTrip",
     "v = case D# 2.5## of { D# d -> d +## 0.25## }", "v", true},
    {"DefaultOnlyCaseOnVariable",
     // PR-5 fix: a default-only case (here over an Int# variable the
     // caller already evaluated) is in fragment.
     "f :: Int# -> Int# ;"
     "f x = case x of { _ -> x +# 1# } ;"
     "v = f 41#",
     "v", true},

    // Bottom: the diagnostic must match across backends.
    {"ErrorBottom",
     "v :: Int# ;"
     "v = error \"differential bottom\"",
     "v", true},
    {"UnsupportedUnboxedTuple", "v = (# 1#, 2# #)", "v", false},
    {"UnsupportedConversion", "v = int2Double# 3#", "v", false},
    {"UnsupportedMutualRecursion",
     "ev :: Int# -> Int# ;"
     "ev n = case n of { 0# -> 1# ; _ -> od (n -# 1#) } ;"
     "od :: Int# -> Int# ;"
     "od n = case n of { 0# -> 0# ; _ -> ev (n -# 1#) } ;"
     "v = ev 10#",
     "v", false},
};

inline constexpr size_t CorpusSize = sizeof(Corpus) / sizeof(Corpus[0]);

} // namespace testing
} // namespace levity

#endif // LEVITY_TESTS_DIFFERENTIALCORPUS_H
