//===- levity_check_test.cpp - Section 5.1 restrictions on core (E10) -----===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The LevityCheck pass: the acceptance matrix for the paper's examples.
// Notably the abs1/abs2 pair of Section 7.3 — η-equivalent definitions
// where one is accepted and the other rejected — and the bTwice story.
//
//===----------------------------------------------------------------------===//

#include "core/LevityCheck.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::core;

namespace {

class LevityCheckTest : public ::testing::Test {
protected:
  CoreContext C;
  DiagnosticEngine Diags;
  LevityChecker Checker{C, Diags};
  CoreEnv Env;

  bool check(const Expr *E) {
    Diags.clear();
    return Checker.check(Env, E);
  }
};

// Monomorphic and TYPE-P-polymorphic binders are fine.
TEST_F(LevityCheckTest, ConcreteBindersAccepted) {
  Symbol X = C.sym("x");
  EXPECT_TRUE(check(C.lam(X, C.intTy(), C.var(X))));
  EXPECT_TRUE(check(C.lam(X, C.intHashTy(), C.var(X))));
  EXPECT_TRUE(
      check(C.lam(X, C.unboxedTupleTy({C.intHashTy(), C.intTy()}),
                  C.var(X))));
}

// Polymorphism at a *fixed* kind is fine: λ(x::a) with a :: Type.
TEST_F(LevityCheckTest, LiftedPolymorphicBinderAccepted) {
  Symbol A = C.sym("a"), X = C.sym("x");
  const Type *AT = C.varTy(A, C.typeKind());
  EXPECT_TRUE(check(C.tyLam(A, C.typeKind(), C.lam(X, AT, C.var(X)))));
}

// Restriction 1: λ(x::a) with a :: TYPE r is rejected.
TEST_F(LevityCheckTest, LevityPolymorphicBinderRejected) {
  Symbol R = C.sym("r"), A = C.sym("a"), X = C.sym("x");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  const Expr *E =
      C.tyLam(R, C.repKind(), C.tyLam(A, KA, C.lam(X, AT, C.var(X))));
  EXPECT_FALSE(check(E));
  EXPECT_TRUE(Diags.hasError(DiagCode::LevityPolymorphicBinder));
}

// Restriction 2: applying a function to a levity-polymorphic argument is
// rejected, even when no binder is involved.
TEST_F(LevityCheckTest, LevityPolymorphicArgumentRejected) {
  Symbol R = C.sym("r"), A = C.sym("a");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  // f :: a -> Int via error; arg :: a via error; f arg.
  const Expr *F = C.errorExpr(C.funTy(AT, C.intTy()), C.liftedRep(),
                              C.litString(C.sym("f")));
  const Expr *Arg = C.errorExpr(AT, C.repVar(R),
                                C.litString(C.sym("x")));
  const Expr *E = C.tyLam(R, C.repKind(),
                          C.tyLam(A, KA, C.app(F, Arg, false)));
  EXPECT_FALSE(check(E));
  EXPECT_TRUE(Diags.hasError(DiagCode::LevityPolymorphicArgument));
}

// error itself may be *instantiated* at a levity-polymorphic type: its
// result is never moved or stored (Section 3.3). This is myError.
TEST_F(LevityCheckTest, MyErrorAccepted) {
  Symbol R = C.sym("r"), A = C.sym("a"), S = C.sym("s");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  // myError = /\r. /\(a::TYPE r). \(s::String). error @r @a s.
  const Expr *E = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, KA,
              C.lam(S, C.stringTy(),
                    C.errorExpr(AT, C.repVar(R), C.var(S)))));
  EXPECT_TRUE(check(E)) << Diags.str();
}

// ($) :: forall r a (b :: TYPE r). (a -> b) -> a -> b — the Section 7.2
// generalization: only the *result* is levity-polymorphic, so both
// binders (f and x) have concrete-kinded types, and the application f x
// passes a lifted argument. Accepted.
TEST_F(LevityCheckTest, DollarGeneralizationAccepted) {
  Symbol R = C.sym("r"), A = C.sym("a"), B = C.sym("b"), F = C.sym("f"),
         X = C.sym("x");
  const Kind *KB = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, C.typeKind());
  const Type *BT = C.varTy(B, KB);
  const Expr *E = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, C.typeKind(),
              C.tyLam(B, KB,
                      C.lam(F, C.funTy(AT, BT),
                            C.lam(X, AT,
                                  C.app(C.var(F), C.var(X), false))))));
  EXPECT_TRUE(check(E)) << Diags.str();
}

// (.) :: forall r a b (c :: TYPE r). (b -> c) -> (a -> b) -> a -> c —
// Section 7.2's composition generalization. Accepted for the same reason.
TEST_F(LevityCheckTest, ComposeGeneralizationAccepted) {
  Symbol R = C.sym("r"), A = C.sym("a"), B = C.sym("b"), Cv = C.sym("c"),
         F = C.sym("f"), G = C.sym("g"), X = C.sym("x");
  const Kind *KC = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, C.typeKind());
  const Type *BT = C.varTy(B, C.typeKind());
  const Type *CT = C.varTy(Cv, KC);
  const Expr *Body = C.app(
      C.var(F), C.app(C.var(G), C.var(X), false), false);
  const Expr *E = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, C.typeKind(),
              C.tyLam(B, C.typeKind(),
                      C.tyLam(Cv, KC,
                              C.lam(F, C.funTy(BT, CT),
                                    C.lam(G, C.funTy(AT, BT),
                                          C.lam(X, AT, Body)))))));
  EXPECT_TRUE(check(E)) << Diags.str();
}

// But generalizing the *argument* of ($) — kind b for x :: b :: TYPE r —
// trips restriction 1.
TEST_F(LevityCheckTest, DollarArgumentGeneralizationRejected) {
  Symbol R = C.sym("r"), B = C.sym("b"), F = C.sym("f"), X = C.sym("x");
  const Kind *KB = C.kindTYPE(C.repVar(R));
  const Type *BT = C.varTy(B, KB);
  const Expr *E = C.tyLam(
      R, C.repKind(),
      C.tyLam(B, KB,
              C.lam(F, C.funTy(BT, C.intTy()),
                    C.lam(X, BT, C.app(C.var(F), C.var(X), false)))));
  EXPECT_FALSE(check(E));
  EXPECT_TRUE(Diags.hasError(DiagCode::LevityPolymorphicBinder));
}

// Section 7.3's abs1/abs2: abs1 = abs (selector applied to a dictionary;
// arity 1; fine) versus abs2 x = abs x (η-expansion binds the
// levity-polymorphic x; rejected). Here the "dictionary" is modeled as a
// lifted value carrying the method, which is what dictionaries are.
TEST_F(LevityCheckTest, Abs1AcceptedAbs2Rejected) {
  Symbol R = C.sym("r"), A = C.sym("a"), D = C.sym("dict"),
         X = C.sym("x");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  // The dictionary type: a lifted box whose field is the method a -> a.
  // We model the selector as dict -> (a -> a) via error (its body does
  // not matter for the levity check).
  const Type *DictTy = C.intTy(); // any lifted stand-in
  const Expr *Selector = C.errorExpr(
      C.funTy(DictTy, C.funTy(AT, AT)), C.liftedRep(),
      C.litString(C.sym("select")));

  // abs1 = /\r a. \dict. select dict  — arity 1, accepted.
  const Expr *Abs1 = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, KA,
              C.lam(D, DictTy, C.app(Selector, C.var(D), false))));
  EXPECT_TRUE(check(Abs1)) << Diags.str();

  // abs2 = /\r a. \dict. \x. select dict x — η-expanded, arity 2: binds
  // the levity-polymorphic x. Rejected.
  const Expr *Abs2 = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, KA,
              C.lam(D, DictTy,
                    C.lam(X, AT,
                          C.app(C.app(Selector, C.var(D), false),
                                C.var(X), false)))));
  EXPECT_FALSE(check(Abs2));
  EXPECT_TRUE(Diags.hasError(DiagCode::LevityPolymorphicBinder));
}

// All violations are reported, not just the first.
TEST_F(LevityCheckTest, ReportsAllViolations) {
  Symbol R = C.sym("r"), A = C.sym("a"), X = C.sym("x"), Y = C.sym("y");
  const Kind *KA = C.kindTYPE(C.repVar(R));
  const Type *AT = C.varTy(A, KA);
  const Expr *E = C.tyLam(
      R, C.repKind(),
      C.tyLam(A, KA,
              C.lam(X, AT, C.lam(Y, AT, C.var(X)))));
  EXPECT_FALSE(check(E));
  EXPECT_EQ(Diags.numErrors(), 2u);
}

// A binder whose kind involves a rep *metavariable* is also rejected
// (this is the post-inference zonked-kind check of Section 8.2).
TEST_F(LevityCheckTest, UnsolvedRepMetaRejected) {
  Symbol X = C.sym("x");
  const Type *AT = C.freshTypeMeta(C.kindTYPE(C.freshRepMeta()));
  const Expr *E = C.lam(X, AT, C.var(X));
  EXPECT_FALSE(check(E));
  EXPECT_TRUE(Diags.hasError(DiagCode::LevityPolymorphicBinder));
}

// ...but once the rep meta is solved to a concrete rep, the same term
// passes — zonking is what makes the check possible.
TEST_F(LevityCheckTest, SolvedRepMetaAccepted) {
  Symbol X = C.sym("x");
  const RepTy *Nu = C.freshRepMeta();
  const Type *AT = C.freshTypeMeta(C.kindTYPE(Nu));
  C.repMetaCell(Nu->metaId()).Solution = C.liftedRep();
  C.typeMetaCell(cast<MetaType>(AT)->id()).Solution = C.intTy();
  const Expr *E = C.lam(X, AT, C.var(X));
  EXPECT_TRUE(check(E)) << Diags.str();
}

} // namespace
