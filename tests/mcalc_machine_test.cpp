//===- mcalc_machine_test.cpp - Figure 6 rule-by-rule machine tests -------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Every transition of the M machine, plus thunk sharing (EVAL + FCE),
// capture-avoiding substitution, and the calling-convention mismatches
// that levity restrictions exist to prevent (experiment E5).
//
//===----------------------------------------------------------------------===//

#include "mcalc/Machine.h"
#include "mcalc/Syntax.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::mcalc;

namespace {

class MachineTest : public ::testing::Test {
protected:
  MContext C;
  Machine M{C};

  MVar p(std::string_view N) { return {C.symbols().intern(N), VarSort::Ptr}; }
  MVar i(std::string_view N) { return {C.symbols().intern(N), VarSort::Int}; }

  int64_t runToLit(const Term *T) {
    MachineResult R = M.run(T);
    EXPECT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
    const auto *L = dyn_cast<LitTerm>(R.Value);
    EXPECT_NE(L, nullptr) << "final value: " << R.Value->str();
    return L ? L->value() : -1;
  }

  int64_t runToCon(const Term *T) {
    MachineResult R = M.run(T);
    EXPECT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
    const auto *L = dyn_cast<ConLitTerm>(R.Value);
    EXPECT_NE(L, nullptr) << "final value: " << R.Value->str();
    return L ? L->value() : -1;
  }
};

//===--------------------------------------------------------------------===//
// Values and trivial runs
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, ValuesAreFinal) {
  EXPECT_EQ(runToLit(C.lit(5)), 5);
  EXPECT_EQ(runToCon(C.conLit(5)), 5);
  MachineResult R = M.run(C.lam(p("x"), C.var(p("x"))));
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_TRUE(isValue(R.Value));
}

TEST_F(MachineTest, ErrorAborts) {
  // ERR.
  MachineResult R = M.run(C.error());
  EXPECT_EQ(R.Status, MachineOutcome::Bottom);
}

//===--------------------------------------------------------------------===//
// Application (PAPP/IAPP/PPOP/IPOP)
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, IntegerApplication) {
  // (λi. i) 42 → 42 via IAPP then IPOP.
  const Term *T = C.appLit(C.lam(i("a"), C.var(i("a"))), 42);
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(cast<LitTerm>(R.Value)->value(), 42);
  EXPECT_EQ(R.Stats.BetaInt, 1u);
  EXPECT_EQ(R.Stats.BetaPtr, 0u);
}

TEST_F(MachineTest, PointerApplicationThroughLet) {
  // let q = I#[7] in (λx. x) q → I#[7] (PAPP, PPOP, VAL).
  MVar Q = p("q");
  const Term *T =
      C.let(Q, C.conLit(7), C.appVar(C.lam(p("x"), C.var(p("x"))), Q));
  EXPECT_EQ(runToCon(T), 7);
}

TEST_F(MachineTest, ConventionMismatchPtrForInt) {
  // Applying a pointer argument to λi. … must get stuck — this is the
  // register-class mismatch that kinds-as-conventions rules out.
  MVar Q = p("q");
  const Term *T =
      C.let(Q, C.conLit(7), C.appVar(C.lam(i("n"), C.var(i("n"))), Q));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("calling-convention mismatch"),
            std::string::npos);
}

TEST_F(MachineTest, ConventionMismatchIntForPtr) {
  const Term *T = C.appLit(C.lam(p("x"), C.var(p("x"))), 3);
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("calling-convention mismatch"),
            std::string::npos);
}

TEST_F(MachineTest, ApplyingNonFunctionSticks) {
  MachineResult R = M.run(C.appLit(C.lit(1), 2));
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
}

//===--------------------------------------------------------------------===//
// Laziness: LET, VAL, EVAL, FCE
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, LazyLetDoesNotEvaluateUnusedRhs) {
  // let q = error in 5 → 5; the thunk is never entered.
  const Term *T = C.let(p("q"), C.error(), C.lit(5));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(R.Stats.Allocations, 1u);
  EXPECT_EQ(R.Stats.ThunkEvals, 0u);
}

TEST_F(MachineTest, UsedThunkIsEvaluated) {
  // let q = (λx. x) applied-to-nothing… simpler: let q = I#[3] (a value):
  // VAL path, no thunk machinery.
  MVar Q = p("q");
  const Term *T = C.let(Q, C.conLit(3), C.var(Q));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(R.Stats.VarLookups, 1u);
  EXPECT_EQ(R.Stats.ThunkEvals, 0u);
}

TEST_F(MachineTest, ThunkEvaluatedOnDemandAndUpdated) {
  // let q = (case I#[1] of I#[n] -> I#[n]) in q — the rhs is a non-value,
  // so using q triggers EVAL and the result is written back by FCE.
  MVar Q = p("q");
  const Term *Rhs = C.caseOf(C.conLit(1), i("n"), C.conVar(i("n")));
  const Term *T = C.let(Q, Rhs, C.var(Q));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(cast<ConLitTerm>(R.Value)->value(), 1);
  EXPECT_EQ(R.Stats.ThunkEvals, 1u);
  EXPECT_EQ(R.Stats.ThunkUpdates, 1u);
}

TEST_F(MachineTest, ThunkSharing) {
  // Force the same thunk twice: the second use must be a VAL lookup, not
  // a re-evaluation (this is what distinguishes M from L's call-by-name).
  MVar Q = p("q");
  const Term *Rhs = C.caseOf(C.conLit(21), i("n"), C.conVar(i("n")));
  // case q of I#[a] -> case q of I#[b] -> I#[b]
  const Term *Body = C.caseOf(C.var(Q), i("a"),
                              C.caseOf(C.var(Q), i("b"), C.conVar(i("b"))));
  MachineResult R = M.run(C.let(Q, Rhs, Body));
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(cast<ConLitTerm>(R.Value)->value(), 21);
  EXPECT_EQ(R.Stats.ThunkEvals, 1u) << "thunk evaluated more than once";
  EXPECT_EQ(R.Stats.VarLookups, 1u);
}

TEST_F(MachineTest, DanglingPointerSticks) {
  MachineResult R = M.run(C.var(p("nowhere")));
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("dangling"), std::string::npos);
}

TEST_F(MachineTest, ReentrantLetAllocatesDistinctCells) {
  // (λx. let q = I#[1] in case q of I#[a] -> x) applied twice would clash
  // if LET reused the same heap name. Build:
  //   let f = λx. (let q = I#[9] in case q of I#[a] -> x)
  //   in case (f applied to I#[5]-thunk) of I#[m] ->
  //        case (f applied to I#[6]-thunk) of I#[n] -> I#[n]
  MVar F = p("f"), X = p("x"), Q = p("q"), A1 = p("a1"), A2 = p("a2");
  const Term *FBody =
      C.lam(X, C.let(Q, C.conLit(9), C.caseOf(C.var(Q), i("a"),
                                              C.var(X))));
  const Term *Call1 = C.appVar(C.var(F), A1);
  const Term *Call2 = C.appVar(C.var(F), A2);
  const Term *T = C.let(
      F, FBody,
      C.let(A1, C.conLit(5),
            C.let(A2, C.conLit(6),
                  C.caseOf(Call1, i("m"),
                           C.caseOf(Call2, i("n"), C.conVar(i("n")))))));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(cast<ConLitTerm>(R.Value)->value(), 6);
  EXPECT_EQ(R.Stats.Allocations, 5u); // f, a1, a2, q (twice)
}

//===--------------------------------------------------------------------===//
// Strict let (SLET/ILET) and case (CASE/IMAT)
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, StrictLetEvaluatesRhsFirst) {
  // let! n = (λi. i) 4 in I#[n].
  const Term *T = C.letBang(
      i("n"), C.appLit(C.lam(i("k"), C.var(i("k"))), 4), C.conVar(i("n")));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Value);
  EXPECT_EQ(cast<ConLitTerm>(R.Value)->value(), 4);
  EXPECT_EQ(R.Stats.StrictLets, 1u);
}

TEST_F(MachineTest, StrictLetOfErrorDiverges) {
  const Term *T = C.letBang(i("n"), C.error(), C.lit(5));
  EXPECT_EQ(M.run(T).Status, MachineOutcome::Bottom);
}

TEST_F(MachineTest, CaseUnpacksBox) {
  // case I#[11] of I#[n] -> n.
  const Term *T = C.caseOf(C.conLit(11), i("n"), C.var(i("n")));
  EXPECT_EQ(runToLit(T), 11);
}

TEST_F(MachineTest, CaseOfNonBoxSticks) {
  const Term *T = C.caseOf(C.lit(11), i("n"), C.var(i("n")));
  MachineResult R = M.run(T);
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
}

TEST_F(MachineTest, UnresolvedIntVarSticks) {
  EXPECT_EQ(M.run(C.var(i("n"))).Status, MachineOutcome::Stuck);
  EXPECT_EQ(M.run(C.conVar(i("n"))).Status, MachineOutcome::Stuck);
}

//===--------------------------------------------------------------------===//
// Substitution
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, SubstLitConvertsForms) {
  // I#[n][5/n] = I#[5]; (t n)[5/n] = t 5.
  const Term *T = C.appVar(C.conVar(i("n")), i("n"));
  const Term *Out = substLit(C, T, i("n"), 5);
  EXPECT_EQ(Out->str(), "I#[5] 5");
}

TEST_F(MachineTest, SubstVarRenames) {
  const Term *T = C.appVar(C.var(p("x")), p("x"));
  const Term *Out = substVar(C, T, p("x"), p("y"));
  EXPECT_EQ(Out->str(), "y y");
}

TEST_F(MachineTest, SubstShadowingStops) {
  // (λx. x)[y/x] = λx. x.
  const Term *T = C.lam(p("x"), C.var(p("x")));
  EXPECT_EQ(substVar(C, T, p("x"), p("y")), T);
}

TEST_F(MachineTest, SubstAvoidsCapture) {
  // (λy. x)[y/x] must freshen the binder.
  const Term *T = C.lam(p("y"), C.var(p("x")));
  const Term *Out = substVar(C, T, p("x"), p("y"));
  const auto *L = cast<LamTerm>(Out);
  EXPECT_NE(L->param(), p("y"));
  EXPECT_EQ(cast<VarTerm>(L->body())->var(), p("y"));
}

TEST_F(MachineTest, SubstIntoLetRhsAndBody) {
  // (let q = x in q x)[y/x].
  MVar Q = p("q");
  const Term *T =
      C.let(Q, C.var(p("x")), C.appVar(C.var(Q), p("x")));
  const Term *Out = substVar(C, T, p("x"), p("y"));
  EXPECT_EQ(Out->str(), "let q = y in q y");
}

TEST_F(MachineTest, StatsCountSteps) {
  const Term *T = C.caseOf(C.conLit(1), i("n"), C.var(i("n")));
  MachineResult R = M.run(T);
  EXPECT_GT(R.Stats.Steps, 0u);
  EXPECT_EQ(R.Stats.Cases, 1u);
}

TEST_F(MachineTest, FuelExhaustionReported) {
  // An infinite loop is inexpressible without recursion, but fuel can be
  // made smaller than the program needs.
  const Term *T = C.caseOf(C.conLit(1), i("n"), C.conVar(i("n")));
  MachineResult R = M.run(T, 1);
  EXPECT_EQ(R.Status, MachineOutcome::OutOfFuel);
}

TEST_F(MachineTest, PrintsReadably) {
  const Term *T = C.letBang(i("n"), C.lit(3), C.conVar(i("n")));
  EXPECT_EQ(T->str(), "let! n = 3 in I#[n]");
}

//===--------------------------------------------------------------------===//
// SWITCH / SWITCHk — the tag-dispatch pair (PR 5)
//===--------------------------------------------------------------------===//

class SwitchTest : public MachineTest {
protected:
  MVar f(std::string_view N) { return {C.symbols().intern(N), VarSort::Dbl}; }

  /// switch Scrut of { CON 0 [] -> 10 ; CON 1 [n] -> n ; _ -> Def }.
  const Term *twoConSwitch(const Term *Scrut, const Term *Def) {
    MVar N = i("n");
    MAlt Alts[2];
    Alts[0].Pat = MAlt::PatKind::Con;
    Alts[0].Tag = 0;
    Alts[0].Body = C.lit(10);
    Alts[1].Pat = MAlt::PatKind::Con;
    Alts[1].Tag = 1;
    Alts[1].Binders = std::span<const MVar>(&N, 1);
    Alts[1].Body = C.var(N);
    return C.switchOf(Scrut, Alts, Def);
  }
};

TEST_F(SwitchTest, DispatchesOnConstructorTag) {
  // SWITCHk: CON 1 [7] selects the tag-1 alternative and binds n := 7.
  MAtom Args[] = {MAtom::lit(7)};
  MachineResult R = M.run(twoConSwitch(C.con(1, Args), nullptr));
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(cast<LitTerm>(R.Value)->value(), 7);
  EXPECT_EQ(R.Stats.Switches, 1u);
  EXPECT_EQ(R.Stats.Branches, 1u);

  MachineResult R0 = M.run(twoConSwitch(C.con(0, {}), nullptr));
  ASSERT_EQ(R0.Status, MachineOutcome::Value) << R0.StuckReason;
  EXPECT_EQ(cast<LitTerm>(R0.Value)->value(), 10);
}

TEST_F(SwitchTest, UnmatchedTagTakesDefault) {
  MachineResult R = M.run(twoConSwitch(C.con(2, {}), C.lit(99)));
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(cast<LitTerm>(R.Value)->value(), 99);
}

TEST_F(SwitchTest, UnmatchedTagWithoutDefaultIsStuck) {
  MachineResult R = M.run(twoConSwitch(C.con(2, {}), nullptr));
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("no matching switch alternative"),
            std::string::npos);
}

TEST_F(SwitchTest, BoxedIntScrutineeMatchesTagZero) {
  // I#[n] dispatches as tag 0 of the built-in Int, binding the payload.
  MVar N = i("n");
  MAlt Alt;
  Alt.Pat = MAlt::PatKind::Con;
  Alt.Tag = 0;
  Alt.Binders = std::span<const MVar>(&N, 1);
  Alt.Body = C.prim(MPrim::Add, MAtom::var(N), MAtom::lit(1));
  const Term *T = C.switchOf(C.conLit(41), {&Alt, 1}, nullptr);
  EXPECT_EQ(runToLit(T), 42);
}

TEST_F(SwitchTest, LiteralAlternativesDispatchByValue) {
  MAlt Alts[2];
  Alts[0].Pat = MAlt::PatKind::Int;
  Alts[0].IntVal = 3;
  Alts[0].Body = C.lit(30);
  Alts[1].Pat = MAlt::PatKind::Int;
  Alts[1].IntVal = 4;
  Alts[1].Body = C.lit(40);
  EXPECT_EQ(runToLit(C.switchOf(C.lit(4), Alts, C.lit(0))), 40);
  EXPECT_EQ(runToLit(C.switchOf(C.lit(3), Alts, C.lit(0))), 30);
  EXPECT_EQ(runToLit(C.switchOf(C.lit(9), Alts, C.lit(0))), 0);

  MAlt DAlt;
  DAlt.Pat = MAlt::PatKind::Dbl;
  DAlt.DblVal = 2.5;
  DAlt.Body = C.lit(1);
  EXPECT_EQ(runToLit(C.switchOf(C.dlit(2.5), {&DAlt, 1}, C.lit(0))), 1);
  EXPECT_EQ(runToLit(C.switchOf(C.dlit(2.0), {&DAlt, 1}, C.lit(0))), 0);
}

TEST_F(SwitchTest, PointerFieldsBindLazilyThroughTheHeap) {
  // let p = <thunk> in switch CON 0 [p, 8] of { CON 0 [q, m] -> q + m }:
  // the pointer field flows through unevaluated; forcing q runs the
  // thunk (EVAL + FCE) and the unboxed field substitutes as a literal.
  MVar P = p("p"), Q = p("q"), Mm = i("m"), N = i("n");
  MAtom ConArgs[] = {MAtom::anyVar(P), MAtom::lit(8)};
  MVar Binders[2] = {Q, Mm};
  MAlt Alt;
  Alt.Pat = MAlt::PatKind::Con;
  Alt.Tag = 0;
  Alt.Binders = std::span<const MVar>(Binders, 2);
  // case q of I#[n] -> n + m.
  Alt.Body = C.caseOf(C.var(Q), N,
                      C.prim(MPrim::Add, MAtom::var(N), MAtom::var(Mm)));
  const Term *T =
      C.let(P, C.conLit(34), C.switchOf(C.con(0, ConArgs), {&Alt, 1},
                                        nullptr));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(cast<LitTerm>(R.Value)->value(), 42);
  EXPECT_EQ(R.Stats.Allocations, 1u);
}

TEST_F(SwitchTest, ConAllocsCountConstructorHeapNodes) {
  // A CON bound by a lazy let is a constructor node in the heap.
  MVar P = p("p");
  MAtom Args[] = {MAtom::lit(1)};
  const Term *T = C.let(P, C.con(1, Args),
                        twoConSwitch(C.var(P), nullptr));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(R.Stats.ConAllocs, 1u);
}

TEST_F(SwitchTest, UnresolvedUnboxedConFieldIsStuck) {
  // A CON whose unboxed atom never got a literal is not a value and has
  // no rule: stuck, like any other ill-sorted program.
  MAtom Args[] = {MAtom::var(i("loose"))};
  MachineResult R = M.run(C.con(1, Args));
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("unresolved unboxed field"),
            std::string::npos);
}

TEST_F(SwitchTest, SwitchBinderArityMismatchIsStuck) {
  // Tag matches but the pattern arity does not: stuck, not UB.
  MAtom Args[] = {MAtom::lit(1), MAtom::lit(2)};
  MachineResult R = M.run(twoConSwitch(C.con(1, Args), nullptr));
  EXPECT_EQ(R.Status, MachineOutcome::Stuck);
  EXPECT_NE(R.StuckReason.find("arity mismatch"), std::string::npos);
}

//===--------------------------------------------------------------------===//
// FinalHeap reachability pruning
//===--------------------------------------------------------------------===//

TEST_F(MachineTest, FinalHeapDropsCellsUnreachableFromTheResult) {
  // let live = CON_1[1] in let dead = CON_2[2] in CON_3[live]: the
  // result value names live but not dead, so the snapshot must keep
  // exactly the live cell. (Keeping the whole heap is the unbounded-
  // growth bug: every run's dead bindings would outlive the run pinned
  // inside MachineResult.)
  MAtom LiveRhs[] = {MAtom::lit(1)};
  MAtom DeadRhs[] = {MAtom::lit(2)};
  MAtom ResultArgs[] = {MAtom::anyVar(p("live"))};
  const Term *T =
      C.let(p("live"), C.con(1, LiveRhs),
            C.let(p("dead"), C.con(2, DeadRhs), C.con(3, ResultArgs)));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  ASSERT_EQ(R.FinalHeap.size(), 1u);

  // Probing the survivor through the snapshot still works: resume from
  // FinalHeap on the field the result carries (the machine freshens let
  // binders, so take the name from the value, not from the source).
  const auto *Res = cast<ConTerm>(R.Value);
  ASSERT_EQ(Res->args().size(), 1u);
  MVar Field = Res->args()[0].Var;
  ASSERT_TRUE(R.FinalHeap.count(Field.Name));
  MachineResult Probe = M.runWithHeap(C.var(Field), R.FinalHeap);
  ASSERT_EQ(Probe.Status, MachineOutcome::Value) << Probe.StuckReason;
  EXPECT_EQ(cast<ConTerm>(Probe.Value)->tag(), 1u);
}

TEST_F(MachineTest, FinalHeapKeepsTransitivelyReachableCells) {
  // Reachability is transitive through stored terms: the result names b,
  // b's cell names a, so both survive while dead is dropped.
  MAtom ARhs[] = {MAtom::lit(5)};
  MAtom BRhs[] = {MAtom::anyVar(p("a"))};
  MAtom DeadRhs[] = {MAtom::lit(9)};
  MAtom ResultArgs[] = {MAtom::anyVar(p("b"))};
  const Term *T = C.let(
      p("a"), C.con(1, ARhs),
      C.let(p("b"), C.con(2, BRhs),
            C.let(p("dead"), C.con(9, DeadRhs), C.con(3, ResultArgs))));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(R.FinalHeap.size(), 2u);
}

TEST_F(MachineTest, NonValueOutcomesKeepTheWholeHeap) {
  // Stuck/bottom states have no result to trace from; the full heap
  // stays available for debugging.
  MAtom Rhs[] = {MAtom::lit(1)};
  const Term *T = C.let(p("x"), C.con(1, Rhs), C.error());
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Bottom);
  EXPECT_EQ(R.FinalHeap.size(), 1u);
}

TEST_F(MachineTest, RunsReportPeakHeapBytes) {
  // Any allocating run must surface a nonzero arena peak.
  MAtom Rhs[] = {MAtom::lit(1)};
  MAtom ResultArgs[] = {MAtom::anyVar(p("x"))};
  const Term *T = C.let(p("x"), C.con(1, Rhs), C.con(3, ResultArgs));
  MachineResult R = M.run(T);
  ASSERT_EQ(R.Status, MachineOutcome::Value) << R.StuckReason;
  EXPECT_GT(R.Stats.PeakHeapBytes, 0u);
  EXPECT_EQ(R.Stats.MaxHeapSize, 1u);
}

} // namespace
