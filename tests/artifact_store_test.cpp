//===- artifact_store_test.cpp - The on-disk compilation store ------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The persistent store's contract, exercised end to end:
//
//   * Round trip: every program in the shared differential corpus goes
//     through serialize → deserialize → run and the hydrated RunResults
//     are identical to the originals on both backends (including error
//     messages on ⊥ and the pinned "not expressible in L" diagnostics).
//   * Cold-process warm-store: a fresh Session over a populated store
//     compiles the whole corpus with *zero* front-end runs — disk hits
//     equal the corpus size in Session::Stats.
//   * Robustness: corrupt, truncated, wrong-version, wrong-fingerprint,
//     and wrong-source entries are all treated as misses and fall back
//     to a clean recompile. Never a crash, never a wrong answer.
//   * Policy: write-behind completes at flushStoreWrites();
//     MaxStoredArtifacts evicts oldest entries and counts them.
//
//===----------------------------------------------------------------------===//

#include "driver/ArtifactStore.h"
#include "driver/Serialize.h"
#include "driver/Session.h"
#include "support/FileOps.h"
#include "DifferentialCorpus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace levity;
using namespace levity::driver;
using levity::testing::Corpus;
using levity::testing::CorpusProgram;
using levity::testing::CorpusSize;

namespace {

namespace fs = std::filesystem;

/// A fresh per-test store directory under the system temp dir.
std::string freshStoreDir(const std::string &Tag) {
  fs::path Dir = fs::temp_directory_path() /
                 ("levity-store-test-" + Tag + "-" +
                  std::to_string(::getpid()));
  fs::remove_all(Dir);
  return Dir.string();
}

CompileOptions storeOptions(const std::string &Dir) {
  CompileOptions Opts;
  Opts.StorePath = Dir;
  return Opts;
}

/// Store options for a Backend::Bytecode session: only these serialize
/// a BCOD section eagerly (other sessions persist just the bytecode
/// they already compiled, which for a freshly compiled-then-flushed
/// artifact is none).
CompileOptions bytecodeStoreOptions(const std::string &Dir) {
  CompileOptions Opts = storeOptions(Dir);
  Opts.DefaultBackend = Backend::Bytecode;
  return Opts;
}

/// Asserts two RunResults are observably identical (status, values,
/// display, and failure text).
void expectSameRunResult(const RunResult &A, const RunResult &B,
                         const char *What) {
  SCOPED_TRACE(What);
  ASSERT_EQ(A.St, B.St) << "A: '" << A.Error << "' B: '" << B.Error << "'";
  EXPECT_EQ(A.IntValue.has_value(), B.IntValue.has_value());
  EXPECT_EQ(A.DoubleValue.has_value(), B.DoubleValue.has_value());
  if (A.IntValue && B.IntValue)
    EXPECT_EQ(*A.IntValue, *B.IntValue);
  if (A.DoubleValue && B.DoubleValue)
    EXPECT_DOUBLE_EQ(*A.DoubleValue, *B.DoubleValue);
  EXPECT_EQ(A.Display, B.Display);
  EXPECT_EQ(A.Error, B.Error);
}

//===----------------------------------------------------------------------===//
// Round trip: the whole corpus, both backends
//===----------------------------------------------------------------------===//

class ArtifactRoundTripTest
    : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(ArtifactRoundTripTest, SerializeDeserializeRunIdentical) {
  const CorpusProgram &P = GetParam();
  SCOPED_TRACE(P.Label);
  std::string Dir = freshStoreDir(std::string("rt") + P.Label);

  Session Warm(storeOptions(Dir));
  auto Orig = Warm.compile(P.Source);
  ASSERT_TRUE(Orig->ok()) << Orig->diagText();
  RunResult OrigMach = Orig->run(P.Global, Backend::AbstractMachine);
  RunResult OrigTree = Orig->run(P.Global, Backend::TreeInterp);
  RunResult OrigBc = Orig->run(P.Global, Backend::Bytecode);
  Warm.flushStoreWrites();

  Session Cold(storeOptions(Dir));
  auto Hyd = Cold.compile(P.Source);
  ASSERT_TRUE(Hyd->ok());
  ASSERT_TRUE(Hyd->hydrated()) << "expected a disk hit";
  Session::Stats St = Cold.stats();
  EXPECT_EQ(St.DiskHits, 1u);
  EXPECT_EQ(St.Compilations, 0u);

  // The machine result must replay identically with zero re-lowering.
  RunResult HydMach = Hyd->run(P.Global, Backend::AbstractMachine);
  expectSameRunResult(OrigMach, HydMach, "abstract machine");
  if (!P.InFragment) {
    EXPECT_EQ(HydMach.St, RunResult::Status::Unsupported);
    EXPECT_EQ(HydMach.Error.rfind("not expressible in L", 0), 0u)
        << HydMach.Error;
  }

  // Bytecode runs replay identically too — recompiled lazily from the
  // restored M terms (this tree-backend session's artifact carries no
  // BCOD section; BytecodeSectionServesVmRunsWithZeroLowering covers
  // the hydrated-bytecode path).
  RunResult HydBc = Hyd->run(P.Global, Backend::Bytecode);
  expectSameRunResult(OrigBc, HydBc, "bytecode vm");
  EXPECT_EQ(OrigBc.Used, HydBc.Used);

  // Tree runs rebuild the front end lazily and must agree too.
  RunResult HydTree = Hyd->run(P.Global, Backend::TreeInterp);
  expectSameRunResult(OrigTree, HydTree, "tree interpreter");

  fs::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, ArtifactRoundTripTest, ::testing::ValuesIn(Corpus),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Label);
    });

//===----------------------------------------------------------------------===//
// The acceptance shape: a cold process over a warm store
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, ColdSessionWarmStoreRunsCorpusWithZeroRelowerings) {
  std::string Dir = freshStoreDir("cold-warm");

  {
    Session Warm(storeOptions(Dir));
    for (const CorpusProgram &P : Corpus)
      ASSERT_TRUE(Warm.compile(P.Source)->ok()) << P.Label;
    Warm.flushStoreWrites();
    Session::Stats St = Warm.stats();
    EXPECT_EQ(St.Compilations, CorpusSize);
    EXPECT_EQ(St.DiskMisses, CorpusSize);
    EXPECT_EQ(St.DiskHits, 0u);
  }

  Session Cold(storeOptions(Dir));
  for (const CorpusProgram &P : Corpus) {
    auto Comp = Cold.compile(P.Source);
    ASSERT_TRUE(Comp->ok()) << P.Label;
    ASSERT_TRUE(Comp->hydrated()) << P.Label;
    RunResult R = Comp->run(P.Global, Backend::AbstractMachine);
    if (P.InFragment)
      EXPECT_NE(R.St, RunResult::Status::Unsupported)
          << P.Label << ": " << R.Error;
    else
      EXPECT_EQ(R.St, RunResult::Status::Unsupported) << P.Label;
  }
  Session::Stats St = Cold.stats();
  EXPECT_EQ(St.DiskHits, CorpusSize) << "every compile must be a disk hit";
  EXPECT_EQ(St.DiskMisses, 0u);
  EXPECT_EQ(St.Compilations, 0u) << "zero front-end runs in the cold session";

  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Robustness: damaged or stale entries are misses, never failures
//===----------------------------------------------------------------------===//

/// Populates a store with one program and returns its entry path.
std::string populateOne(const std::string &Dir, const char *Source,
                        bool Bytecode = false) {
  Session S(Bytecode ? bytecodeStoreOptions(Dir) : storeOptions(Dir));
  EXPECT_TRUE(S.compile(Source)->ok());
  S.flushStoreWrites();
  ArtifactStore Store(Dir);
  std::string Path = Store.entryPath(Session::hashSource(Source));
  EXPECT_TRUE(fs::exists(Path));
  return Path;
}

const char *RobustSrc =
    "sumToH :: Int# -> Int# -> Int# ;"
    "sumToH acc n = case n of { 0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#) } ;"
    "v = sumToH 0# 100#";

void expectFallbackRecompile(const std::string &Dir) {
  Session S(storeOptions(Dir));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->ok());
  EXPECT_FALSE(Comp->hydrated());
  Session::Stats St = S.stats();
  EXPECT_EQ(St.DiskHits, 0u);
  EXPECT_EQ(St.DiskMisses, 1u);
  EXPECT_EQ(St.Compilations, 1u);
  RunResult R = Comp->run("v", Backend::AbstractMachine);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.IntValue.value_or(-1), 5050);
}

TEST(ArtifactStoreTest, CorruptEntryFallsBackToRecompile) {
  std::string Dir = freshStoreDir("corrupt");
  std::string Path = populateOne(Dir, RobustSrc);

  // Flip one byte in the middle: the checksum must reject the file.
  std::string Bytes = *support::readFileBinary(Path);
  Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0x5a);
  ASSERT_TRUE(support::writeFileAtomic(Path, Bytes));

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, TruncatedEntryFallsBackToRecompile) {
  std::string Dir = freshStoreDir("truncated");
  std::string Path = populateOne(Dir, RobustSrc);

  std::string Bytes = *support::readFileBinary(Path);
  ASSERT_TRUE(support::writeFileAtomic(Path, {Bytes.data(), Bytes.size() / 3}));

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, EmptyEntryFallsBackToRecompile) {
  std::string Dir = freshStoreDir("empty");
  std::string Path = populateOne(Dir, RobustSrc);
  ASSERT_TRUE(support::writeFileAtomic(Path, ""));
  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

/// Patches a little-endian field at \p Offset and re-seals the trailer
/// checksum, isolating the version checks from the corruption check.
std::string patchAndReseal(std::string Bytes, size_t Offset, uint64_t Value,
                           size_t Width) {
  for (size_t I = 0; I != Width; ++I)
    Bytes[Offset + I] = static_cast<char>((Value >> (8 * I)) & 0xff);
  uint64_t Sum =
      levc::fnv1a({Bytes.data(), Bytes.size() - 8});
  for (size_t I = 0; I != 8; ++I)
    Bytes[Bytes.size() - 8 + I] = static_cast<char>((Sum >> (8 * I)) & 0xff);
  return Bytes;
}

TEST(ArtifactStoreTest, WrongFormatVersionFallsBackToRecompile) {
  std::string Dir = freshStoreDir("version");
  std::string Path = populateOne(Dir, RobustSrc);

  std::string Bytes = *support::readFileBinary(Path);
  // Format version lives right after the 4-byte magic.
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, 4, levc::FormatVersion + 7, 4)));

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, PreviousFormatVersionArtifactRejected) {
  // Version skew: an artifact carrying the previous release's format
  // version (v2, before the BCOD bytecode section) must be treated as a
  // miss and recompiled cleanly — even with a valid checksum.
  static_assert(levc::FormatVersion == 3,
                "update this test when bumping the format version");
  std::string Dir = freshStoreDir("oldversion");
  std::string Path = populateOne(Dir, RobustSrc);

  std::string Bytes = *support::readFileBinary(Path);
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, 4, /*Value=*/2, 4)));

  // Direct deserialization also refuses it.
  std::string Patched = *support::readFileBinary(Path);
  EXPECT_EQ(Compilation::deserializeArtifact(Patched, RobustSrc,
                                             CompileOptions()),
            nullptr);

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

/// Walks the section table and returns the payload byte offset of the
/// first section with \p WantId (0 when absent).
size_t findSectionPayload(const std::string &Bytes, uint32_t WantId) {
  size_t Off = 28; // past magic/version/fingerprint/hash/section-count
  while (Off + 12 <= Bytes.size() - 8) {
    uint32_t Id = 0;
    uint64_t Len = 0;
    for (int I = 0; I != 4; ++I)
      Id |= uint32_t(uint8_t(Bytes[Off + I])) << (8 * I);
    for (int I = 0; I != 8; ++I)
      Len |= uint64_t(uint8_t(Bytes[Off + 4 + I])) << (8 * I);
    if (Id == WantId)
      return Off + 12;
    Off += 12 + Len;
  }
  return 0;
}

TEST(ArtifactStoreTest, WrongPipelineFingerprintFallsBackToRecompile) {
  std::string Dir = freshStoreDir("fingerprint");
  std::string Path = populateOne(Dir, RobustSrc);

  std::string Bytes = *support::readFileBinary(Path);
  // The fingerprint follows magic + version — a stale-pipeline artifact.
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, 8, 0xdeadbeefcafef00dull, 8)));

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, WrongSourceEntryFallsBackToRecompile) {
  // A valid artifact parked under the *wrong* key (hash collision
  // stand-in): the byte-exact source compare must reject it.
  std::string Dir = freshStoreDir("wrong-source");
  std::string Path = populateOne(Dir, "other = 1# +# 2#");

  ArtifactStore Store(Dir);
  std::string Bytes = *support::readFileBinary(Path);
  ASSERT_TRUE(Store.store(Session::hashSource(RobustSrc), Bytes));

  expectFallbackRecompile(Dir);
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Policy: write-behind, flushing, eviction, stats
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, FlushPublishesWriteBehindEntries) {
  std::string Dir = freshStoreDir("flush");
  Session S(storeOptions(Dir));
  ASSERT_TRUE(S.compile(RobustSrc)->ok());
  S.flushStoreWrites();
  ArtifactStore Store(Dir);
  EXPECT_TRUE(fs::exists(Store.entryPath(Session::hashSource(RobustSrc))));
  EXPECT_EQ(Store.countEntries(), 1u);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, SessionDestructorDrainsPendingWrites) {
  std::string Dir = freshStoreDir("drain");
  { // No flush: the destructor must complete the scheduled writes.
    Session S(storeOptions(Dir));
    ASSERT_TRUE(S.compile(RobustSrc)->ok());
  }
  EXPECT_EQ(ArtifactStore(Dir).countEntries(), 1u);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, MaxStoredArtifactsEvictsOldestAndCounts) {
  std::string Dir = freshStoreDir("evict");
  CompileOptions Opts = storeOptions(Dir);
  Opts.MaxStoredArtifacts = 2;
  Session S(Opts);
  for (int I = 0; I != 5; ++I) {
    ASSERT_TRUE(
        S.compile("answer = " + std::to_string(I) + "# +# 1#")->ok());
    // Serialize the writes so "oldest" is well-defined per store pass.
    S.flushStoreWrites();
  }
  EXPECT_LE(ArtifactStore(Dir).countEntries(), 2u);
  Session::Stats St = S.stats();
  EXPECT_GE(St.DiskEvictions, 3u);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, MaxStoreBytesEvictsOldestToBudget) {
  std::string Dir = freshStoreDir("bytebudget");
  // Size the budget off one real artifact so the test tracks format
  // growth: keep room for roughly two entries, then write five.
  {
    Session Probe(storeOptions(Dir));
    ASSERT_TRUE(Probe.compile("answer = 0# +# 1#")->ok());
    Probe.flushStoreWrites();
  }
  uint64_t OneEntry = ArtifactStore(Dir).totalBytes();
  ASSERT_GT(OneEntry, 0u);
  fs::remove_all(Dir);

  CompileOptions Opts = storeOptions(Dir);
  Opts.MaxStoreBytes = OneEntry * 5 / 2;
  Session S(Opts);
  for (int I = 0; I != 5; ++I) {
    ASSERT_TRUE(
        S.compile("answer = " + std::to_string(I) + "# +# 1#")->ok());
    S.flushStoreWrites();
  }
  ArtifactStore Store(Dir);
  EXPECT_LE(Store.totalBytes(), Opts.MaxStoreBytes);
  EXPECT_GE(Store.countEntries(), 1u);
  Session::Stats St = S.stats();
  EXPECT_GE(St.DiskEvictions, 1u);

  // The newest entry survives: its session still gets a disk hit.
  Session Cold(storeOptions(Dir));
  auto Comp = Cold.compile("answer = 4# +# 1#");
  ASSERT_TRUE(Comp->ok());
  EXPECT_TRUE(Comp->hydrated());
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, EvictToBudgetEnforcesBothCapsDirectly) {
  std::string Dir = freshStoreDir("bothcaps");
  ArtifactStore Store(Dir);
  // Five fake entries of 100 bytes each, distinct keys and mtimes.
  for (uint64_t K = 1; K <= 5; ++K) {
    ASSERT_TRUE(Store.store(K << 56 | K, std::string(100, 'x')));
    fs::last_write_time(Store.entryPath(K << 56 | K),
                        fs::file_time_type(std::chrono::seconds(K)));
  }
  // Byte budget of 250 keeps the two newest plus change.
  size_t Evicted = Store.evictToBudget(/*MaxEntries=*/4, /*MaxBytes=*/250);
  EXPECT_EQ(Evicted, 3u);
  EXPECT_EQ(Store.countEntries(), 2u);
  EXPECT_LE(Store.totalBytes(), 250u);
  // The survivors are the newest two.
  EXPECT_TRUE(fs::exists(Store.entryPath(5ull << 56 | 5)));
  EXPECT_TRUE(fs::exists(Store.entryPath(4ull << 56 | 4)));
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, MissingStoreDirectoryIsJustAMiss) {
  std::string Dir = freshStoreDir("missing");
  // Never created: load must miss, the write-behind then creates it.
  Session S(storeOptions(Dir + "/nested/deeper"));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->ok());
  S.flushStoreWrites();
  Session::Stats St = S.stats();
  EXPECT_EQ(St.DiskMisses, 1u);
  EXPECT_EQ(ArtifactStore(Dir + "/nested/deeper").countEntries(), 1u);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, ConcurrentWarmersShareOneStoreSafely) {
  // 8 threads × disjoint sources through one Session, then a cold
  // session must hit on every one of them. (TSan-covered in CI.)
  std::string Dir = freshStoreDir("concurrent");
  constexpr int PerThread = 4, NumThreads = 8;
  {
    Session Warm(storeOptions(Dir));
    std::vector<std::thread> Threads;
    for (int T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&Warm, T] {
        for (int I = 0; I != PerThread; ++I) {
          std::string Src = "answer = " + std::to_string(T * PerThread + I) +
                            "# *# 3#";
          auto Comp = Warm.compile(Src);
          ASSERT_TRUE(Comp->ok());
          Comp->run("answer", Backend::AbstractMachine);
        }
      });
    for (std::thread &T : Threads)
      T.join();
    Warm.flushStoreWrites();
  }

  Session Cold(storeOptions(Dir));
  for (int I = 0; I != NumThreads * PerThread; ++I) {
    std::string Src = "answer = " + std::to_string(I) + "# *# 3#";
    auto Comp = Cold.compile(Src);
    ASSERT_TRUE(Comp->ok());
    EXPECT_TRUE(Comp->hydrated()) << Src;
    RunResult R = Comp->run("answer", Backend::AbstractMachine);
    EXPECT_EQ(R.IntValue.value_or(-1), I * 3);
  }
  Session::Stats St = Cold.stats();
  EXPECT_EQ(St.DiskHits, uint64_t(NumThreads * PerThread));
  EXPECT_EQ(St.Compilations, 0u);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, EvictionRacingReadThroughLosesNoResults) {
  // Store eviction racing read-through compiles (the server's EVICT
  // request against live traffic; TSan-covered in CI). Two reader
  // threads compile a program rotation through an EnableCache=false
  // session — every compile is a genuine store lookup — while an
  // evictor thread hammers evictStore(1, 0). An entry evicted under a
  // reader must be *just a miss* (recompile + re-publish): no failed
  // compile, no wrong value, and the ledgers stay exact.
  std::string Dir = freshStoreDir("evict-race");
  CompileOptions Opts = storeOptions(Dir);
  Opts.EnableCache = false;
  Session S(Opts);

  constexpr int Rounds = 25, NumPrograms = 6, NumReaders = 2;
  auto Src = [](int I) {
    return "answer = " + std::to_string(I) + "# *# 7#";
  };

  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Evicted{0};
  std::thread Evictor([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      Evicted.fetch_add(S.evictStore(1, 0), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> Readers;
  for (int T = 0; T != NumReaders; ++T)
    Readers.emplace_back([&] {
      for (int R = 0; R != Rounds; ++R)
        for (int I = 0; I != NumPrograms; ++I) {
          auto Comp = S.compile(Src(I));
          ASSERT_TRUE(Comp->ok()) << Comp->diagText();
          RunResult RR = Comp->run("answer", Backend::AbstractMachine);
          ASSERT_TRUE(RR.ok()) << RR.Error;
          EXPECT_EQ(RR.IntValue.value_or(-1), I * 7);
        }
    });
  for (std::thread &T : Readers)
    T.join();
  Stop.store(true, std::memory_order_relaxed);
  Evictor.join();
  S.flushStoreWrites();
  // One deterministic final pass: all six programs were published at
  // least once, so either the racing evictor already removed entries or
  // this call finds several to remove — either way the race happened
  // and the eviction ledger is non-zero.
  Evicted.fetch_add(S.evictStore(1, 0), std::memory_order_relaxed);

  // Counter consistency: every compile was exactly one store lookup,
  // every miss was one front-end run, and the eviction ledger matches
  // what the evictor actually removed (write-behind publication never
  // evicts here — both store budgets are unbounded).
  Session::Stats St = S.stats();
  EXPECT_EQ(St.DiskHits + St.DiskMisses,
            uint64_t(NumReaders * Rounds * NumPrograms));
  EXPECT_EQ(St.Compilations, St.DiskMisses);
  EXPECT_EQ(St.DiskEvictions, Evicted.load());
  EXPECT_GT(St.DiskEvictions, 0u); // The race genuinely happened.
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Hydrated-compilation surface
//===----------------------------------------------------------------------===//

TEST(ArtifactStoreTest, HydratedMetadataSurvivesWithoutFrontEnd) {
  std::string Dir = freshStoreDir("metadata");
  populateOne(Dir, RobustSrc);

  Session S(storeOptions(Dir));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->hydrated());

  // Stored type texts are available with zero front-end work.
  EXPECT_EQ(Comp->globalTypeText("v"), "Int#");
  EXPECT_EQ(Comp->globalTypeText("sumToH"), "Int# -> Int# -> Int#");
  EXPECT_EQ(Comp->globalTypeText("nonexistent"), "");

  // The timing report restores the original stages plus "hydrate".
  std::string Report = Comp->timingReport();
  EXPECT_NE(Report.find("elaborate+check"), std::string::npos) << Report;
  EXPECT_NE(Report.find("hydrate"), std::string::npos) << Report;

  // Unknown globals fail with a diagnostic, not a crash. (With a CORE
  // section the hydrated compilation carries the program, so the
  // message matches a fresh compile's.)
  RunResult R = Comp->run("nonexistent", Backend::AbstractMachine);
  EXPECT_EQ(R.St, RunResult::Status::Unsupported);
  EXPECT_NE(R.Error.find("no top-level binding named"), std::string::npos)
      << R.Error;
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, CoreSectionServesTreeRunsWithoutFrontEnd) {
  // PR 5: the CORE section restores the elaborated program, so a cold
  // process's *tree* runs skip lex/parse/elaborate too (PR-4 leftover).
  std::string Dir = freshStoreDir("coresec");
  Session Warm(storeOptions(Dir));
  auto Orig = Warm.compile(RobustSrc);
  ASSERT_TRUE(Orig->ok());
  RunResult OrigTree = Orig->run("v", Backend::TreeInterp);
  Warm.flushStoreWrites();

  Session Cold(storeOptions(Dir));
  auto Hyd = Cold.compile(RobustSrc);
  ASSERT_TRUE(Hyd->ok());
  ASSERT_TRUE(Hyd->hydrated());
  ASSERT_TRUE(Hyd->hydratedCore())
      << "the artifact must carry a CORE section for this program";
  Session::Stats St = Cold.stats();
  EXPECT_EQ(St.DiskHits, 1u);
  EXPECT_EQ(St.Compilations, 0u);

  // The program is available without any front-end rebuild, and the
  // tree run agrees with the original.
  ASSERT_NE(Hyd->program(), nullptr);
  RunResult Tree = Hyd->run("v", Backend::TreeInterp);
  expectSameRunResult(OrigTree, Tree, "tree run via CORE section");
  EXPECT_EQ(Tree.IntValue.value_or(-1), 5050);
  // Machine runs agree with tree runs on the hydrated compilation.
  EXPECT_EQ(Hyd->run("v", Backend::AbstractMachine).IntValue.value_or(-2),
            5050);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, MalformedCoreSectionFallsBackToFrontEndRebuild) {
  // A CORE section that passes the container checksum but fails the
  // core decode must leave the hydrated context pristine: the M terms
  // still serve machine runs, and the *lazy front-end rebuild* must
  // still succeed for tree runs (a half-decoded CORE section must not
  // leave duplicate tycons behind for the elaborator to trip over).
  const char *Src =
      "data IntList = Nil | Cons Int IntList ;"
      "len :: IntList -> Int# ;"
      "len xs = case xs of { Nil -> 0# ; Cons y ys -> 1# +# len ys } ;"
      "v = len (Cons (I# 1#) Nil)";
  std::string Dir = freshStoreDir("badcore");
  std::string Path = populateOne(Dir, Src);

  // Find the CORE section payload and corrupt its leading tycon count,
  // then re-seal the trailer so only the core decode fails.
  std::string Bytes = *support::readFileBinary(Path);
  size_t Off = 28; // past magic/version/fingerprint/hash/section-count
  size_t CoreOff = 0;
  while (Off + 12 <= Bytes.size() - 8) {
    uint32_t Id = 0;
    uint64_t Len = 0;
    for (int I = 0; I != 4; ++I)
      Id |= uint32_t(uint8_t(Bytes[Off + I])) << (8 * I);
    for (int I = 0; I != 8; ++I)
      Len |= uint64_t(uint8_t(Bytes[Off + 4 + I])) << (8 * I);
    if (Id == levc::SecCore) {
      CoreOff = Off + 12;
      break;
    }
    Off += 12 + Len;
  }
  ASSERT_NE(CoreOff, 0u) << "artifact must carry a CORE section";
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, CoreOff, 0xFF, 1)));

  Session S(storeOptions(Dir));
  auto Comp = S.compile(Src);
  ASSERT_TRUE(Comp->ok());
  ASSERT_TRUE(Comp->hydrated());
  EXPECT_FALSE(Comp->hydratedCore());
  // Machine runs need no front end; tree runs trigger the rebuild,
  // which must succeed in the unpolluted context.
  EXPECT_EQ(Comp->run("v", Backend::AbstractMachine).IntValue.value_or(-1),
            1);
  EXPECT_EQ(Comp->run("v", Backend::TreeInterp).IntValue.value_or(-2), 1);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, CoreSectionRestoresUserDataTypes) {
  // ADT programs round-trip the CORE section: user tycons/datacons are
  // recreated in the hydrated context and the tree interpreter runs
  // them without a front end.
  const char *Src =
      "data IntList = Nil | Cons Int IntList ;"
      "sumList :: IntList -> Int# ;"
      "sumList xs = case xs of {"
      "  Nil -> 0# ;"
      "  Cons y ys -> case y of { I# n -> n +# sumList ys }"
      "} ;"
      "v = sumList (Cons (I# 1#) (Cons (I# 2#) (Cons (I# 3#) Nil)))";
  std::string Dir = freshStoreDir("coreadt");
  {
    Session Warm(storeOptions(Dir));
    ASSERT_TRUE(Warm.compile(Src)->ok());
    Warm.flushStoreWrites();
  }
  Session Cold(storeOptions(Dir));
  auto Hyd = Cold.compile(Src);
  ASSERT_TRUE(Hyd->ok());
  ASSERT_TRUE(Hyd->hydrated());
  ASSERT_TRUE(Hyd->hydratedCore());
  EXPECT_EQ(Cold.stats().Compilations, 0u);
  EXPECT_EQ(Hyd->run("v", Backend::TreeInterp).IntValue.value_or(-1), 6);
  EXPECT_EQ(Hyd->run("v", Backend::AbstractMachine).IntValue.value_or(-2),
            6);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, BytecodeSectionServesVmRunsWithZeroLowering) {
  // PR 6: the BCOD section restores compiled bytecode modules, so a
  // cold process's Backend::Bytecode runs execute with zero front-end,
  // lowering, or bytecode-compilation work.
  std::string Dir = freshStoreDir("bcodsec");
  Session Warm(bytecodeStoreOptions(Dir));
  auto Orig = Warm.compile(RobustSrc);
  ASSERT_TRUE(Orig->ok());
  RunResult OrigBc = Orig->run("v", Backend::Bytecode);
  ASSERT_TRUE(OrigBc.ok()) << OrigBc.Error;
  ASSERT_EQ(OrigBc.Used, Backend::Bytecode);
  Warm.flushStoreWrites();

  Session Cold(bytecodeStoreOptions(Dir));
  auto Hyd = Cold.compile(RobustSrc);
  ASSERT_TRUE(Hyd->ok());
  ASSERT_TRUE(Hyd->hydrated());
  ASSERT_TRUE(Hyd->hydratedBytecode())
      << "the artifact must carry a BCOD section for this program";
  Session::Stats St = Cold.stats();
  EXPECT_EQ(St.DiskHits, 1u);
  EXPECT_EQ(St.Compilations, 0u) << "zero front-end runs";
  // The only stage this process performed is "hydrate": the original
  // build's stages were restored from the artifact, not re-run.
  size_t ThisProcessStages = 0;
  for (const StageTiming &T : Hyd->timings())
    if (T.Stage == "hydrate")
      ++ThisProcessStages;
  EXPECT_EQ(ThisProcessStages, 1u) << Hyd->timingReport();

  RunResult HydBc = Hyd->run("v", Backend::Bytecode);
  expectSameRunResult(OrigBc, HydBc, "bytecode via BCOD section");
  EXPECT_EQ(HydBc.Used, Backend::Bytecode);
  EXPECT_EQ(HydBc.IntValue.value_or(-1), 5050);
  EXPECT_EQ(HydBc.Vm.Steps, OrigBc.Vm.Steps)
      << "hydrated code must be instruction-identical";
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, NonBytecodeSessionsSerializeWithoutBytecodeWork) {
  // Serialization must not eagerly compile bytecode for sessions that
  // never use Backend::Bytecode: a tree-backend compile-then-flush
  // produces an artifact with no BCOD section at all (nothing was
  // memoized, nothing is persisted) — and it still hydrates and runs.
  std::string Dir = freshStoreDir("nobcod");
  std::string Path = populateOne(Dir, RobustSrc);

  std::string Bytes = *support::readFileBinary(Path);
  EXPECT_EQ(findSectionPayload(Bytes, levc::SecBytecode), 0u)
      << "tree-backend artifact must not carry a BCOD section";

  Session S(storeOptions(Dir));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->ok());
  ASSERT_TRUE(Comp->hydrated());
  EXPECT_FALSE(Comp->hydratedBytecode());
  EXPECT_EQ(Comp->run("v", Backend::Bytecode).IntValue.value_or(-1), 5050);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, MalformedBytecodeSectionFallsBackToRecompiling) {
  // A BCOD section that passes the container checksum but fails the
  // module decode must be ignored wholesale: hydration still succeeds,
  // and Backend::Bytecode runs recompile lazily from the restored M
  // terms — same answers, never a crash, never a miscompile.
  std::string Dir = freshStoreDir("badbcod");
  std::string Path = populateOne(Dir, RobustSrc, /*Bytecode=*/true);

  std::string Bytes = *support::readFileBinary(Path);
  size_t BcOff = findSectionPayload(Bytes, levc::SecBytecode);
  ASSERT_NE(BcOff, 0u) << "artifact must carry a BCOD section";
  // Corrupt the leading module count: the decode must reject it before
  // trusting any counts that follow.
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, BcOff, 0xFFFFFFFFull, 4)));

  Session S(storeOptions(Dir));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->ok());
  ASSERT_TRUE(Comp->hydrated());
  EXPECT_FALSE(Comp->hydratedBytecode());
  RunResult R = Comp->run("v", Backend::Bytecode);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Used, Backend::Bytecode);
  EXPECT_EQ(R.IntValue.value_or(-1), 5050);
  fs::remove_all(Dir);
}

TEST(ArtifactStoreTest, TruncatedBytecodeModuleFallsBackToRecompiling) {
  // Same contract when a module *inside* the section is cut short: the
  // sticky-fail reader rejects it, the section is ignored, and the
  // lazy recompile serves the run.
  std::string Dir = freshStoreDir("shortbcod");
  std::string Path = populateOne(Dir, RobustSrc, /*Bytecode=*/true);

  std::string Bytes = *support::readFileBinary(Path);
  size_t BcOff = findSectionPayload(Bytes, levc::SecBytecode);
  ASSERT_NE(BcOff, 0u);
  // Blow up the first module's name length so the string read runs off
  // the end of the payload.
  ASSERT_TRUE(support::writeFileAtomic(
      Path, patchAndReseal(Bytes, BcOff + 4, 0x00FFFFFFull, 4)));

  Session S(storeOptions(Dir));
  auto Comp = S.compile(RobustSrc);
  ASSERT_TRUE(Comp->ok());
  ASSERT_TRUE(Comp->hydrated());
  EXPECT_FALSE(Comp->hydratedBytecode());
  EXPECT_EQ(Comp->run("v", Backend::Bytecode).IntValue.value_or(-1), 5050);
  fs::remove_all(Dir);
}

TEST(ArtifactSerializeTest, BytecodeModuleCodecRoundTrips) {
  // Compile a real term, write the module, read it back: the decoded
  // module must validate and execute to the same result with the same
  // instruction count.
  mcalc::MContext MC;
  mcalc::MVar N = MC.freshInt();
  const mcalc::Term *T = MC.letBang(
      N, MC.prim(mcalc::MPrim::Mul, mcalc::MAtom::lit(6),
                 mcalc::MAtom::lit(7)),
      MC.if0(MC.var(N), MC.lit(0),
             MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(N),
                     mcalc::MAtom::lit(100))));
  auto Mod = bytecode::compile(T);
  ASSERT_TRUE(Mod.ok()) << Mod.error();

  levc::ByteWriter W;
  levc::writeBytecodeModule(W, **Mod);
  levc::ByteReader R(W.bytes());
  std::shared_ptr<const bytecode::Module> Back =
      levc::readBytecodeModule(R);
  ASSERT_NE(Back, nullptr);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());

  bytecode::Vm Vm;
  bytecode::VmResult A = Vm.run(**Mod, 1u << 20);
  bytecode::VmResult B = Vm.run(*Back, 1u << 20);
  ASSERT_TRUE(A.ok());
  ASSERT_TRUE(B.ok());
  EXPECT_EQ(A.IntValue.value_or(-1), 142);
  EXPECT_EQ(B.IntValue.value_or(-2), 142);
  EXPECT_EQ(A.Stats.Steps, B.Stats.Steps);
}

TEST(ArtifactSerializeTest, BytecodeModuleCodecRejectsMalformedInput) {
  { // Truncated header.
    levc::ByteReader R("\x01");
    EXPECT_EQ(levc::readBytecodeModule(R), nullptr);
    EXPECT_FALSE(R.ok());
  }
  { // A module whose code references an out-of-range pool index must be
    // rejected by the embedded validate() pass, not executed.
    bytecode::Module M;
    bytecode::Proto P;
    P.Entry = 0;
    P.End = 2;
    P.NumLocals = 0;
    M.Protos.push_back(P);
    M.Code.push_back({bytecode::Op::PushInt, 0, 0, /*C=*/5}); // no pool
    M.Code.push_back({bytecode::Op::Return, 0, 0, 0});
    ASSERT_FALSE(bytecode::validate(M));
    levc::ByteWriter W;
    levc::writeBytecodeModule(W, M);
    levc::ByteReader R(W.bytes());
    EXPECT_EQ(levc::readBytecodeModule(R), nullptr);
    EXPECT_FALSE(R.ok());
  }
}

TEST(ArtifactSerializeTest, BytecodeCodecSurvivesFuzzedInput) {
  // Deterministic single-byte corruptions over a real multi-arity
  // module (a recursive two-parameter closure, so the encoding carries
  // a ParamSorts vector and captures): every mutation must either be
  // rejected by the decoder — which re-validates before trusting
  // anything — or yield a module the VM runs to a clean outcome. A
  // crash or out-of-bounds access under any flip is the failure mode
  // this guards against; the sanitizer CI jobs run this same test.
  mcalc::MContext MC;
  mcalc::MVar F = MC.freshPtr(), X = MC.freshInt(), Y = MC.freshInt();
  const mcalc::Term *Fn = MC.lam(
      X, MC.lam(Y, MC.if0(MC.var(X), MC.var(Y),
                          MC.prim(mcalc::MPrim::Add, mcalc::MAtom::var(X),
                                  mcalc::MAtom::var(Y)))));
  const mcalc::Term *T = MC.letRec(
      F, Fn, MC.appLit(MC.appLit(MC.var(F), 20), 22));
  auto Mod = bytecode::compile(T);
  ASSERT_TRUE(Mod.ok()) << Mod.error();
  {
    bytecode::Vm Vm;
    ASSERT_EQ(Vm.run(**Mod, 4096).IntValue.value_or(-1), 42);
  }

  levc::ByteWriter W;
  levc::writeBytecodeModule(W, **Mod);
  const std::string Bytes = W.bytes();
  size_t Decoded = 0;
  for (size_t I = 0; I != Bytes.size(); ++I) {
    for (uint8_t Delta : {0x01, 0x80, 0xFF}) {
      std::string Mut = Bytes;
      Mut[I] = static_cast<char>(static_cast<uint8_t>(Mut[I]) ^ Delta);
      levc::ByteReader R(Mut);
      std::shared_ptr<const bytecode::Module> Back =
          levc::readBytecodeModule(R);
      if (!Back)
        continue;
      ++Decoded;
      EXPECT_TRUE(bytecode::validate(*Back))
          << "decoder must never hand out an invalid module (offset " << I
          << ", flip 0x" << std::hex << unsigned(Delta) << ")";
      bytecode::Vm Vm;
      bytecode::VmResult Res = Vm.run(*Back, 4096);
      (void)Res; // Any of the four clean outcomes is acceptable.
    }
  }
  // Some flips (e.g. in pooled literal payloads) decode fine; the
  // interesting property is that everything that decodes also runs.
  SUCCEED() << Decoded << " mutants decoded cleanly";
}

TEST(ArtifactStoreTest, SerializeRejectsFormalAndProgrammaticCompilations) {
  Session S;
  auto Formal = S.compileFormal(
      [](lcalc::LContext &L) { return L.intLit(7); });
  ASSERT_TRUE(Formal->ok());
  EXPECT_FALSE(Formal->serializeArtifact().ok());

  auto Prog = S.compileProgram([](core::CoreContext &C) {
    core::CoreProgram P;
    P.Bindings.push_back({C.sym("x"), C.intHashTy(), C.litInt(1)});
    return P;
  });
  EXPECT_FALSE(Prog->serializeArtifact().ok());
}

//===----------------------------------------------------------------------===//
// The byte-level term codec
//===----------------------------------------------------------------------===//

TEST(ArtifactSerializeTest, TermCodecRoundTripsEveryNodeKind) {
  mcalc::MContext Src, Dst;
  mcalc::MVar P = Src.freshPtr(), I = Src.freshInt(), F = Src.freshDbl();

  // One term touching every TermKind and both atom payloads.
  // A constructor with a pointer, an unboxed-literal, and a double
  // field, scrutinized by a switch with every pattern sort.
  mcalc::MAtom ConAtoms[] = {mcalc::MAtom::anyVar(P), mcalc::MAtom::lit(9),
                             mcalc::MAtom::dlit(0.5)};
  mcalc::MVar BP = Src.freshPtr(), BI = Src.freshInt(),
              BF = Src.freshDbl();
  mcalc::MVar SwBinders[] = {BP, BI, BF};
  mcalc::MAlt Alts[3];
  Alts[0].Pat = mcalc::MAlt::PatKind::Con;
  Alts[0].Tag = 2;
  Alts[0].Binders = std::span<const mcalc::MVar>(SwBinders, 3);
  Alts[0].Body = Src.var(BP);
  Alts[1].Pat = mcalc::MAlt::PatKind::Int;
  Alts[1].IntVal = -4;
  Alts[1].Body = Src.lit(1);
  Alts[2].Pat = mcalc::MAlt::PatKind::Dbl;
  Alts[2].DblVal = 2.25;
  Alts[2].Body = Src.dlit(3.5);
  const mcalc::Term *Sw =
      Src.switchOf(Src.con(2, ConAtoms), Alts, Src.lit(0));

  const mcalc::Term *T = Src.let(
      P,
      Src.letRec(Src.freshPtr(),
                 Src.lam(I, Src.if0(Src.var(I),
                                    Src.prim(mcalc::MPrim::Add,
                                             mcalc::MAtom::var(I),
                                             mcalc::MAtom::lit(3)),
                                    Src.error(Src.symbols().intern("boom")))),
                 Src.appLit(Src.appDbl(Src.appVar(Src.var(P), P), 2.5), 7)),
      Src.letBang(
          I,
          Src.caseOf(Src.conLit(4), I,
                     Src.prim(mcalc::MPrim::DMul, mcalc::MAtom::var(F),
                              mcalc::MAtom::dlit(1.5))),
          Src.let(Src.freshPtr(), Sw, Src.conVar(I))));

  levc::ByteWriter W;
  levc::writeTerm(W, T);
  levc::ByteReader R(W.bytes());
  const mcalc::Term *Back = levc::readTerm(R, Dst);
  ASSERT_NE(Back, nullptr);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(T->str(), Back->str());
}

TEST(ArtifactSerializeTest, TermCodecRejectsMalformedInput) {
  mcalc::MContext Ctx;

  { // Unknown tag byte.
    levc::ByteReader R("\xff");
    EXPECT_EQ(levc::readTerm(R, Ctx), nullptr);
    EXPECT_FALSE(R.ok());
  }
  { // Truncated: a Lam with no body.
    levc::ByteWriter W;
    W.u8(static_cast<uint8_t>(mcalc::Term::TermKind::Lam));
    W.str("p0");
    W.u8(static_cast<uint8_t>(mcalc::VarSort::Ptr));
    levc::ByteReader R(W.bytes());
    EXPECT_EQ(levc::readTerm(R, Ctx), nullptr);
  }
  { // Invalid sort byte.
    levc::ByteWriter W;
    W.u8(static_cast<uint8_t>(mcalc::Term::TermKind::Var));
    W.str("x");
    W.u8(9);
    levc::ByteReader R(W.bytes());
    EXPECT_EQ(levc::readTerm(R, Ctx), nullptr);
  }
  { // A lazy let binding a non-pointer must be rejected (machine LET
    // rule precondition).
    levc::ByteWriter W;
    W.u8(static_cast<uint8_t>(mcalc::Term::TermKind::Let));
    W.str("i0");
    W.u8(static_cast<uint8_t>(mcalc::VarSort::Int));
    levc::ByteReader R(W.bytes());
    EXPECT_EQ(levc::readTerm(R, Ctx), nullptr);
  }
  { // Over-deep nesting must fail instead of overflowing the C++ stack:
    // a long chain of Case headers, each expecting a scrutinee.
    levc::ByteWriter W;
    for (unsigned I = 0; I != levc::MaxTermDepth + 8; ++I)
      W.u8(static_cast<uint8_t>(mcalc::Term::TermKind::Case));
    levc::ByteReader R(W.bytes());
    EXPECT_EQ(levc::readTerm(R, Ctx), nullptr);
  }
}

TEST(ArtifactSerializeTest, FingerprintIsStableWithinABuild) {
  EXPECT_EQ(levc::pipelineFingerprint(), levc::pipelineFingerprint());
  EXPECT_NE(levc::pipelineFingerprint(), 0u);
}

} // namespace
