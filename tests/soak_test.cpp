//===- soak_test.cpp - Long-lived Session memory-reclamation soak ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The regression surface for the long-lived-Session memory bug: run the
// differential corpus in a loop on all three backends through ONE
// Session with persistent Executors, and assert the per-run peak-heap
// stats *plateau* — after a warm-up run, every subsequent run of the
// same program reports bit-identical peaks and ledgers. Before the
// per-Executor run regions (arena reset, interpreter run epochs, VM
// heap recycling), each iteration grew the live heap, so any plateau
// assertion here would fail monotonically.
//
// Iteration counts are deliberately small by default so the suite stays
// fast under plain ctest; CI's sanitizer soak job (and manual RSS
// checks) scale them up with LEVITY_SOAK_ITERS. These tests carry the
// ctest label `soak` (see CMakeLists.txt).
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"
#include "DifferentialCorpus.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

using namespace levity;
using namespace levity::driver;

namespace {

using levity::testing::Corpus;
using levity::testing::CorpusProgram;

/// Iterations per soak loop. Bounded by default (Debug-friendly); the
/// CI soak job and manual 1M-iteration RSS runs override via
/// LEVITY_SOAK_ITERS.
size_t soakIters() {
  if (const char *Env = std::getenv("LEVITY_SOAK_ITERS")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Env, &End, 10);
    if (End && *End == '\0' && V > 0)
      return static_cast<size_t>(V);
  }
#ifdef NDEBUG
  return 200; // Release default: enough to expose any per-run growth.
#else
  return 50; // Debug default: keep the plain ctest run quick.
#endif
}

constexpr Backend AllBackends[] = {Backend::TreeInterp,
                                   Backend::AbstractMachine,
                                   Backend::Bytecode};

TEST(SoakTest, CorpusPeakHeapPlateausAcrossRunsOnAllBackends) {
  // One Session, one persistent Executor per corpus program; every
  // backend's peak-heap stats and ledgers must be identical from the
  // second run onward (run 1 may differ: it pays one-time costs —
  // global-thunk forcing on the tree interpreter, first-touch region
  // growth on the VM).
  Session S;
  const size_t Iters = soakIters();
  for (const CorpusProgram &P : Corpus) {
    if (!P.InFragment)
      continue; // Out-of-fragment programs exercise nothing heap-wise.
    SCOPED_TRACE(P.Label);
    auto Comp = S.compile(P.Source);
    ASSERT_TRUE(Comp->ok()) << Comp->diagText();
    Executor Ex(Comp);
    for (Backend B : AllBackends) {
      SCOPED_TRACE(backendName(B));
      Ex.run(P.Global, B); // Warm-up: one-time costs land here.
      RunResult Base = Ex.run(P.Global, B);
      for (size_t I = 0; I + 2 < Iters; ++I) {
        RunResult R = Ex.run(P.Global, B);
        ASSERT_EQ(R.St, Base.St) << "iteration " << I;
        ASSERT_EQ(R.steps(), Base.steps()) << "iteration " << I;
        ASSERT_EQ(R.allocations(), Base.allocations()) << "iteration " << I;
        ASSERT_EQ(R.peakHeapCells(), Base.peakHeapCells())
            << "peak-heap grew by iteration " << I;
        ASSERT_EQ(R.peakHeapBytes(), Base.peakHeapBytes())
            << "peak-heap grew by iteration " << I;
        ASSERT_EQ(R.Display, Base.Display) << "iteration " << I;
      }
    }
  }
}

TEST(SoakTest, TreeInterpreterLiveCellsPlateauAcrossRuns) {
  // The plateau measured at the pool level, not just through per-run
  // stats: between warm runs the interpreter's live cell count must
  // return to exactly the same floor (the memoized epoch-0 globals).
  Session S;
  auto Comp = S.compile("inc :: Int -> Int ;"
                        "inc n = case n of { I# x -> I# (x +# 1#) } ;"
                        "v = inc (inc (I# 40#))");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  Executor Ex(Comp);
  ASSERT_TRUE(Ex.run("v", Backend::TreeInterp).ok());
  const size_t Floor = Ex.interp().liveCells();
  const size_t Iters = soakIters();
  for (size_t I = 0; I != Iters; ++I) {
    RunResult R = Ex.run("v", Backend::TreeInterp);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_EQ(R.IntValue.value_or(-1), 42);
    ASSERT_EQ(Ex.interp().liveCells(), Floor)
        << "live cells grew by iteration " << I;
  }
}

TEST(SoakTest, AllBackendsReportNonzeroPeaksOnAllocatingPrograms) {
  // The acceptance bar for the stats plumbing: an allocating program
  // must surface a nonzero peak on every backend (BoxedRoundTrip
  // allocates I# boxes everywhere).
  Session S;
  auto Comp = S.compile("inc :: Int -> Int ;"
                        "inc n = case n of { I# x -> I# (x +# 1#) } ;"
                        "v = inc (inc (I# 40#))");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  Executor Ex(Comp);
  for (Backend B : AllBackends) {
    SCOPED_TRACE(backendName(B));
    RunResult R = Ex.run("v", B);
    ASSERT_TRUE(R.ok()) << R.Error;
    EXPECT_GT(R.peakHeapCells(), 0u);
    EXPECT_GT(R.peakHeapBytes(), 0u);
  }
}

TEST(SoakTest, MachineRunsRecycleTheExecutorArena) {
  // Repeated machine runs through one Executor replay from a reset run
  // context: the per-run arena peak is flat, and a long loop cannot
  // accumulate substitution garbage. Use the heaviest loopy corpus
  // entry shape to churn real substitution traffic.
  Session S;
  auto Comp = S.compile("sumToH :: Int# -> Int# -> Int# ;"
                        "sumToH acc n = case n of {"
                        "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                        "} ;"
                        "v = sumToH 0# 200#");
  ASSERT_TRUE(Comp->ok()) << Comp->diagText();
  Executor Ex(Comp);
  RunResult Base = Ex.run("v", Backend::AbstractMachine);
  ASSERT_TRUE(Base.ok()) << Base.Error;
  EXPECT_GT(Base.peakHeapBytes(), 0u);
  const size_t Iters = soakIters();
  for (size_t I = 0; I != Iters; ++I) {
    RunResult R = Ex.run("v", Backend::AbstractMachine);
    ASSERT_TRUE(R.ok()) << R.Error;
    ASSERT_EQ(R.peakHeapBytes(), Base.peakHeapBytes())
        << "arena peak grew by iteration " << I;
    ASSERT_EQ(R.IntValue.value_or(-1), 20100);
  }
}

} // namespace
