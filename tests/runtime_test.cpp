//===- runtime_test.cpp - Instrumented evaluator + cost model (E1/E3) -----===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The interpreter's semantics (laziness, strictness, recursion, sharing,
// erasure) and the *cost-model* claims of Sections 2.1 and 2.3: the boxed
// loop allocates per iteration, the unboxed loop allocates nothing;
// unboxed tuples return through registers with zero heap traffic.
//
//===----------------------------------------------------------------------===//

#include "core/LevityCheck.h"
#include "runtime/Interp.h"
#include "runtime/Samples.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::core;
using namespace levity::runtime;

namespace {

class InterpTest : public ::testing::Test {
protected:
  CoreContext C;
  Interp I{C};

  int64_t evalIntHash(const Expr *E) {
    InterpResult R = I.eval(E);
    EXPECT_EQ(R.Status, InterpStatus::Value) << R.Message;
    std::optional<int64_t> V = Interp::asIntHash(R.V);
    EXPECT_TRUE(V.has_value()) << I.show(R.V);
    return V.value_or(-999);
  }
};

TEST_F(InterpTest, LiteralsAndPrims) {
  EXPECT_EQ(evalIntHash(C.litInt(42)), 42);
  EXPECT_EQ(evalIntHash(C.primOp(PrimOp::AddI,
                                 {C.litInt(40), C.litInt(2)})),
            42);
  EXPECT_EQ(evalIntHash(C.primOp(PrimOp::MulI,
                                 {C.litInt(6), C.litInt(7)})),
            42);
}

TEST_F(InterpTest, DivideByZeroIsRuntimeError) {
  InterpResult R =
      I.eval(C.primOp(PrimOp::QuotI, {C.litInt(1), C.litInt(0)}));
  EXPECT_EQ(R.Status, InterpStatus::RuntimeError);
}

TEST_F(InterpTest, StrictApplicationEvaluatesNow) {
  // (\(x :: Int#) -> 1#) applied to error must diverge.
  Symbol X = C.sym("x");
  const Expr *Fn = C.lam(X, C.intHashTy(), C.litInt(1));
  const Expr *Bottom =
      C.errorExpr(C.intHashTy(), C.intRep(), C.litString(C.sym("boom")));
  InterpResult R = I.eval(C.app(Fn, Bottom, /*StrictArg=*/true));
  EXPECT_EQ(R.Status, InterpStatus::Bottom);
  EXPECT_EQ(R.Message, "boom");
}

TEST_F(InterpTest, LazyApplicationDefersWork) {
  // (\(x :: Int) -> 1#) applied to error terminates: x is never forced.
  Symbol X = C.sym("x");
  const Expr *Fn = C.lam(X, C.intTy(), C.litInt(1));
  const Expr *Bottom =
      C.errorExpr(C.intTy(), C.liftedRep(), C.litString(C.sym("boom")));
  InterpResult R = I.eval(C.app(Fn, Bottom, /*StrictArg=*/false));
  EXPECT_EQ(R.Status, InterpStatus::Value);
  EXPECT_EQ(R.Stats.ThunkAllocs, 1u);
  EXPECT_EQ(R.Stats.ThunkForces, 0u);
}

TEST_F(InterpTest, ThunkSharingForcesOnce) {
  // let x = <expensive> in x + x forces the thunk once.
  Symbol X = C.sym("x");
  const Expr *Expensive =
      C.primOp(PrimOp::AddI, {C.litInt(20), C.litInt(1)});
  // x :: Int (boxed) so the let is lazy; unbox twice and add.
  const Expr *Boxed = C.conApp(C.iHashCon(), {}, {&Expensive, 1});
  Symbol A = C.sym("a"), B = C.sym("b");
  Alt AltA;
  AltA.Kind = Alt::AltKind::ConPat;
  AltA.Con = C.iHashCon();
  AltA.Binders = C.arena().copyArray({A});
  Alt AltB = AltA;
  AltB.Binders = C.arena().copyArray({B});
  AltB.Rhs = C.primOp(PrimOp::AddI, {C.var(A), C.var(B)});
  AltA.Rhs = C.caseOf(C.var(X), C.intHashTy(), {&AltB, 1});
  const Expr *Body = C.caseOf(C.var(X), C.intHashTy(), {&AltA, 1});
  const Expr *E = C.let(X, C.intTy(), Boxed, Body, /*Strict=*/false);
  InterpResult R = I.eval(E);
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(Interp::asIntHash(R.V).value_or(-1), 42);
  EXPECT_EQ(R.Stats.ThunkForces, 1u) << "thunk must be shared";
}

TEST_F(InterpTest, InfiniteLoopDetectedAsBlackHole) {
  // letrec x = x in x — forcing a black hole is <<loop>>.
  Symbol X = C.sym("x");
  RecBinding B{X, C.intTy(), C.var(X)};
  const Expr *E = C.letRec({&B, 1}, C.var(X));
  InterpResult R = I.eval(E);
  EXPECT_EQ(R.Status, InterpStatus::RuntimeError);
  EXPECT_EQ(R.Message, "<<loop>>");
}

TEST_F(InterpTest, TypeApplicationErased) {
  // (/\(a::Type) -> \(x::a) -> x) @Int applied to boxed 5.
  Symbol A = C.sym("a"), X = C.sym("x");
  const Type *AT = C.varTy(A, C.typeKind());
  const Expr *PolyId = C.tyLam(A, C.typeKind(), C.lam(X, AT, C.var(X)));
  const Expr *Five = C.litInt(5);
  const Expr *Boxed = C.conApp(C.iHashCon(), {}, {&Five, 1});
  const Expr *E = C.app(C.tyApp(PolyId, C.intTy()), Boxed, false);
  InterpResult R = I.eval(E);
  ASSERT_EQ(R.Status, InterpStatus::Value);
  EXPECT_EQ(I.asBoxedInt(R.V).value_or(-1), 5);
}

//===--------------------------------------------------------------------===//
// The sample programs (sumTo and friends)
//===--------------------------------------------------------------------===//

class SamplesTest : public ::testing::Test {
protected:
  CoreContext C;
  Interp I{C};

  void SetUp() override { I.loadProgram(buildSampleProgram(C)); }
};

TEST_F(SamplesTest, SumToBoxedComputes) {
  InterpResult R = I.eval(callSumToBoxed(C, 100));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(I.asBoxedInt(R.V).value_or(-1), 5050);
}

TEST_F(SamplesTest, SumToUnboxedComputes) {
  InterpResult R = I.eval(callSumToUnboxed(C, 100));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(Interp::asIntHash(R.V).value_or(-1), 5050);
}

TEST_F(SamplesTest, SumToDoubleComputes) {
  InterpResult R = I.eval(callSumToDouble(C, 100.0));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_DOUBLE_EQ(Interp::asDoubleHash(R.V).value_or(-1), 5050.0);
}

// Section 2.1's claim, as cost-model facts: the boxed loop allocates
// thunks and boxes per iteration; the unboxed loop allocates *nothing*.
TEST_F(SamplesTest, BoxedLoopAllocatesPerIteration) {
  const int64_t N = 1000;
  InterpResult R = I.eval(callSumToBoxed(C, N));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  // Two lazy arguments per iteration → ≥ 2N thunks; plusInt/minusInt box
  // their results → ≥ 2N boxes.
  EXPECT_GE(R.Stats.ThunkAllocs, uint64_t(2 * N));
  EXPECT_GE(R.Stats.BoxAllocs, uint64_t(2 * N));
}

TEST_F(SamplesTest, UnboxedLoopAllocatesNothing) {
  const int64_t N = 1000;
  InterpResult R = I.eval(callSumToUnboxed(C, N));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(R.Stats.ThunkAllocs, 0u);
  EXPECT_EQ(R.Stats.BoxAllocs, 0u);
  // Only the two top-level closures for sumTo# itself.
  EXPECT_LE(R.Stats.ClosureAllocs, uint64_t(2 * N + 2));
}

TEST_F(SamplesTest, UnboxedLoopRunsDeep) {
  // Tail recursion must run in constant C++ stack.
  InterpResult R = I.eval(callSumToUnboxed(C, 200000));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(Interp::asIntHash(R.V).value_or(-1),
            int64_t(200000) * 200001 / 2);
}

// Section 2.3: divMod via unboxed tuple returns two values with zero
// heap allocation; the boxed version allocates a pair and two boxes.
TEST_F(SamplesTest, DivModUnboxedIsAllocationFree) {
  InterpResult R = I.eval(callDivModUnboxed(C, 17, 5));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(Interp::asIntHash(R.V).value_or(-1), 3002);
  EXPECT_EQ(R.Stats.heapAllocations() - R.Stats.ClosureAllocs, 0u);
  EXPECT_GE(R.Stats.TupleMoves, 1u);
}

TEST_F(SamplesTest, DivModBoxedAllocates) {
  InterpResult R = I.eval(callDivModBoxed(C, 17, 5));
  ASSERT_EQ(R.Status, InterpStatus::Value) << R.Message;
  EXPECT_EQ(Interp::asIntHash(R.V).value_or(-1), 3002);
  // One pair + two result boxes + two argument boxes at least.
  EXPECT_GE(R.Stats.BoxAllocs, 3u);
}

// The samples typecheck under Core Lint and pass the levity checker —
// the pipeline invariant every elaborated program must satisfy.
TEST_F(SamplesTest, SamplesLintAndLevityCheck) {
  CoreProgram P = buildSampleProgram(C);
  CoreChecker Checker(C);
  CoreEnv Env;
  for (const TopBinding &B : P.Bindings)
    Env.addGlobal(B.Name, B.Ty);
  DiagnosticEngine Diags;
  LevityChecker LC(C, Diags);
  for (const TopBinding &B : P.Bindings) {
    Result<const Type *> T = Checker.typeOf(Env, B.Rhs);
    ASSERT_TRUE(T.ok()) << std::string(B.Name.str()) << ": " << T.error();
    EXPECT_TRUE(typeEqual(C.zonkType(*T), C.zonkType(B.Ty)))
        << std::string(B.Name.str()) << " : " << (*T)->str() << " vs "
        << B.Ty->str();
    EXPECT_TRUE(LC.check(Env, B.Rhs))
        << std::string(B.Name.str()) << ": " << Diags.str();
  }
}

// Fuel exhaustion is reported, not hung.
TEST_F(SamplesTest, FuelExhaustion) {
  InterpResult R = I.eval(callSumToBoxed(C, 1000000), /*MaxSteps=*/1000);
  EXPECT_EQ(R.Status, InterpStatus::OutOfFuel);
}

} // namespace
