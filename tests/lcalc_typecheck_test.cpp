//===- lcalc_typecheck_test.cpp - Figure 3 rule-by-rule tests -------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Every rule of Figure 3 gets positive and negative coverage, including the
// highlighted concrete-kind premises of E_APP and E_LAM that implement the
// restrictions of Section 5.1 (experiment E10).
//
//===----------------------------------------------------------------------===//

#include "lcalc/TypeCheck.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::lcalc;

namespace {

class LTypeCheckTest : public ::testing::Test {
protected:
  LContext C;
  TypeChecker TC{C};

  Symbol s(std::string_view N) { return C.sym(N); }

  Result<const Type *> check(const Expr *E) { return TC.typeOfClosed(E); }

  void expectType(const Expr *E, const Type *T) {
    Result<const Type *> R = check(E);
    ASSERT_TRUE(R.ok()) << "unexpected type error: " << R.error()
                        << "\n  in: " << E->str();
    EXPECT_TRUE(typeEqual(*R, T))
        << "expected " << T->str() << ", got " << (*R)->str();
  }

  void expectIllTyped(const Expr *E, std::string_view Fragment = "") {
    Result<const Type *> R = check(E);
    ASSERT_FALSE(R.ok()) << "expected rejection of " << E->str()
                         << " but got type " << (*R)->str();
    if (!Fragment.empty()) {
      EXPECT_NE(R.error().find(Fragment), std::string::npos)
          << "error was: " << R.error();
    }
  }
};

//===--------------------------------------------------------------------===//
// Kind judgments (T_* and K_*)
//===--------------------------------------------------------------------===//

TEST_F(LTypeCheckTest, KindOfBaseTypes) {
  TypeEnv Env;
  EXPECT_EQ(*TC.kindOf(Env, C.intTy()), LKind::typePtr());    // T_INT
  EXPECT_EQ(*TC.kindOf(Env, C.intHashTy()), LKind::typeInt()); // T_INTH
}

// T_ARROW: Int# -> Int# is well-kinded at TYPE P even though both sides
// are TYPE I. This is the fix for the Section 3.2 embarrassment.
TEST_F(LTypeCheckTest, ArrowOverUnboxedTypesIsWellKinded) {
  TypeEnv Env;
  const Type *T = C.arrowTy(C.intHashTy(), C.intHashTy());
  EXPECT_EQ(*TC.kindOf(Env, T), LKind::typePtr());
}

TEST_F(LTypeCheckTest, KindOfTypeVariableComesFromContext) {
  TypeEnv Env;
  Env.pushTypeVar(s("a"), LKind::typeInt());
  EXPECT_EQ(*TC.kindOf(Env, C.varTy(s("a"))), LKind::typeInt()); // T_VAR
  EXPECT_FALSE(TC.kindOf(Env, C.varTy(s("zzz"))).ok());
}

// T_ALLTY: the kind of ∀α:κ. τ is the kind of τ (type erasure).
TEST_F(LTypeCheckTest, ForAllKindIsBodyKind) {
  TypeEnv Env;
  const Type *T = C.forAllTy(s("a"), LKind::typePtr(), C.intHashTy());
  EXPECT_EQ(*TC.kindOf(Env, T), LKind::typeInt());
}

// T_ALLREP positive: ∀r. ∀a:TYPE r. Int -> a has kind TYPE P (the body is
// an arrow).
TEST_F(LTypeCheckTest, ForAllRepWellKinded) {
  TypeEnv Env;
  EXPECT_EQ(*TC.kindOf(Env, C.errorType()), LKind::typePtr());
}

// T_ALLREP negative: ∀r. ∀a:TYPE r. a would have kind TYPE r, mentioning
// the bound variable — rejected.
TEST_F(LTypeCheckTest, ForAllRepEscapingKindRejected) {
  TypeEnv Env;
  const Type *T = C.forAllRepTy(
      s("r"), C.forAllTy(s("a"), LKind::typeVar(s("r")), C.varTy(s("a"))));
  Result<LKind> K = TC.kindOf(Env, T);
  ASSERT_FALSE(K.ok());
  EXPECT_NE(K.error().find("T_ALLREP"), std::string::npos) << K.error();
}

// K_VAR: TYPE r is only a kind when r is in scope.
TEST_F(LTypeCheckTest, KindValidity) {
  TypeEnv Env;
  EXPECT_TRUE(TC.kindValid(Env, LKind::typePtr()));
  EXPECT_TRUE(TC.kindValid(Env, LKind::typeInt()));
  EXPECT_FALSE(TC.kindValid(Env, LKind::typeVar(s("r"))));
  Env.pushRepVar(s("r"));
  EXPECT_TRUE(TC.kindValid(Env, LKind::typeVar(s("r"))));
}

//===--------------------------------------------------------------------===//
// Term judgments (E_*)
//===--------------------------------------------------------------------===//

TEST_F(LTypeCheckTest, IntLitHasTypeIntHash) {
  expectType(C.intLit(5), C.intHashTy()); // E_INTLIT
}

TEST_F(LTypeCheckTest, ConBoxes) {
  expectType(C.con(C.intLit(5)), C.intTy()); // E_CON
  expectIllTyped(C.con(C.con(C.intLit(5))), "I# expects Int#");
}

TEST_F(LTypeCheckTest, VarLookup) {
  TypeEnv Env;
  Env.pushTerm(s("x"), C.intTy());
  EXPECT_TRUE(typeEqual(*TC.typeOf(Env, C.var(s("x"))), C.intTy()));
  expectIllTyped(C.var(s("nope")), "not in scope");
}

TEST_F(LTypeCheckTest, IdentityFunctions) {
  // λx:Int. x : Int -> Int, λx:Int#. x : Int# -> Int# (E_LAM both reps).
  expectType(C.lam(s("x"), C.intTy(), C.var(s("x"))),
             C.arrowTy(C.intTy(), C.intTy()));
  expectType(C.lam(s("x"), C.intHashTy(), C.var(s("x"))),
             C.arrowTy(C.intHashTy(), C.intHashTy()));
}

TEST_F(LTypeCheckTest, ApplicationLazyAndStrict) {
  const Expr *IdP = C.lam(s("x"), C.intTy(), C.var(s("x")));
  const Expr *IdI = C.lam(s("y"), C.intHashTy(), C.var(s("y")));
  expectType(C.app(IdP, C.con(C.intLit(3))), C.intTy());
  expectType(C.app(IdI, C.intLit(3)), C.intHashTy());
  expectIllTyped(C.app(IdP, C.intLit(3)), "argument type mismatch");
  expectIllTyped(C.app(C.intLit(3), C.intLit(4)), "non-function");
}

TEST_F(LTypeCheckTest, CaseUnboxes) {
  // case I#[3] of I#[x] -> x : Int# (E_CASE).
  expectType(C.caseOf(C.con(C.intLit(3)), s("x"), C.var(s("x"))),
             C.intHashTy());
  expectIllTyped(C.caseOf(C.intLit(3), s("x"), C.var(s("x"))),
                 "scrutinee must have type Int");
}

TEST_F(LTypeCheckTest, TypeAbstractionAndApplication) {
  // Λa:TYPE P. λx:a. x : ∀a:TYPE P. a -> a; instantiating at Int works,
  // at Int# fails the kind check (the Instantiation Principle, Section 3.1).
  const Expr *BId = C.tyLam(s("a"), LKind::typePtr(),
                            C.lam(s("x"), C.varTy(s("a")), C.var(s("x"))));
  const Type *BIdTy =
      C.forAllTy(s("a"), LKind::typePtr(),
                 C.arrowTy(C.varTy(s("a")), C.varTy(s("a"))));
  expectType(BId, BIdTy);
  expectType(C.tyApp(BId, C.intTy()), C.arrowTy(C.intTy(), C.intTy()));
  expectIllTyped(C.tyApp(BId, C.intHashTy()), "kind mismatch");
}

TEST_F(LTypeCheckTest, ErrorHasMagicalType) {
  expectType(C.error(), C.errorType()); // E_ERROR
}

// error can be instantiated at an unboxed type: this is the Section 3.3
// motivation, now principled. error @@I @Int# I#[0] : Int#.
TEST_F(LTypeCheckTest, ErrorAtUnboxedType) {
  const Expr *E = C.app(
      C.tyApp(C.repApp(C.error(), RuntimeRep::integer()), C.intHashTy()),
      C.con(C.intLit(0)));
  expectType(E, C.intHashTy());
}

// myError (Section 5.2): Λr. Λa:TYPE r. λs:Int. error @@r @a s — the
// levity-polymorphic wrapper typechecks because its *binder* s is lifted.
TEST_F(LTypeCheckTest, MyErrorGeneralizes) {
  Symbol R = s("r"), A = s("a"), Str = s("s");
  const Expr *Body =
      C.app(C.tyApp(C.repApp(C.error(), RuntimeRep::var(R)), C.varTy(A)),
            C.var(Str));
  const Expr *MyError = C.repLam(
      R, C.tyLam(A, LKind::typeVar(R), C.lam(Str, C.intTy(), Body)));
  const Type *Expected = C.errorType();
  expectType(MyError, Expected);
}

//===--------------------------------------------------------------------===//
// The Section 5.1 restrictions (experiment E10)
//===--------------------------------------------------------------------===//

// Restriction 1: levity-polymorphic binders are rejected. This is the
// un-compilable bTwice/f-x-equals-x type from Sections 5 and 5.2:
// Λr. Λa:TYPE r. λx:a. x is *rejected* by E_LAM.
TEST_F(LTypeCheckTest, LevityPolymorphicBinderRejected) {
  const Expr *E = C.repLam(
      s("r"),
      C.tyLam(s("a"), LKind::typeVar(s("r")),
              C.lam(s("x"), C.varTy(s("a")), C.var(s("x")))));
  expectIllTyped(E, "levity-polymorphic binder");
}

// Restriction 2: levity-polymorphic function arguments are rejected. Here
// f : a -> Int with a : TYPE r, applied to a levity-polymorphic argument.
TEST_F(LTypeCheckTest, LevityPolymorphicArgumentRejected) {
  // Λr. Λa:TYPE r. λf:(a -> a) -> Int ... cannot even mention a lam binder
  // of type a, so construct the application through error:
  //   Λr. Λa:TYPE r. (error @@P @((a -> a) -> Int) I#[0])
  //                    (error @@r @(a -> a)? ...)  -- ill-formed anyway
  // Simpler: apply id-at-(a->a)... The direct route: the argument type a
  // has kind TYPE r, so *any* application at it must fail.
  Symbol R = s("r"), A = s("a");
  const Type *ATy = C.varTy(A);
  // fn : a -> Int via error; arg : a via error; fn arg violates E_APP.
  const Expr *Fn =
      C.app(C.tyApp(C.repApp(C.error(), RuntimeRep::pointer()),
                    C.arrowTy(ATy, C.intTy())),
            C.con(C.intLit(0)));
  const Expr *Arg = C.app(
      C.tyApp(C.repApp(C.error(), RuntimeRep::var(R)), ATy),
      C.con(C.intLit(0)));
  const Expr *E =
      C.repLam(R, C.tyLam(A, LKind::typeVar(R), C.app(Fn, Arg)));
  expectIllTyped(E, "levity-polymorphic argument");
}

// A *concrete* unlifted binder is fine: the restriction is only about
// rep-variable kinds, not about unliftedness (Section 5.1's note that
// storing polymorphic-but-not-levity-polymorphic values is fine).
TEST_F(LTypeCheckTest, ConcreteUnboxedBinderAccepted) {
  expectType(C.lam(s("x"), C.intHashTy(), C.var(s("x"))),
             C.arrowTy(C.intHashTy(), C.intHashTy()));
}

// Polymorphism at kind TYPE P is unrestricted: bTwice's legal type.
TEST_F(LTypeCheckTest, BTwiceAtLiftedKindAccepted) {
  // Λa:TYPE P. λx:a. λf:a->a. f (f x)  (Bool dropped; L has no Bool).
  Symbol A = s("a"), X = s("x"), F = s("f");
  const Type *ATy = C.varTy(A);
  const Expr *E = C.tyLam(
      A, LKind::typePtr(),
      C.lam(X, ATy,
            C.lam(F, C.arrowTy(ATy, ATy),
                  C.app(C.var(F), C.app(C.var(F), C.var(X))))));
  const Type *Ty = C.forAllTy(
      A, LKind::typePtr(),
      C.arrowTy(ATy, C.arrowTy(C.arrowTy(ATy, ATy), ATy)));
  expectType(E, Ty);
}

// The fully levity-polymorphic bTwice of Section 5 is rejected.
TEST_F(LTypeCheckTest, BTwiceAtRepPolyKindRejected) {
  Symbol R = s("r"), A = s("a"), X = s("x"), F = s("f");
  const Type *ATy = C.varTy(A);
  const Expr *E = C.repLam(
      R, C.tyLam(A, LKind::typeVar(R),
                 C.lam(X, ATy,
                       C.lam(F, C.arrowTy(ATy, ATy),
                             C.app(C.var(F), C.app(C.var(F), C.var(X)))))));
  expectIllTyped(E, "levity-polymorphic binder");
}

// Rep application picks the branch: (Λr. Λa:TYPE r. …) @@I then @Int# is
// accepted — the instantiated type is concrete.
TEST_F(LTypeCheckTest, RepApplicationInstantiates) {
  Symbol R = s("r"), A = s("a"), Str = s("s");
  const Expr *Body =
      C.app(C.tyApp(C.repApp(C.error(), RuntimeRep::var(R)), C.varTy(A)),
            C.var(Str));
  const Expr *MyError = C.repLam(
      R, C.tyLam(A, LKind::typeVar(R), C.lam(Str, C.intTy(), Body)));
  const Expr *Inst =
      C.tyApp(C.repApp(MyError, RuntimeRep::integer()), C.intHashTy());
  expectType(Inst, C.arrowTy(C.intTy(), C.intHashTy()));
}

TEST_F(LTypeCheckTest, RepApplicationOutOfScopeRejected) {
  const Expr *E = C.repApp(C.error(), RuntimeRep::var(s("nope")));
  expectIllTyped(E, "rep variable not in scope");
}

TEST_F(LTypeCheckTest, TyAppOnNonForallRejected) {
  expectIllTyped(C.tyApp(C.intLit(3), C.intTy()), "non-polymorphic");
}

TEST_F(LTypeCheckTest, RepAppOnNonForallRejected) {
  expectIllTyped(C.repApp(C.intLit(3), RuntimeRep::pointer()),
                 "rep-applying");
}

//===--------------------------------------------------------------------===//
// Algebraic data (E_CON, E_CASE) — PR 5
//===--------------------------------------------------------------------===//

class LDataTest : public LTypeCheckTest {
protected:
  void SetUp() override {
    // data T = A | B Int# | C Int Double#.
    Decl = C.declareData(s("T"));
    ASSERT_TRUE(C.addDataCon(Decl, s("A"), {}));
    const Type *BF[] = {C.intHashTy()};
    ASSERT_TRUE(C.addDataCon(Decl, s("B"), BF));
    const Type *CF[] = {C.intTy(), C.doubleHashTy()};
    ASSERT_TRUE(C.addDataCon(Decl, s("C"), CF));
  }

  LAlt conAlt(unsigned Tag, std::span<const Symbol> Binders,
              const Expr *Rhs) {
    LAlt A;
    A.Pat = LAlt::PatKind::Con;
    A.Tag = Tag;
    A.Binders = Binders;
    A.Rhs = Rhs;
    return A;
  }

  LDataDecl *Decl = nullptr;
};

TEST_F(LDataTest, ConstructorsTypeAtTheDeclaredDataType) {
  expectType(C.conData(Decl, 0, {}), Decl->type()); // E_CON, nullary
  const Expr *BArgs[] = {C.intLit(3)};
  expectType(C.conData(Decl, 1, BArgs), Decl->type());
  const Expr *CArgs[] = {C.con(C.intLit(1)), C.doubleLit(2.5)};
  expectType(C.conData(Decl, 2, CArgs), Decl->type());
}

TEST_F(LDataTest, ConstructorFieldTypeMismatchRejected) {
  const Expr *Bad[] = {C.doubleLit(1.0)};
  expectIllTyped(C.conData(Decl, 1, Bad), "B expects Int#");
}

TEST_F(LDataTest, ExhaustiveCaseTypes) {
  Symbol X = s("x"), Aa = s("a"), Bb = s("b");
  Symbol BBind[] = {X};
  Symbol CBind[] = {Aa, Bb};
  LAlt Alts[] = {
      conAlt(0, {}, C.intLit(0)),
      conAlt(1, BBind, C.var(X)),
      conAlt(2, CBind, C.caseOf(C.var(Aa), s("n"), C.var(s("n")))),
  };
  const Expr *E = C.caseData(C.conData(Decl, 0, {}), Decl, Alts, nullptr);
  expectType(E, C.intHashTy());
}

TEST_F(LDataTest, NonExhaustiveCaseWithoutDefaultRejected) {
  LAlt Alts[] = {conAlt(0, {}, C.intLit(0))};
  expectIllTyped(
      C.caseData(C.conData(Decl, 0, {}), Decl, Alts, nullptr),
      "non-exhaustive case");
  // The same case with a default is fine.
  expectType(C.caseData(C.conData(Decl, 0, {}), Decl, Alts, C.intLit(9)),
             C.intHashTy());
}

TEST_F(LDataTest, CasePatternArityMismatchRejected) {
  Symbol X = s("x");
  Symbol Binders[] = {X};
  LAlt Alts[] = {conAlt(0, Binders, C.intLit(0))}; // A is nullary
  expectIllTyped(
      C.caseData(C.conData(Decl, 0, {}), Decl, Alts, C.intLit(1)),
      "arity mismatch");
}

TEST_F(LDataTest, CaseAlternativesMustAgree) {
  LAlt Alts[] = {conAlt(0, {}, C.intLit(0)),
                 conAlt(1, {}, C.intLit(0))}; // wrong arity caught later
  Alts[1] = conAlt(0, {}, C.doubleLit(1.0));
  expectIllTyped(
      C.caseData(C.conData(Decl, 0, {}), Decl, Alts, C.intLit(1)),
      "alternatives disagree");
}

TEST_F(LDataTest, LiteralCaseRequiresDefault) {
  LAlt A;
  A.Pat = LAlt::PatKind::Int;
  A.IntVal = 0;
  A.Rhs = C.intLit(1);
  expectIllTyped(C.caseData(C.intLit(0), nullptr, {&A, 1}, nullptr),
                 "literal case without a default");
  expectType(C.caseData(C.intLit(0), nullptr, {&A, 1}, C.intLit(2)),
             C.intHashTy());
}

TEST_F(LDataTest, DefaultOnlyCaseForcesAnyConcreteScrutinee) {
  expectType(C.caseData(C.conData(Decl, 0, {}), nullptr, {}, C.intLit(1)),
             C.intHashTy());
  expectType(C.caseData(C.doubleLit(1.5), nullptr, {}, C.intLit(1)),
             C.intHashTy());
}

TEST_F(LDataTest, DataTypeHasKindTypePtr) {
  TypeEnv Env;
  EXPECT_EQ(*TC.kindOf(Env, Decl->type()), LKind::typePtr()); // T_DATA
}

} // namespace
