//===- anf_compile_test.cpp - Figure 7 compilation rule tests -------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Each compilation rule of Figure 7 (shape of the emitted ANF), erasure of
// type/rep abstraction, end-to-end execution of compiled programs, and the
// *partiality* of compilation on levity-polymorphic inputs (experiment E6).
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"
#include "mcalc/Machine.h"

#include <gtest/gtest.h>

using namespace levity;
using lcalc::LContext;
using lcalc::LKind;
using lcalc::RuntimeRep;

namespace {

class CompileTest : public ::testing::Test {
protected:
  LContext L;
  mcalc::MContext MC;
  anf::Compiler Comp{L, MC};
  mcalc::Machine M{MC};

  Symbol s(std::string_view N) { return L.sym(N); }

  const mcalc::Term *compileOk(const lcalc::Expr *E) {
    Result<const mcalc::Term *> R = Comp.compileClosed(E);
    EXPECT_TRUE(R.ok()) << "compilation failed: "
                        << (R.ok() ? "" : R.error()) << "\n  on: "
                        << E->str();
    return R.ok() ? *R : nullptr;
  }

  int64_t runToConValue(const mcalc::Term *T) {
    mcalc::MachineResult R = M.run(T);
    EXPECT_EQ(R.Status, mcalc::MachineOutcome::Value) << R.StuckReason;
    const auto *C = mcalc::dyn_cast<mcalc::ConLitTerm>(R.Value);
    EXPECT_NE(C, nullptr);
    return C ? C->value() : -1;
  }
};

//===--------------------------------------------------------------------===//
// Rule shapes
//===--------------------------------------------------------------------===//

TEST_F(CompileTest, IntLitAndError) {
  EXPECT_EQ(compileOk(L.intLit(7))->str(), "7"); // C_INTLIT
  EXPECT_EQ(compileOk(L.error())->str(), "error"); // C_ERROR
}

// C_CON: a literal payload passes straight through as an atom
// (I#[5] ⇝ I#[5]); a computed payload still binds strictly
// (I#[2 +# 3] ⇝ let! i = … in I#[i]).
TEST_F(CompileTest, ConCompilesToStrictLet) {
  EXPECT_TRUE(
      mcalc::isa<mcalc::ConLitTerm>(compileOk(L.con(L.intLit(5)))));

  const mcalc::Term *T = compileOk(
      L.con(L.prim(lcalc::LPrim::Add, L.intLit(2), L.intLit(3))));
  const auto *LB = mcalc::dyn_cast<mcalc::LetBangTerm>(T);
  ASSERT_NE(LB, nullptr) << T->str();
  EXPECT_TRUE(LB->binder().isInt());
  EXPECT_TRUE(mcalc::isa<mcalc::ConVarTerm>(LB->body()));
}

// C_APPLAZY: a lifted-argument application becomes a lazy let.
TEST_F(CompileTest, LazyApplicationCompilesToLet) {
  const lcalc::Expr *E = L.app(L.lam(s("x"), L.intTy(), L.var(s("x"))),
                               L.con(L.intLit(3)));
  const mcalc::Term *T = compileOk(E);
  const auto *Let = mcalc::dyn_cast<mcalc::LetTerm>(T);
  ASSERT_NE(Let, nullptr) << T->str();
  EXPECT_TRUE(Let->binder().isPtr());
  const auto *App = mcalc::dyn_cast<mcalc::AppVarTerm>(Let->body());
  ASSERT_NE(App, nullptr);
  EXPECT_EQ(App->arg(), Let->binder());
}

// C_APPINT: an unboxed-argument application becomes a strict let!.
TEST_F(CompileTest, StrictApplicationCompilesToLetBang) {
  const lcalc::Expr *E =
      L.app(L.lam(s("x"), L.intHashTy(), L.var(s("x"))), L.intLit(3));
  const mcalc::Term *T = compileOk(E);
  const auto *LB = mcalc::dyn_cast<mcalc::LetBangTerm>(T);
  ASSERT_NE(LB, nullptr) << T->str();
  EXPECT_TRUE(LB->binder().isInt());
}

// C_LAMPTR / C_LAMINT: binder sorts follow kinds.
TEST_F(CompileTest, LambdaParameterSorts) {
  const mcalc::Term *TP =
      compileOk(L.lam(s("x"), L.intTy(), L.var(s("x"))));
  EXPECT_TRUE(mcalc::cast<mcalc::LamTerm>(TP)->param().isPtr());

  const mcalc::Term *TI =
      compileOk(L.lam(s("x"), L.intHashTy(), L.var(s("x"))));
  EXPECT_TRUE(mcalc::cast<mcalc::LamTerm>(TI)->param().isInt());
}

// C_TLAM/C_TAPP/C_RLAM/C_RAPP: type and rep structure erases completely.
TEST_F(CompileTest, TypeAndRepStructureErases) {
  const lcalc::Expr *E = L.tyApp(
      L.tyLam(s("a"), LKind::typePtr(), L.intLit(5)), L.intTy());
  EXPECT_EQ(compileOk(E)->str(), "5");

  const lcalc::Expr *ER = L.repApp(
      L.repLam(s("r"), L.intLit(6)), RuntimeRep::integer());
  EXPECT_EQ(compileOk(ER)->str(), "6");
}

// C_CASE: every case compiles to the tag-dispatch switch; the I# alt's
// binder is an integer variable.
TEST_F(CompileTest, CaseCompiles) {
  const lcalc::Expr *E =
      L.caseOf(L.con(L.intLit(3)), s("x"), L.var(s("x")));
  const mcalc::Term *T = compileOk(E);
  const auto *Sw = mcalc::dyn_cast<mcalc::SwitchTerm>(T);
  ASSERT_NE(Sw, nullptr);
  ASSERT_EQ(Sw->alts().size(), 1u);
  EXPECT_EQ(Sw->alts()[0].Pat, mcalc::MAlt::PatKind::Con);
  ASSERT_EQ(Sw->alts()[0].Binders.size(), 1u);
  EXPECT_TRUE(Sw->alts()[0].Binders[0].isInt());
  EXPECT_EQ(Sw->defaultBody(), nullptr);
}

//===--------------------------------------------------------------------===//
// Partiality: levity polymorphism cannot compile
//===--------------------------------------------------------------------===//

// The compiler (not just the typechecker) rejects a levity-polymorphic
// binder: this is the theorem's "compilation is partial" side. The term
// below is ill-typed in L, but we drive the compiler directly to show the
// failure is intrinsic, not a typechecker artifact.
TEST_F(CompileTest, LevityPolymorphicBinderUncompilable) {
  const lcalc::Expr *E = L.repLam(
      s("r"), L.tyLam(s("a"), LKind::typeVar(s("r")),
                      L.lam(s("x"), L.varTy(s("a")), L.var(s("x")))));
  Result<const mcalc::Term *> R = Comp.compileClosed(E);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.error().find("levity-polymorphic binder"), std::string::npos)
      << R.error();
}

TEST_F(CompileTest, LevityPolymorphicArgumentUncompilable) {
  // (error @P @(a→Int) I#[0]) (error @r @a I#[0]) under Λr. Λa:TYPE r.
  Symbol R = s("r"), A = s("a");
  const lcalc::Type *ATy = L.varTy(A);
  const lcalc::Expr *Fn =
      L.app(L.tyApp(L.repApp(L.error(), RuntimeRep::pointer()),
                    L.arrowTy(ATy, L.intTy())),
            L.con(L.intLit(0)));
  const lcalc::Expr *Arg =
      L.app(L.tyApp(L.repApp(L.error(), RuntimeRep::var(R)), ATy),
            L.con(L.intLit(0)));
  const lcalc::Expr *E =
      L.repLam(R, L.tyLam(A, LKind::typeVar(R), L.app(Fn, Arg)));
  Result<const mcalc::Term *> RR = Comp.compileClosed(E);
  ASSERT_FALSE(RR.ok());
  EXPECT_NE(RR.error().find("levity-polymorphic argument"),
            std::string::npos)
      << RR.error();
}

//===--------------------------------------------------------------------===//
// End-to-end: compiled programs compute the right answers
//===--------------------------------------------------------------------===//

TEST_F(CompileTest, CompiledIdentityChainRuns) {
  // (λx:Int. x) I#[9] ⇝ … ⇝ I#[9].
  const lcalc::Expr *E = L.app(L.lam(s("x"), L.intTy(), L.var(s("x"))),
                               L.con(L.intLit(9)));
  EXPECT_EQ(runToConValue(compileOk(E)), 9);
}

TEST_F(CompileTest, CompiledUnboxReboxRuns) {
  // case I#[2] of I#[a] -> case I#[3] of I#[b] -> I#[b].
  const lcalc::Expr *E = L.caseOf(
      L.con(L.intLit(2)), s("a"),
      L.caseOf(L.con(L.intLit(3)), s("b"), L.con(L.var(s("b")))));
  EXPECT_EQ(runToConValue(compileOk(E)), 3);
}

TEST_F(CompileTest, CompiledLazinessDiscardsError) {
  // (λx:Int. I#[1]) (error …) terminates: lazy let never forces the thunk.
  const lcalc::Expr *Bottom = L.app(
      L.tyApp(L.repApp(L.error(), RuntimeRep::pointer()), L.intTy()),
      L.con(L.intLit(0)));
  const lcalc::Expr *E =
      L.app(L.lam(s("x"), L.intTy(), L.con(L.intLit(1))), Bottom);
  mcalc::MachineResult R = M.run(compileOk(E));
  EXPECT_EQ(R.Status, mcalc::MachineOutcome::Value);
  EXPECT_EQ(R.Stats.ThunkEvals, 0u);
}

TEST_F(CompileTest, CompiledStrictnessForcesError) {
  const lcalc::Expr *Bottom = L.app(
      L.tyApp(L.repApp(L.error(), RuntimeRep::integer()), L.intHashTy()),
      L.con(L.intLit(0)));
  const lcalc::Expr *E =
      L.app(L.lam(s("x"), L.intHashTy(), L.intLit(1)), Bottom);
  mcalc::MachineResult R = M.run(compileOk(E));
  EXPECT_EQ(R.Status, mcalc::MachineOutcome::Bottom);
}

// The paper's headline example: one levity-polymorphic source function,
// two instantiations, both run — at *different* calling conventions.
TEST_F(CompileTest, RepPolymorphicSourceCompilesAtBothConventions) {
  // gen = Λr. Λa:TYPE r. λf:Int → a. f I#[7].
  Symbol R = s("r"), A = s("a"), F = s("f");
  const lcalc::Expr *Gen = L.repLam(
      R, L.tyLam(A, LKind::typeVar(R),
                 L.lam(F, L.arrowTy(L.intTy(), L.varTy(A)),
                       L.app(L.var(F), L.con(L.intLit(7))))));

  // Boxed instantiation: id at Int.
  const lcalc::Expr *AtP =
      L.app(L.tyApp(L.repApp(Gen, RuntimeRep::pointer()), L.intTy()),
            L.lam(s("n"), L.intTy(), L.var(s("n"))));
  EXPECT_EQ(runToConValue(compileOk(AtP)), 7);

  // Unboxed instantiation: unbox at Int#.
  const lcalc::Expr *AtI =
      L.app(L.tyApp(L.repApp(Gen, RuntimeRep::integer()), L.intHashTy()),
            L.lam(s("n"), L.intTy(),
                  L.caseOf(L.var(s("n")), s("m"), L.var(s("m")))));
  mcalc::MachineResult MR = M.run(compileOk(AtI));
  ASSERT_EQ(MR.Status, mcalc::MachineOutcome::Value) << MR.StuckReason;
  EXPECT_EQ(mcalc::cast<mcalc::LitTerm>(MR.Value)->value(), 7);
}

TEST_F(CompileTest, ShadowedVariablesCompileCorrectly) {
  // λx:Int. (λx:Int#. x) 5 — inner x must map to the integer variable.
  const lcalc::Expr *E =
      L.lam(s("x"), L.intTy(),
            L.app(L.lam(s("x"), L.intHashTy(), L.var(s("x"))),
                  L.intLit(5)));
  const mcalc::Term *T = compileOk(E);
  // Apply to a dummy boxed argument and check we get 5.
  mcalc::MVar P = MC.freshPtr();
  mcalc::MachineResult R =
      M.run(MC.let(P, MC.conLit(0), MC.appVar(T, P)));
  ASSERT_EQ(R.Status, mcalc::MachineOutcome::Value) << R.StuckReason;
  EXPECT_EQ(mcalc::cast<mcalc::LitTerm>(R.Value)->value(), 5);
}

} // namespace
