//===- lcalc_eval_test.cpp - Figure 4 rule-by-rule tests ------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The type-directed small-step semantics: lazy application at TYPE P,
// strict application at TYPE I, evaluation under Λ, case matching, error.
//
//===----------------------------------------------------------------------===//

#include "lcalc/Eval.h"
#include "lcalc/Subst.h"

#include <gtest/gtest.h>

using namespace levity;
using namespace levity::lcalc;

namespace {

class LEvalTest : public ::testing::Test {
protected:
  LContext C;
  Evaluator Ev{C};

  Symbol s(std::string_view N) { return C.sym(N); }

  StepResult step1(const Expr *E) {
    TypeEnv Env;
    return Ev.step(Env, E);
  }

  const Expr *evalToValue(const Expr *E) {
    RunResult R = Ev.runClosed(E);
    EXPECT_EQ(R.Final, StepStatus::Value)
        << "did not reach a value: " << R.Last->str();
    return R.Last;
  }
};

//===--------------------------------------------------------------------===//
// β rules, lazy vs strict (S_BETAPTR / S_BETAUNBOXED)
//===--------------------------------------------------------------------===//

// S_BETAPTR: at TYPE P the argument is substituted *unevaluated*.
TEST_F(LEvalTest, LazyBetaSubstitutesUnevaluated) {
  // (λx:Int. I#[42]) ((λy:Int. y) I#[1]) steps by S_BETAPTR directly:
  // the redex argument is not reduced first.
  const Expr *Arg =
      C.app(C.lam(s("y"), C.intTy(), C.var(s("y"))), C.con(C.intLit(1)));
  const Expr *E = C.app(C.lam(s("x"), C.intTy(), C.con(C.intLit(42))), Arg);
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_BETAPTR");
  EXPECT_EQ(R.Next->str(), "I#[42]");
}

// Laziness pays: a diverging (error) argument is discarded if unused.
TEST_F(LEvalTest, LazyApplicationDiscardsError) {
  const Expr *Bottom = C.app(
      C.tyApp(C.repApp(C.error(), RuntimeRep::pointer()), C.intTy()),
      C.con(C.intLit(0)));
  const Expr *E =
      C.app(C.lam(s("x"), C.intTy(), C.con(C.intLit(7))), Bottom);
  const Expr *V = evalToValue(E);
  EXPECT_EQ(V->str(), "I#[7]");
}

// S_APPSTRICT: at TYPE I the argument is evaluated first.
TEST_F(LEvalTest, StrictApplicationEvaluatesArgFirst) {
  const Expr *Arg =
      C.app(C.lam(s("y"), C.intHashTy(), C.var(s("y"))), C.intLit(1));
  const Expr *E = C.app(C.lam(s("x"), C.intHashTy(), C.intLit(42)), Arg);
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_APPSTRICT");
}

// ...and hence a strict application of a diverging argument diverges,
// even if the function ignores it.
TEST_F(LEvalTest, StrictApplicationForcesError) {
  const Expr *Bottom = C.app(
      C.tyApp(C.repApp(C.error(), RuntimeRep::integer()), C.intHashTy()),
      C.con(C.intLit(0)));
  const Expr *E =
      C.app(C.lam(s("x"), C.intHashTy(), C.intLit(7)), Bottom);
  RunResult R = Ev.runClosed(E);
  EXPECT_EQ(R.Final, StepStatus::Bottom);
}

// S_BETAUNBOXED: once the argument is a value, β fires.
TEST_F(LEvalTest, StrictBetaOnValue) {
  const Expr *E =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(9));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_BETAUNBOXED");
  EXPECT_EQ(R.Next->str(), "9");
}

// S_APPSTRICT2: with the argument already a value, the *function* of a
// strict application evaluates.
TEST_F(LEvalTest, StrictFunctionPosition) {
  const Expr *Fn = C.tyApp(
      C.tyLam(s("a"), LKind::typePtr(),
              C.lam(s("x"), C.intHashTy(), C.var(s("x")))),
      C.intTy());
  const Expr *E = C.app(Fn, C.intLit(3));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_APPSTRICT2");
}

// S_APPLAZY: the function of a lazy application evaluates when it is not
// yet a lambda.
TEST_F(LEvalTest, LazyFunctionPosition) {
  const Expr *Fn = C.tyApp(
      C.tyLam(s("a"), LKind::typePtr(),
              C.lam(s("x"), C.intTy(), C.var(s("x")))),
      C.intTy());
  const Expr *E = C.app(Fn, C.con(C.intLit(3)));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_APPLAZY");
}

//===--------------------------------------------------------------------===//
// Type/rep abstraction rules (S_TLAM, S_TBETA, S_RLAM, S_RBETA)
//===--------------------------------------------------------------------===//

// S_TLAM: evaluation happens under Λ to support erasure.
TEST_F(LEvalTest, EvaluatesUnderTypeLambda) {
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  const Expr *E = C.tyLam(s("a"), LKind::typePtr(), Redex);
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_TLAM");
  EXPECT_TRUE(isValue(R.Next));
}

TEST_F(LEvalTest, TypeBetaRequiresValueBody) {
  // (Λa:TYPE P. 5) Int → 5 by S_TBETA.
  const Expr *E =
      C.tyApp(C.tyLam(s("a"), LKind::typePtr(), C.intLit(5)), C.intTy());
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_TBETA");
  EXPECT_EQ(R.Next->str(), "5");
}

TEST_F(LEvalTest, TypeAppEvaluatesBodyFirst) {
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  const Expr *E =
      C.tyApp(C.tyLam(s("a"), LKind::typePtr(), Redex), C.intTy());
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_TAPP"); // steps inside, not S_TBETA
}

TEST_F(LEvalTest, RepBetaSubstitutes) {
  // (Λr. Λa:TYPE r. 5) I steps to Λa:TYPE I. 5.
  const Expr *E = C.repApp(
      C.repLam(s("r"), C.tyLam(s("a"), LKind::typeVar(s("r")),
                               C.intLit(5))),
      RuntimeRep::integer());
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_RBETA");
  EXPECT_EQ(cast<TyLamExpr>(R.Next)->varKind(), LKind::typeInt());
}

//===--------------------------------------------------------------------===//
// Constructors and case (S_CON, S_CASE, S_MATCH)
//===--------------------------------------------------------------------===//

TEST_F(LEvalTest, ConIsStrict) {
  const Expr *Redex =
      C.app(C.lam(s("x"), C.intHashTy(), C.var(s("x"))), C.intLit(1));
  StepResult R = step1(C.con(Redex));
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CON");
}

TEST_F(LEvalTest, CaseForcesScrutinee) {
  const Expr *Scrut = C.app(C.lam(s("y"), C.intTy(), C.var(s("y"))),
                            C.con(C.intLit(3)));
  const Expr *E = C.caseOf(Scrut, s("x"), C.var(s("x")));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASE");
}

TEST_F(LEvalTest, CaseMatches) {
  const Expr *E = C.caseOf(C.con(C.intLit(3)), s("x"), C.var(s("x")));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASEk");
  EXPECT_EQ(R.Next->str(), "3");
}

TEST_F(LEvalTest, CaseErrorPropagates) {
  const Expr *Bottom = C.app(
      C.tyApp(C.repApp(C.error(), RuntimeRep::pointer()), C.intTy()),
      C.con(C.intLit(0)));
  RunResult R = Ev.runClosed(C.caseOf(Bottom, s("x"), C.var(s("x"))));
  EXPECT_EQ(R.Final, StepStatus::Bottom);
}

//===--------------------------------------------------------------------===//
// n-ary constructors and tag dispatch (S_CON, S_CASEk, S_CASEDEF) — PR 5
//===--------------------------------------------------------------------===//

class LDataEvalTest : public LEvalTest {
protected:
  void SetUp() override {
    // data T = A | B Int# | C Int Double#.
    Decl = C.declareData(s("T"));
    ASSERT_TRUE(C.addDataCon(Decl, s("A"), {}));
    const Type *BF[] = {C.intHashTy()};
    ASSERT_TRUE(C.addDataCon(Decl, s("B"), BF));
    const Type *CF[] = {C.intTy(), C.doubleHashTy()};
    ASSERT_TRUE(C.addDataCon(Decl, s("C"), CF));
  }

  LAlt conAlt(unsigned Tag, std::span<const Symbol> Binders,
              const Expr *Rhs) {
    LAlt A;
    A.Pat = LAlt::PatKind::Con;
    A.Tag = Tag;
    A.Binders = Binders;
    A.Rhs = Rhs;
    return A;
  }

  LDataDecl *Decl = nullptr;
};

TEST_F(LDataEvalTest, ConstructorIsStrictInUnboxedLazyInPointerFields) {
  // C[<ptr redex>, <dbl redex>] steps the *double* field (S_CON); the
  // pointer field stays untouched — and once the double is a literal,
  // the whole constructor is a value even with the pointer redex inside.
  const Expr *PtrRedex =
      C.app(C.lam(s("p"), C.intTy(), C.var(s("p"))), C.con(C.intLit(1)));
  const Expr *DblRedex = C.prim(LPrim::DAdd, C.doubleLit(1.0),
                                C.doubleLit(0.5));
  const Expr *Args[] = {PtrRedex, DblRedex};
  const Expr *E = C.conData(Decl, 2, Args);
  EXPECT_FALSE(isValue(E));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CON");
  const auto *Stepped = cast<ConExpr>(R.Next);
  EXPECT_EQ(Stepped->args()[0], PtrRedex) << "pointer field must not step";
  StepResult R2 = step1(R.Next);
  ASSERT_EQ(R2.Status, StepStatus::Value) << R2.Rule;
}

TEST_F(LDataEvalTest, TagDispatchSelectsAlternativeAndBindsFields) {
  Symbol X = s("x");
  Symbol BBind[] = {X};
  LAlt Alts[] = {conAlt(0, {}, C.intLit(0)),
                 conAlt(1, BBind,
                        C.prim(LPrim::Add, C.var(X), C.intLit(1)))};
  const Expr *BArgs[] = {C.intLit(41)};
  const Expr *E = C.caseData(C.conData(Decl, 1, BArgs), Decl, Alts,
                             C.intLit(-1));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASEk");
  RunResult Run = Ev.runClosed(E);
  ASSERT_EQ(Run.Final, StepStatus::Value);
  EXPECT_EQ(Run.Last->str(), "42");
}

TEST_F(LDataEvalTest, UnmatchedTagTakesDefault) {
  LAlt Alts[] = {conAlt(1, {}, C.intLit(0))}; // ill-arity never reached
  Symbol X = s("x");
  Symbol BBind[] = {X};
  Alts[0] = conAlt(1, BBind, C.var(X));
  const Expr *E = C.caseData(C.conData(Decl, 0, {}), Decl, Alts,
                             C.intLit(7));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASEDEF");
  EXPECT_EQ(R.Next->str(), "7");
}

TEST_F(LDataEvalTest, LazyFieldSubstitutesUnevaluated) {
  // case C[<redex>, 1.5] of C[a, b] -> a: the pointer payload lands in
  // the body unevaluated (call-by-name, like S_BETAPTR).
  const Expr *PtrRedex =
      C.app(C.lam(s("p"), C.intTy(), C.var(s("p"))), C.con(C.intLit(5)));
  const Expr *Args[] = {PtrRedex, C.doubleLit(1.5)};
  Symbol Aa = s("a"), Bb = s("b");
  Symbol CBind[] = {Aa, Bb};
  LAlt Alts[] = {conAlt(2, CBind, C.var(Aa))};
  const Expr *E =
      C.caseData(C.conData(Decl, 2, Args), Decl, Alts, C.con(C.intLit(0)));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASEk");
  EXPECT_EQ(R.Next, PtrRedex) << "payload must arrive unevaluated";
}

TEST_F(LDataEvalTest, LiteralCaseDispatchesByValue) {
  LAlt A3, A4;
  A3.Pat = LAlt::PatKind::Int;
  A3.IntVal = 3;
  A3.Rhs = C.intLit(30);
  A4.Pat = LAlt::PatKind::Int;
  A4.IntVal = 4;
  A4.Rhs = C.intLit(40);
  LAlt Alts[] = {A3, A4};
  EXPECT_EQ(Ev.runClosed(C.caseData(C.intLit(4), nullptr, Alts,
                                    C.intLit(0)))
                .Last->str(),
            "40");
  EXPECT_EQ(Ev.runClosed(C.caseData(C.intLit(9), nullptr, Alts,
                                    C.intLit(0)))
                .Last->str(),
            "0");
}

TEST_F(LDataEvalTest, DefaultOnlyCaseForcesScrutinee) {
  // case <redex> of { _ -> 1 } forces the scrutinee before defaulting.
  const Expr *Redex =
      C.app(C.lam(s("y"), C.intHashTy(), C.var(s("y"))), C.intLit(8));
  const Expr *E = C.caseData(Redex, nullptr, {}, C.intLit(1));
  StepResult R = step1(E);
  ASSERT_EQ(R.Status, StepStatus::Stepped);
  EXPECT_EQ(R.Rule, "S_CASE");
  RunResult Run = Ev.runClosed(E);
  ASSERT_EQ(Run.Final, StepStatus::Value);
  EXPECT_EQ(Run.Last->str(), "1");
}

//===--------------------------------------------------------------------===//
// error (S_ERROR)
//===--------------------------------------------------------------------===//

TEST_F(LEvalTest, ErrorAborts) {
  StepResult R = step1(C.error());
  EXPECT_EQ(R.Status, StepStatus::Bottom);
  EXPECT_EQ(R.Rule, "S_ERROR");
}

//===--------------------------------------------------------------------===//
// End-to-end reductions
//===--------------------------------------------------------------------===//

// "plusInt"-style: unbox two Ints, rebox. case I#[2] of I#[a] ->
// case I#[3] of I#[b] -> I#[b] (no primops in L; structure only).
TEST_F(LEvalTest, UnboxReboxPipeline) {
  const Expr *E = C.caseOf(
      C.con(C.intLit(2)), s("a"),
      C.caseOf(C.con(C.intLit(3)), s("b"), C.con(C.var(s("b")))));
  EXPECT_EQ(evalToValue(E)->str(), "I#[3]");
}

// A rep-polymorphic identity instantiated twice, at both conventions,
// through the same source term (code reuse at the L level).
TEST_F(LEvalTest, MyErrorStyleInstantiation) {
  // Λr. Λa:TYPE r. λf:Int -> a. f I#[7], applied at P/Int and I/Int#.
  Symbol R = s("r"), A = s("a"), F = s("f");
  const Expr *Gen = C.repLam(
      R, C.tyLam(A, LKind::typeVar(R),
                 C.lam(F, C.arrowTy(C.intTy(), C.varTy(A)),
                       C.app(C.var(F), C.con(C.intLit(7))))));

  const Expr *AtP = C.app(
      C.tyApp(C.repApp(Gen, RuntimeRep::pointer()), C.intTy()),
      C.lam(s("n"), C.intTy(), C.var(s("n"))));
  EXPECT_EQ(evalToValue(AtP)->str(), "I#[7]");

  const Expr *AtI = C.app(
      C.tyApp(C.repApp(Gen, RuntimeRep::integer()), C.intHashTy()),
      C.lam(s("n"), C.intTy(),
            C.caseOf(C.var(s("n")), s("m"), C.var(s("m")))));
  EXPECT_EQ(evalToValue(AtI)->str(), "7");
}

TEST_F(LEvalTest, RunReportsStepCounts) {
  const Expr *E = C.caseOf(C.con(C.intLit(3)), s("x"), C.var(s("x")));
  RunResult R = Ev.runClosed(E);
  EXPECT_EQ(R.Final, StepStatus::Value);
  EXPECT_EQ(R.Steps, 1u);
}

TEST_F(LEvalTest, FuelExhaustionReported) {
  // A term needing several steps gets cut off at 1 step.
  const Expr *E = C.caseOf(
      C.con(C.intLit(2)), s("a"),
      C.caseOf(C.con(C.intLit(3)), s("b"), C.con(C.var(s("b")))));
  TypeEnv Env;
  RunResult R = Ev.run(Env, E, 1);
  EXPECT_EQ(R.Final, StepStatus::Stepped);
  EXPECT_EQ(R.Steps, 1u);
}

} // namespace
