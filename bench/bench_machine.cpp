//===- bench_machine.cpp - E5: the M machine (Figures 5-6) ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Machine-step throughput and the value of thunk sharing (EVAL+FCE):
// a shared thunk is forced once; call-by-name re-evaluates. Lazy (PAPP)
// versus strict (IAPP) application costs are isolated too.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Bytecode.h"
#include "bytecode/Vm.h"
#include "mcalc/Machine.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace levity;
using namespace levity::mcalc;

namespace {

/// Builds case I#[1] of I#[n] -> ... depth-nested term (pure step fuel).
const Term *nestedCases(MContext &C, unsigned Depth) {
  const Term *T = C.conVar({C.symbols().intern("n0"), VarSort::Int});
  for (unsigned I = Depth; I != 0; --I) {
    MVar N = {C.symbols().intern("n" + std::to_string(I - 1)),
              VarSort::Int};
    T = C.caseOf(C.conLit(int64_t(I)), N, T);
  }
  return T;
}

void BM_MachineSteps(benchmark::State &State) {
  MContext C;
  Machine M(C);
  const Term *T = nestedCases(C, unsigned(State.range(0)));
  uint64_t Steps = 0;
  for (auto _ : State) {
    MachineResult R = M.run(T);
    Steps += R.Stats.Steps;
    benchmark::DoNotOptimize(R.Value);
  }
  State.counters["M-steps/s"] =
      benchmark::Counter(double(Steps), benchmark::Counter::kIsRate);
}

// Thunk sharing: let q = <work> in use q k times. FCE updates the heap
// after the first force; the other k-1 uses are VAL lookups.
void BM_SharedThunk(benchmark::State &State) {
  MContext C;
  Machine M(C);
  unsigned Uses = unsigned(State.range(0));
  MVar Q = C.freshPtr();
  const Term *Work = nestedCases(C, 64);
  // case q of I#[a] -> ... (Uses times) ... -> I#[a].
  MVar A = C.freshInt();
  const Term *Body = C.conVar(A);
  for (unsigned I = 0; I != Uses; ++I)
    Body = C.caseOf(C.var(Q), A, Body);
  const Term *T = C.let(Q, Work, Body);
  uint64_t Evals = 0;
  for (auto _ : State) {
    MachineResult R = M.run(T);
    Evals = R.Stats.ThunkEvals;
    benchmark::DoNotOptimize(R.Value);
  }
  State.counters["thunk-evals"] = double(Evals); // expect 1, not Uses
}

// The same workload without sharing: the work is duplicated per use,
// modeling call-by-name (L's S_BETAPTR without M's heap).
void BM_UnsharedReeval(benchmark::State &State) {
  MContext C;
  Machine M(C);
  unsigned Uses = unsigned(State.range(0));
  MVar A = C.freshInt();
  const Term *Body = C.conVar(A);
  for (unsigned I = 0; I != Uses; ++I)
    Body = C.caseOf(nestedCases(C, 64), A, Body);
  uint64_t Steps = 0;
  for (auto _ : State) {
    MachineResult R = M.run(Body);
    Steps = R.Stats.Steps;
    benchmark::DoNotOptimize(R.Value);
  }
  State.counters["M-steps/run"] = double(Steps);
}

// Lazy vs strict β: pointer application allocates argument thunks;
// integer application moves a literal into a register.
void BM_LazyBeta(benchmark::State &State) {
  MContext C;
  Machine M(C);
  MVar P = C.freshPtr();
  const Term *Id = C.lam(P, C.var(P));
  MVar Q = C.freshPtr();
  const Term *T = C.let(Q, C.conLit(5), C.appVar(Id, Q));
  for (auto _ : State) {
    MachineResult R = M.run(T);
    benchmark::DoNotOptimize(R.Value);
  }
}

void BM_StrictBeta(benchmark::State &State) {
  MContext C;
  Machine M(C);
  MVar I = C.freshInt();
  const Term *Id = C.lam(I, C.var(I));
  const Term *T = C.appLit(Id, 5);
  for (auto _ : State) {
    MachineResult R = M.run(T);
    benchmark::DoNotOptimize(R.Value);
  }
}

//===--------------------------------------------------------------------===//
// The bytecode VM on the same M terms (PR 6): compile once, then run
// the flat instruction stream — the small-step-vs-dispatch-loop ratio
// on pure step fuel and on thunk sharing.
//===--------------------------------------------------------------------===//

void BM_BytecodeSteps(benchmark::State &State) {
  MContext C;
  const Term *T = nestedCases(C, unsigned(State.range(0)));
  auto Mod = bytecode::compile(T);
  if (!Mod) {
    State.SkipWithError(Mod.error().c_str());
    return;
  }
  bytecode::Vm Vm;
  uint64_t Steps = 0;
  for (auto _ : State) {
    bytecode::VmResult R = Vm.run(**Mod, uint64_t(1) << 40);
    Steps += R.Stats.Steps;
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.counters["vm-steps/s"] =
      benchmark::Counter(double(Steps), benchmark::Counter::kIsRate);
}

void BM_BytecodeSharedThunk(benchmark::State &State) {
  MContext C;
  unsigned Uses = unsigned(State.range(0));
  MVar Q = C.freshPtr();
  const Term *Work = nestedCases(C, 64);
  MVar A = C.freshInt();
  const Term *Body = C.conVar(A);
  for (unsigned I = 0; I != Uses; ++I)
    Body = C.caseOf(C.var(Q), A, Body);
  auto Mod = bytecode::compile(C.let(Q, Work, Body));
  if (!Mod) {
    State.SkipWithError(Mod.error().c_str());
    return;
  }
  bytecode::Vm Vm;
  uint64_t Evals = 0;
  for (auto _ : State) {
    bytecode::VmResult R = Vm.run(**Mod, uint64_t(1) << 40);
    Evals = R.Stats.ThunkEvals;
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.counters["thunk-evals"] = double(Evals); // expect 1, not Uses
}

void BM_BytecodeStrictBeta(benchmark::State &State) {
  MContext C;
  MVar I = C.freshInt();
  auto Mod = bytecode::compile(C.appLit(C.lam(I, C.var(I)), 5));
  if (!Mod) {
    State.SkipWithError(Mod.error().c_str());
    return;
  }
  bytecode::Vm Vm;
  for (auto _ : State) {
    bytecode::VmResult R = Vm.run(**Mod, uint64_t(1) << 40);
    benchmark::DoNotOptimize(R.IntValue);
  }
}

BENCHMARK(BM_MachineSteps)->Name("Machine/Steps")->Arg(64)->Arg(512);
BENCHMARK(BM_SharedThunk)->Name("Machine/SharedThunk")->Arg(2)->Arg(16);
BENCHMARK(BM_UnsharedReeval)
    ->Name("Machine/UnsharedReeval")->Arg(2)->Arg(16);
BENCHMARK(BM_LazyBeta)->Name("Machine/LazyBeta");
BENCHMARK(BM_StrictBeta)->Name("Machine/StrictBeta");
BENCHMARK(BM_BytecodeSteps)->Name("Bytecode/Steps")->Arg(64)->Arg(512);
BENCHMARK(BM_BytecodeSharedThunk)
    ->Name("Bytecode/SharedThunk")->Arg(2)->Arg(16);
BENCHMARK(BM_BytecodeStrictBeta)->Name("Bytecode/StrictBeta");

} // namespace

int main(int argc, char **argv) {
  std::printf("E5 (Figures 5-6): M machine throughput and thunk "
              "sharing.\nExpected shape: shared thunks force once "
              "regardless of use count; unshared re-evaluation scales "
              "with uses; strict beta beats lazy beta (no allocation).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
