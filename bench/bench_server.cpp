//===- bench_server.cpp - levityd latency/throughput trajectory -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The recorded server trajectory: the full deterministic load-generator
// mix (registration COMPILEs, warm re-COMPILEs, RUNs across all three
// backends, fuel-starved TIMEOUT probes) fired at an in-process Server
// by 1, 8, and 64 concurrent clients.
//
//   * Server/Load/N — one complete load run per iteration against a
//     fresh Server (cold caches each time, so the cold/warm mix is
//     stable). Counters: req_per_s, p50_us, p99_us, plus the acceptance
//     ledger (wrong_answers and protocol_errors must be zero, busy and
//     timeouts are expected traffic).
//
// In-process clients skip socket I/O on purpose: the trajectory tracks
// protocol + admission + session work, not kernel buffer behaviour.
// bench/record_server_bench.py turns the JSON output into
// BENCH_server.json in CI.
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"
#include "server/Server.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

using namespace levity;
using namespace levity::server;

namespace {

void BM_ServerLoad(benchmark::State &State) {
  size_t Clients = static_cast<size_t>(State.range(0));
  LoadOptions Load;
  Load.Clients = Clients;
  // Keep total traffic roughly constant across client counts so the
  // three points measure contention, not workload size.
  Load.RequestsPerClient = std::max<size_t>(8, 512 / Clients);
  Load.Programs = 16;
  Load.PipelineDepth = 4;

  LoadReport Last;
  uint64_t PeakCells = 0, PeakBytes = 0;
  for (auto _ : State) {
    ServerOptions Opts;
    Opts.MaxQueueDepth = 256;
    Server Srv(Opts);
    Last = runLoad(
        [&](size_t) { return std::make_unique<InProcessClient>(Srv); },
        Load);
    if (!Last.clean()) {
      State.SkipWithError("load run was not clean");
      return;
    }
    // Snapshot the server-wide peak-heap high-water mark before this
    // iteration's Server dies (the load generator spreads traffic over
    // tenants t0..t3). Flat across iterations by construction — every
    // run recycles its executor's region.
    for (int T = 0; T != 4; ++T) {
      TenantStats TS = Srv.tenantStats("t" + std::to_string(T));
      PeakCells = std::max(PeakCells, TS.PeakHeapCells);
      PeakBytes = std::max(PeakBytes, TS.PeakHeapBytes);
    }
    benchmark::DoNotOptimize(Last.Requests);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Last.Requests));
  State.counters["req_per_s"] = Last.ReqPerSec;
  State.counters["p50_us"] = Last.P50Micros;
  State.counters["p99_us"] = Last.P99Micros;
  State.counters["busy"] = static_cast<double>(Last.Busy);
  State.counters["timeouts"] = static_cast<double>(Last.Timeouts);
  State.counters["wrong_answers"] = static_cast<double>(Last.WrongAnswers);
  State.counters["protocol_errors"] =
      static_cast<double>(Last.ProtocolErrors);
  State.counters["peak_heap_cells"] = static_cast<double>(PeakCells);
  State.counters["peak_heap_bytes"] = static_cast<double>(PeakBytes);
}

BENCHMARK(BM_ServerLoad)
    ->Name("Server/Load")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

} // namespace

int main(int argc, char **argv) {
  std::printf(
      "levityd trajectory: the deterministic load mix at 1/8/64 clients\n"
      "against a fresh in-process Server per iteration. Watch req_per_s\n"
      "and the p50/p99 counters; wrong_answers and protocol_errors must\n"
      "stay zero at every client count.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
