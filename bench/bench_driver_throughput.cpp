//===- bench_driver_throughput.cpp - Concurrent driver throughput ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Throughput of the redesigned driver under the workload the API was
// built for: many workers sharing one Session and one immutable
// Compilation.
//
//   * CompileCached/threads:N   — same-source compile() (pure cache-hit
//     path through the sharded cache);
//   * CompileDistinct/threads:N — each iteration compiles a fresh
//     source (front-end throughput under the shard mutexes);
//   * RunTreeWarm/threads:N     — per-thread Executors over one shared
//     Compilation; globals are memoized, so this is the hot lookup path;
//   * RunTreeCold/threads:N     — a fresh Executor per iteration (full
//     re-evaluation, the cost Compilation::run pays);
//   * RunMachine/threads:N      — the M machine replays every run;
//     concurrent runs allocate into the shared, synchronized MContext;
//   * RunTreeLoop/threads:N     — a 200-iteration sumToH# call evaluated
//     per iteration through Executor::evalExpr (the loop itself is
//     outside the machine's L fragment — see ROADMAP);
//   * RunAllBatch               — the Session's batch entry point
//     fanning 32 requests across its worker pool;
//   * CompileColdFrontEnd vs CompileWarmStoreHit — a fresh Session per
//     iteration, without and with a warm on-disk artifact store: the
//     warm variant demonstrates compile-phase time collapsing to .levc
//     deserialization (no front end, no lowering).
//
// Expected shape: cached compiles and tree runs scale near-linearly with
// threads (the artifact is immutable; executors are independent); the
// machine backend scales a bit less (shared allocation); distinct
// compiles are bounded by the front end itself.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace levity;
using namespace levity::driver;

namespace {

const char *QuickstartSrc =
    "square :: Int# -> Int# ;"
    "square x = x *# x ;"
    "answer = square 6# +# 6#";

const char *LoopSrc =
    "sumToH :: Int# -> Int# -> Int# ;"
    "sumToH acc n = case n of {"
    "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
    "} ;"
    "total = sumToH 0# 200#";

struct Fixture {
  Session S;
  std::shared_ptr<Compilation> Quickstart = S.compile(QuickstartSrc);
  std::shared_ptr<Compilation> Loop = S.compile(LoopSrc);
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

//===----------------------------------------------------------------------===//
// Compilation throughput
//===----------------------------------------------------------------------===//

void BM_CompileCached(benchmark::State &State) {
  Fixture &F = fixture();
  for (auto _ : State) {
    std::shared_ptr<Compilation> Comp = F.S.compile(QuickstartSrc);
    benchmark::DoNotOptimize(Comp.get());
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_CompileDistinct(benchmark::State &State) {
  // A private session per run so the cache never hits; a bounded LRU so
  // memory stays flat across the whole benchmark.
  static std::atomic<int> Salt{0};
  CompileOptions Opts;
  Opts.MaxCachedCompilations = 64;
  static Session S(Opts);
  for (auto _ : State) {
    int N = Salt.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Compilation> Comp =
        S.compile("answer = " + std::to_string(N) + "# +# 1#");
    benchmark::DoNotOptimize(Comp->ok());
  }
  State.SetItemsProcessed(State.iterations());
}

//===----------------------------------------------------------------------===//
// Run throughput: tree interpreter vs M machine over one shared artifact
//===----------------------------------------------------------------------===//

void BM_RunTreeWarm(benchmark::State &State) {
  // One Executor per benchmark thread: the artifact is shared, the run
  // state is not. Global thunks memoize, so this is the hot-lookup path.
  Executor Ex(fixture().Quickstart);
  uint64_t PeakCells = 0, PeakBytes = 0;
  for (auto _ : State) {
    RunResult R = Ex.run("answer", Backend::TreeInterp);
    if (!R.ok())
      State.SkipWithError(R.Error.c_str());
    PeakCells = std::max(PeakCells, R.peakHeapCells());
    PeakBytes = std::max(PeakBytes, R.peakHeapBytes());
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.SetItemsProcessed(State.iterations());
  // Flat across iterations by construction (run epochs); a growth here
  // is the long-lived-Executor leak coming back.
  State.counters["peak_heap_cells"] = benchmark::Counter(
      static_cast<double>(PeakCells), benchmark::Counter::kAvgThreads);
  State.counters["peak_heap_bytes"] = benchmark::Counter(
      static_cast<double>(PeakBytes), benchmark::Counter::kAvgThreads);
}

void BM_RunTreeCold(benchmark::State &State) {
  // A fresh Executor per iteration: full re-evaluation, i.e. what a
  // transient Compilation::run costs.
  std::shared_ptr<Compilation> Comp = fixture().Quickstart;
  for (auto _ : State) {
    Executor Ex(Comp);
    RunResult R = Ex.run("answer", Backend::TreeInterp);
    if (!R.ok())
      State.SkipWithError(R.Error.c_str());
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_RunMachine(benchmark::State &State) {
  // The machine replays from an empty heap every run into its
  // executor's run-scoped MContext (reset per run, so the arena peak is
  // the per-run footprint, not cumulative churn).
  Executor Ex(fixture().Quickstart);
  uint64_t PeakCells = 0, PeakBytes = 0;
  for (auto _ : State) {
    RunResult R = Ex.run("answer", Backend::AbstractMachine);
    if (!R.ok())
      State.SkipWithError(R.Error.c_str());
    PeakCells = std::max(PeakCells, R.peakHeapCells());
    PeakBytes = std::max(PeakBytes, R.peakHeapBytes());
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["peak_heap_cells"] = benchmark::Counter(
      static_cast<double>(PeakCells), benchmark::Counter::kAvgThreads);
  State.counters["peak_heap_bytes"] = benchmark::Counter(
      static_cast<double>(PeakBytes), benchmark::Counter::kAvgThreads);
}

void BM_RunTreeLoop(benchmark::State &State) {
  // Re-applies sumToH# to fresh arguments each iteration: the 200-step
  // loop really runs every time (applications are never memoized).
  std::shared_ptr<Compilation> Comp = fixture().Loop;
  Executor Ex(Comp);
  core::CoreContext &C = Comp->ctx();
  const core::Expr *Call =
      C.app(C.app(C.var(C.sym("sumToH")), C.litInt(0), true),
            C.litInt(200), true);
  for (auto _ : State) {
    runtime::InterpResult R = Ex.evalExpr(Call);
    if (R.Status != runtime::InterpStatus::Value)
      State.SkipWithError(R.Message.c_str());
    benchmark::DoNotOptimize(R.V);
  }
  State.SetItemsProcessed(State.iterations() * 200);
}

//===----------------------------------------------------------------------===//
// The on-disk artifact store: cold front end vs warm-store hydration
//===----------------------------------------------------------------------===//

/// A store directory pre-populated with LoopSrc (built once, lazily).
const std::string &warmStoreDir() {
  static const std::string Dir = [] {
    std::string D = (std::filesystem::temp_directory_path() /
                     "levity-bench-warm-store")
                        .string();
    std::filesystem::remove_all(D);
    CompileOptions Opts;
    Opts.StorePath = D;
    Session S(Opts);
    S.compile(LoopSrc);
    S.flushStoreWrites();
    return D;
  }();
  return Dir;
}

void BM_CompileColdFrontEnd(benchmark::State &State) {
  // A fresh Session per iteration: every compile pays the full
  // lex → parse → elaborate → levity-check pipeline (the cost every
  // cold process pays without a store).
  for (auto _ : State) {
    Session S;
    std::shared_ptr<Compilation> Comp = S.compile(LoopSrc);
    if (!Comp->ok())
      State.SkipWithError("compile failed");
    benchmark::DoNotOptimize(Comp.get());
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_CompileWarmStoreHit(benchmark::State &State) {
  // A fresh Session per iteration over a warm store: compiling is pure
  // .levc deserialization. The hydrated artifact is immediately
  // runnable on the machine backend with zero re-lowering.
  CompileOptions Opts;
  Opts.StorePath = warmStoreDir();
  for (auto _ : State) {
    Session S(Opts);
    std::shared_ptr<Compilation> Comp = S.compile(LoopSrc);
    if (!Comp->ok() || !Comp->hydrated())
      State.SkipWithError("expected a warm-store hit");
    benchmark::DoNotOptimize(Comp.get());
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_RunMachineHydrated(benchmark::State &State) {
  // End-to-end warm-store usefulness: hydrate once, then replay the
  // 200-iteration loop on the machine from the deserialized terms.
  CompileOptions Opts;
  Opts.StorePath = warmStoreDir();
  Session S(Opts);
  std::shared_ptr<Compilation> Comp = S.compile(LoopSrc);
  if (!Comp->hydrated()) {
    State.SkipWithError("expected a warm-store hit");
    return;
  }
  Executor Ex(Comp);
  uint64_t PeakBytes = 0;
  for (auto _ : State) {
    RunResult R = Ex.run("total", Backend::AbstractMachine);
    if (!R.ok())
      State.SkipWithError(R.Error.c_str());
    PeakBytes = std::max(PeakBytes, R.peakHeapBytes());
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.SetItemsProcessed(State.iterations());
  State.counters["peak_heap_bytes"] =
      static_cast<double>(PeakBytes);
}

//===----------------------------------------------------------------------===//
// The batch entry point
//===----------------------------------------------------------------------===//

void BM_RunAllBatch(benchmark::State &State) {
  Fixture &F = fixture();
  std::vector<Session::RunRequest> Requests;
  for (int I = 0; I != 32; ++I) {
    Session::RunRequest Req;
    Req.Source = I % 2 == 0 ? QuickstartSrc : LoopSrc;
    Req.Name = I % 2 == 0 ? "answer" : "total";
    Req.B = I % 4 < 2 ? Backend::TreeInterp : Backend::AbstractMachine;
    Requests.push_back(std::move(Req));
  }
  for (auto _ : State) {
    std::vector<RunResult> Results = F.S.runAll(Requests);
    benchmark::DoNotOptimize(Results.data());
  }
  State.SetItemsProcessed(State.iterations() * 32);
}

BENCHMARK(BM_CompileCached)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_CompileDistinct)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunTreeWarm)->Threads(1)->Threads(4)->Threads(8);
BENCHMARK(BM_RunTreeCold)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunMachine)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunTreeLoop)->Threads(1)->Threads(4)->Threads(8)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompileColdFrontEnd)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompileWarmStoreHit)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunMachineHydrated)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RunAllBatch)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf(
      "Driver throughput: N threads x one Session / one Compilation.\n"
      "Expected shape: cached compiles and tree runs scale with threads;\n"
      "machine runs replay into per-executor run arenas; RunAll fans a\n"
      "32-request batch across the session's worker pool. peak_heap_*\n"
      "counters are per-run footprints and must stay flat across\n"
      "iterations (the long-lived-Session reclamation guarantee).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
