//===- bench_dictionaries.cpp - E8: class dispatch at TYPE r --------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Section 7.3: dictionary-passing over levity-polymorphic classes. The
// paper's point is that levity polymorphism "does not make code go
// faster" — dictionaries still cost an indirection — but it lets the
// *unboxed* instance exist at all. Compared here, on a summation loop:
//
//   * Direct/Unboxed     — sumTo# with primops (no class);
//   * Dictionary/Unboxed — the same loop through Num Int#'s dictionary;
//   * Dictionary/Boxed   — through Num Int (boxes + thunks + dictionary).
//
// Expected shape: Direct <= Dictionary/Unboxed << Dictionary/Boxed.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <optional>

using namespace levity;

namespace {

struct Fixture {
  driver::Session S;
  std::shared_ptr<driver::Compilation> Comp;
  std::optional<driver::Executor> Exec;
  bool Ok = false;

  Fixture() {
    const char *Source =
        "class Num (a :: TYPE r) where {"
        "  (+) :: a -> a -> a ;"
        "  abs :: a -> a"
        "} ;"
        "instance Num Int# where {"
        "  (+) x y = x +# y ;"
        "  abs n = n"
        "} ;"
        "instance Num Int where {"
        "  (+) a b = case a of { I# x -> case b of { I# y -> "
        "I# (x +# y) } } ;"
        "  abs n = n"
        "} ;"
        "direct :: Int# -> Int# -> Int# ;"
        "direct acc n = case n of {"
        "  0# -> acc ; _ -> direct (acc +# n) (n -# 1#) } ;"
        "viaDictU :: Int# -> Int# -> Int# ;"
        "viaDictU acc n = case n of {"
        "  0# -> acc ; _ -> viaDictU (acc + n) (n -# 1#) } ;"
        "viaDictB :: Int -> Int -> Int ;"
        "viaDictB acc n = case n of {"
        "  0 -> acc ; _ -> viaDictB (acc + n) (n - 1) }";
    Comp = S.compile(Source);
    if (!Comp->ok()) {
      std::printf("fixture failed:\n%s", Comp->diagText().c_str());
      return;
    }
    Exec.emplace(Comp);
    Ok = true;
  }

  core::CoreContext &ctx() { return Comp->ctx(); }

  const core::Expr *call(const char *Fn, int64_t N, bool Boxed) {
    core::CoreContext &C = ctx();
    const core::Expr *Zero =
        Boxed ? box(0) : static_cast<const core::Expr *>(C.litInt(0));
    const core::Expr *Arg = Boxed ? box(N) : C.litInt(N);
    return C.app(C.app(C.var(C.sym(Fn)), Zero, !Boxed), Arg, !Boxed);
  }

  const core::Expr *box(int64_t V) {
    core::CoreContext &C = ctx();
    const core::Expr *L = C.litInt(V);
    return C.conApp(C.iHashCon(), {}, {&L, 1});
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void runLoop(benchmark::State &State, const char *Fn, bool Boxed) {
  Fixture &F = fixture();
  if (!F.Ok) {
    State.SkipWithError("fixture failed to compile");
    return;
  }
  int64_t N = State.range(0);
  uint64_t Heap = 0;
  for (auto _ : State) {
    runtime::InterpResult R = F.Exec->evalExpr(F.call(Fn, N, Boxed));
    benchmark::DoNotOptimize(R.V);
    Heap = R.Stats.heapAllocations();
  }
  State.counters["heap-allocs/loop"] = double(Heap);
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_DirectUnboxed(benchmark::State &State) {
  runLoop(State, "direct", false);
}
void BM_DictionaryUnboxed(benchmark::State &State) {
  runLoop(State, "viaDictU", false);
}
void BM_DictionaryBoxed(benchmark::State &State) {
  runLoop(State, "viaDictB", true);
}

BENCHMARK(BM_DirectUnboxed)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DictionaryUnboxed)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DictionaryBoxed)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E8 (Section 7.3): Num (a :: TYPE r) dispatch.\n"
              "Expected shape: direct <= dictionary-unboxed << "
              "dictionary-boxed;\nlevity polymorphism adds reuse, not "
              "speed — the unboxed instance simply becomes writable.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
