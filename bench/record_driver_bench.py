#!/usr/bin/env python3
"""Append one run to the BENCH_driver.json throughput trajectory.

Usage:
  record_driver_bench.py --driver driver.json --build-dir build \
      --out BENCH_driver.json [--allow-non-release]

Reads the --benchmark_out_format=json file written by
bench_driver_throughput and appends the concurrent-driver run: cached
and distinct compile throughput, tree/machine run throughput at each
thread count, and the per-run peak-heap footprints. The build type
comes from the build tree's CMakeCache.txt (see record_common).

Gate: the required benchmark families must be present, and the
peak-heap counters must stay flat across thread counts — per-run
footprints are a property of the program, not of the load, so a
footprint that grows with threads means run-state is leaking across
executors again.
"""

import argparse
import datetime
import sys

import record_common as rc

# Families that must appear (at any /threads:N suffix) for the run to
# count; each maps to whether its rows carry peak-heap counters that
# must stay flat across thread counts.
REQUIRED_FAMILIES = {
    "BM_CompileCached": False,
    "BM_CompileDistinct": False,
    "BM_RunTreeWarm": True,
    "BM_RunTreeCold": True,
    "BM_RunMachine": False,
    "BM_RunTreeLoop": False,
}


def family(name):
    return name.split("/")[0]


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--driver", required=True)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--allow-non-release", action="store_true")
    args = ap.parse_args()

    build_type = rc.resolve_build_type(args.build_dir)
    flagged = rc.check_build_type(build_type, args.allow_non_release)

    rows, ctx = rc.load_gbench(args.driver)

    by_family = {}
    for r in rows:
        by_family.setdefault(family(r["name"]), []).append(r)

    failures = []
    for fam in REQUIRED_FAMILIES:
        if fam not in by_family:
            failures.append(f"missing benchmark family {fam}")

    # Per-run heap footprints are deterministic per program; averaged
    # per thread (kAvgThreads) they must not grow with the thread
    # count. Allow a small slack for families whose iterations differ.
    flatness = {}
    for fam, check in REQUIRED_FAMILIES.items():
        if not check or fam not in by_family:
            continue
        peaks = [r["counters"].get("peak_heap_bytes")
                 for r in by_family[fam]]
        peaks = [p for p in peaks if p]
        if len(peaks) < 2:
            continue
        ratio = max(peaks) / min(peaks)
        flatness[fam] = {"min_peak_heap_bytes": int(min(peaks)),
                         "max_peak_heap_bytes": int(max(peaks)),
                         "ratio": round(ratio, 3)}
        if ratio > 1.5:
            failures.append(
                f"{fam}: peak_heap_bytes grows with threads "
                f"({int(min(peaks))} -> {int(max(peaks))})")

    summary = {}
    for fam, rs in sorted(by_family.items()):
        summary[fam] = {
            r["name"].split("/", 1)[1] if "/" in r["name"] else "base":
                r["ns_per_op"]
            for r in rs
        }

    run = {
        "date": ctx.get("date",
                        datetime.datetime.now(datetime.timezone.utc)
                        .isoformat(timespec="seconds")),
        "generator": "bench_driver_throughput "
                     "(--benchmark_out_format=json)",
        "host": rc.host_block(ctx, build_type),
        "headline": {
            "claim": "one immutable Compilation serves concurrent "
                     "executors; per-run heap footprints stay flat "
                     "across thread counts",
            "ns_per_op": summary,
            "peak_heap_flatness": flatness,
        },
        "benchmarks": rows,
    }
    if flagged:
        run["non_release_build"] = True

    runs = rc.append_run(args.out, run)

    print(f"wrote {args.out} run #{len(runs)}: "
          f"{len(rows)} benchmarks across {len(by_family)} families")
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
