//===- bench_unboxed_tuples.cpp - E3: Section 2.3's multi-return ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// divMod returning (# Int#, Int# #) versus a heap pair: the unboxed
// version moves two registers and allocates nothing; the boxed version
// allocates a pair plus two boxes per call. Also checks the Section 4.2
// nesting claim: nested and flat tuples share a convention but not a
// kind.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"
#include "runtime/Samples.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace levity;
using namespace levity::runtime;

namespace {

struct Fixture {
  driver::Session S;
  std::shared_ptr<driver::Compilation> Comp =
      S.compileProgram(buildSampleProgram);
  driver::Executor Exec{Comp};
  core::CoreContext &C = Comp->ctx();
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_DivModUnboxed(benchmark::State &State) {
  Fixture &F = fixture();
  uint64_t Heap = 0;
  for (auto _ : State) {
    InterpResult R = F.Exec.evalExpr(callDivModUnboxed(F.C, 1234567, 89));
    benchmark::DoNotOptimize(R.V);
    Heap = R.Stats.ThunkAllocs + R.Stats.BoxAllocs;
  }
  State.counters["heap-allocs/call"] = double(Heap);
  State.SetItemsProcessed(State.iterations());
}

void BM_DivModBoxed(benchmark::State &State) {
  Fixture &F = fixture();
  uint64_t Heap = 0;
  for (auto _ : State) {
    InterpResult R = F.Exec.evalExpr(callDivModBoxed(F.C, 1234567, 89));
    benchmark::DoNotOptimize(R.V);
    Heap = R.Stats.ThunkAllocs + R.Stats.BoxAllocs;
  }
  State.counters["heap-allocs/call"] = double(Heap);
  State.SetItemsProcessed(State.iterations());
}

// Native equivalents: two return registers vs a heap-allocated pair.
struct HeapPair {
  int64_t Tag;
  const void *Quot;
  const void *Rem;
};

void BM_NativeUnboxedReturn(benchmark::State &State) {
  int64_t A = 1234567, B = 89;
  for (auto _ : State) {
    int64_t Q = A / B, R = A % B; // two registers
    benchmark::DoNotOptimize(Q);
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_NativeBoxedReturn(benchmark::State &State) {
  int64_t A = 1234567, B = 89;
  for (auto _ : State) {
    auto *Q = new int64_t(A / B);
    auto *R = new int64_t(A % B);
    auto *P = new HeapPair{1, Q, R};
    benchmark::DoNotOptimize(P);
    delete P;
    delete Q;
    delete R;
  }
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(BM_DivModUnboxed);
BENCHMARK(BM_DivModBoxed);
BENCHMARK(BM_NativeUnboxedReturn);
BENCHMARK(BM_NativeBoxedReturn);

} // namespace

int main(int argc, char **argv) {
  std::printf("E3 (Section 2.3): multi-value returns.\n");
  {
    RepContext RC;
    const Rep *Nested =
        RC.tuple({RC.lifted(), RC.tuple({RC.lifted(), RC.lifted()})});
    const Rep *Flat = RC.tuple({RC.lifted(), RC.lifted(), RC.lifted()});
    std::printf("nesting is computationally irrelevant: "
                "same convention = %s, same kind = %s\n\n",
                Nested->sameConvention(Flat) ? "yes" : "no",
                Nested == Flat ? "yes" : "no");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
