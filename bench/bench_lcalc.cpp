//===- bench_lcalc.cpp - E4: the L calculus (Figures 2-4) -----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Throughput of the executable formal system: generating well-typed
// terms, checking them (Figure 3), and reducing them (Figure 4). The
// metatheory (Preservation/Progress) is tested in ctest; this measures
// the cost of the judgments themselves.
//
//===----------------------------------------------------------------------===//

#include "lcalc/Eval.h"
#include "lcalc/Gen.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace levity;
using namespace levity::lcalc;

namespace {

void BM_GenerateTerms(benchmark::State &State) {
  LContext C;
  TermGen Gen(C, 42);
  for (auto _ : State) {
    TermGen::Generated G = Gen.generate();
    benchmark::DoNotOptimize(G.E);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_TypeCheck(benchmark::State &State) {
  LContext C;
  TypeChecker TC(C);
  TermGen Gen(C, 43);
  std::vector<const Expr *> Terms;
  for (int I = 0; I != 256; ++I)
    Terms.push_back(Gen.generate().E);
  size_t I = 0;
  for (auto _ : State) {
    Result<const Type *> T = TC.typeOfClosed(Terms[I++ % Terms.size()]);
    benchmark::DoNotOptimize(&T);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_Evaluate(benchmark::State &State) {
  LContext C;
  Evaluator Ev(C);
  TermGen Gen(C, 44);
  std::vector<const Expr *> Terms;
  for (int I = 0; I != 256; ++I)
    Terms.push_back(Gen.generate().E);
  size_t I = 0;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = Ev.runClosed(Terms[I++ % Terms.size()], 10000);
    Steps += R.Steps;
    benchmark::DoNotOptimize(R.Last);
  }
  State.counters["L-steps/s"] = benchmark::Counter(
      double(Steps), benchmark::Counter::kIsRate);
  State.SetItemsProcessed(State.iterations());
}

// The type-directed application rules need the argument's kind at every
// step; this isolates that kind query.
void BM_KindQuery(benchmark::State &State) {
  LContext C;
  TypeChecker TC(C);
  const Type *T = C.forAllRepTy(
      C.sym("r"),
      C.forAllTy(C.sym("a"), LKind::typeVar(C.sym("r")),
                 C.arrowTy(C.intTy(), C.varTy(C.sym("a")))));
  TypeEnv Env;
  for (auto _ : State) {
    Result<LKind> K = TC.kindOf(Env, T);
    benchmark::DoNotOptimize(&K);
  }
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(BM_GenerateTerms);
BENCHMARK(BM_TypeCheck);
BENCHMARK(BM_Evaluate);
BENCHMARK(BM_KindQuery);

} // namespace

int main(int argc, char **argv) {
  std::printf("E4 (Figures 2-4): L judgment throughput.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
