//===- bench_sumto.cpp - E1: Section 2.1's boxed vs unboxed loop ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Section 2.1 claim: "10,000,000 iterations
// executes in less than 0.01s when using unboxed Ints, but takes more
// [than] 2s when using boxed integers."
//
// Three levels:
//   * Interp/...   — the instrumented tree interpreter running the
//     elaborated sumTo/sumTo#; counters show the per-iteration heap
//     traffic that explains the gap (2 thunks + 2 boxes vs 0).
//   * Machine/...  — the same loop on the formal backend (core → L →
//     Figure 7 ANF → the Figure 6 machine): the tree-vs-machine number
//     on a real recursive loop, with the machine's own cost counters.
//   * Bytecode/... — the same M lowering compiled to the flat bytecode
//     VM (PR 6): dense opcodes over a rep-typed operand stack, the
//     closest tier to what compiled code would do.
//   * Native/...   — natively-lowered equivalents of what the code
//     generator would emit: a register loop vs a heap-box-and-thunk
//     loop, at the paper's 10M iterations.
//
// Expected shape: unboxed beats boxed by 1–2 orders of magnitude at both
// levels; the machine counters are deterministic.
//
//===----------------------------------------------------------------------===//

#include "driver/Executor.h"
#include "driver/Session.h"
#include "runtime/Samples.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace levity;
using namespace levity::runtime;

namespace {

struct Fixture {
  driver::Session S;
  std::shared_ptr<driver::Compilation> Comp =
      S.compileProgram(buildSampleProgram);
  driver::Executor Exec{Comp};
  core::CoreContext &C = Comp->ctx();
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_InterpBoxed(benchmark::State &State) {
  Fixture &F = fixture();
  int64_t N = State.range(0);
  uint64_t Heap = 0, Iters = 0;
  for (auto _ : State) {
    InterpResult R = F.Exec.evalExpr(callSumToBoxed(F.C, N));
    benchmark::DoNotOptimize(R.V);
    Heap = R.Stats.heapAllocations();
    ++Iters;
  }
  State.SetItemsProcessed(int64_t(Iters) * N);
  State.counters["heap-allocs/loop"] = double(Heap);
  State.counters["heap-allocs/iter"] = double(Heap) / double(N);
}

void BM_InterpUnboxed(benchmark::State &State) {
  Fixture &F = fixture();
  int64_t N = State.range(0);
  uint64_t Heap = 0, Iters = 0;
  for (auto _ : State) {
    InterpResult R = F.Exec.evalExpr(callSumToUnboxed(F.C, N));
    benchmark::DoNotOptimize(R.V);
    Heap = R.Stats.ThunkAllocs + R.Stats.BoxAllocs;
    ++Iters;
  }
  State.SetItemsProcessed(int64_t(Iters) * N);
  State.counters["heap-allocs/loop"] = double(Heap);
}

void BM_InterpUnboxedDouble(benchmark::State &State) {
  Fixture &F = fixture();
  int64_t N = State.range(0);
  for (auto _ : State) {
    InterpResult R = F.Exec.evalExpr(callSumToDouble(F.C, double(N)));
    benchmark::DoNotOptimize(R.V);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

//===--------------------------------------------------------------------===//
// The abstract-machine backend (core → L → ANF → M, Figures 5-7) on the
// same loop — the tree-vs-machine number the widened lowering fragment
// (comparison chains, fix/RECLET recursion) unlocks.
//===--------------------------------------------------------------------===//

/// One cached surface Compilation per loop bound, so the benchmark body
/// measures machine execution, not compilation or lowering.
std::shared_ptr<driver::Compilation> machineComp(int64_t N, bool Boxed) {
  static driver::Session S;
  char Src[512];
  if (Boxed)
    std::snprintf(Src, sizeof(Src),
                  "sumTo :: Int -> Int -> Int ;"
                  "sumTo acc n = case n of {"
                  "  0 -> acc ; _ -> sumTo (acc + n) (n - 1)"
                  "} ;"
                  "loop = sumTo (I# 0#) (I# %lld#)",
                  (long long)N);
  else
    std::snprintf(Src, sizeof(Src),
                  "sumToH :: Int# -> Int# -> Int# ;"
                  "sumToH acc n = case n of {"
                  "  0# -> acc ; _ -> sumToH (acc +# n) (n -# 1#)"
                  "} ;"
                  "loop = sumToH 0# %lld#",
                  (long long)N);
  return S.compile(Src);
}

void BM_MachineUnboxed(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = machineComp(N, /*Boxed=*/false);
  uint64_t Heap = 0, Steps = 0;
  for (auto _ : State) {
    driver::RunResult R =
        Comp->run("loop", driver::Backend::AbstractMachine);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    Heap = R.Machine.Allocations;
    Steps = R.Machine.Steps;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["heap-allocs/loop"] = double(Heap);
  State.counters["machine-steps/iter"] = double(Steps) / double(N);
}

void BM_MachineBoxed(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = machineComp(N, /*Boxed=*/true);
  uint64_t Heap = 0;
  for (auto _ : State) {
    driver::RunResult R =
        Comp->run("loop", driver::Backend::AbstractMachine);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    Heap = R.Machine.Allocations;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["heap-allocs/loop"] = double(Heap);
  State.counters["heap-allocs/iter"] = double(Heap) / double(N);
}

//===--------------------------------------------------------------------===//
// Algebraic data on the machine (PR 5): build an N-element cons list,
// then fold it — constructor allocation (CON heap nodes) plus tag
// dispatch (SWITCH/SWITCHk) on both backends.
//===--------------------------------------------------------------------===//

std::shared_ptr<driver::Compilation> sumListComp(int64_t N) {
  static driver::Session S;
  char Src[768];
  std::snprintf(Src, sizeof(Src),
                "data IntList = Nil | Cons Int IntList ;"
                "build :: Int# -> IntList ;"
                "build n = case n of {"
                "  0# -> Nil ; _ -> Cons (I# n) (build (n -# 1#))"
                "} ;"
                "sumList :: Int# -> IntList -> Int# ;"
                "sumList acc xs = case xs of {"
                "  Nil -> acc ;"
                "  Cons y ys -> case y of { I# m -> sumList (acc +# m) ys }"
                "} ;"
                "loop = sumList 0# (build %lld#)",
                (long long)N);
  return S.compile(Src);
}

void BM_MachineSumList(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = sumListComp(N);
  uint64_t ConAllocs = 0, Switches = 0;
  for (auto _ : State) {
    driver::RunResult R =
        Comp->run("loop", driver::Backend::AbstractMachine);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    ConAllocs = R.Machine.ConAllocs;
    Switches = R.Machine.Switches;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["con-allocs/loop"] = double(ConAllocs);
  State.counters["switches/iter"] = double(Switches) / double(N);
}

void BM_TreeSumList(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = sumListComp(N);
  for (auto _ : State) {
    driver::RunResult R = Comp->run("loop", driver::Backend::TreeInterp);
    if (!R.ok()) {
      State.SkipWithError(R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

//===--------------------------------------------------------------------===//
// The bytecode VM (PR 6): the same M lowering compiled to a flat
// instruction stream and run on the rep-typed operand stack. The
// Bytecode/SumToUnboxed-vs-Machine/SumToUnboxed ratio is the headline
// number recorded in BENCH_bytecode.json.
//===--------------------------------------------------------------------===//

void BM_BytecodeUnboxed(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = machineComp(N, /*Boxed=*/false);
  uint64_t Heap = 0, Steps = 0;
  for (auto _ : State) {
    driver::RunResult R = Comp->run("loop", driver::Backend::Bytecode);
    if (!R.ok() || R.Used != driver::Backend::Bytecode) {
      State.SkipWithError(R.ok() ? "fell back to the machine"
                                 : R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    Heap = R.Vm.Allocations;
    Steps = R.Vm.Steps;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["heap-allocs/loop"] = double(Heap);
  State.counters["vm-steps/iter"] = double(Steps) / double(N);
}

void BM_BytecodeBoxed(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = machineComp(N, /*Boxed=*/true);
  uint64_t Heap = 0;
  for (auto _ : State) {
    driver::RunResult R = Comp->run("loop", driver::Backend::Bytecode);
    if (!R.ok() || R.Used != driver::Backend::Bytecode) {
      State.SkipWithError(R.ok() ? "fell back to the machine"
                                 : R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    Heap = R.Vm.Allocations;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["heap-allocs/loop"] = double(Heap);
  State.counters["heap-allocs/iter"] = double(Heap) / double(N);
}

void BM_BytecodeSumList(benchmark::State &State) {
  int64_t N = State.range(0);
  auto Comp = sumListComp(N);
  uint64_t ConAllocs = 0, Switches = 0;
  for (auto _ : State) {
    driver::RunResult R = Comp->run("loop", driver::Backend::Bytecode);
    if (!R.ok() || R.Used != driver::Backend::Bytecode) {
      State.SkipWithError(R.ok() ? "fell back to the machine"
                                 : R.Error.c_str());
      break;
    }
    benchmark::DoNotOptimize(R.IntValue);
    ConAllocs = R.Vm.ConAllocs;
    Switches = R.Vm.Switches;
  }
  State.SetItemsProcessed(State.iterations() * N);
  State.counters["con-allocs/loop"] = double(ConAllocs);
  State.counters["switches/iter"] = double(Switches) / double(N);
}

//===--------------------------------------------------------------------===//
// Natively-lowered equivalents (what compiled code does).
//===--------------------------------------------------------------------===//

// The unboxed loop: accumulator and counter live in registers. This is
// the "essentially the same code as if we had written it in C".
void BM_NativeUnboxed(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    int64_t Acc = 0;
    for (int64_t I = N; I != 0; --I)
      Acc += I;
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

// The boxed loop: every intermediate is a fresh heap cell behind a
// pointer, and the loop forces a thunk per iteration (simulated with an
// indirect call through a stored closure state).
struct BoxedInt {
  int64_t Tag; // descriptor word
  int64_t Value;
};

void BM_NativeBoxed(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    std::unique_ptr<BoxedInt> Acc(new BoxedInt{1, 0});
    std::unique_ptr<BoxedInt> Cnt(new BoxedInt{1, N});
    while (true) {
      // Force the counter thunk: pointer chase + tag test.
      benchmark::DoNotOptimize(Cnt->Tag);
      if (Cnt->Value == 0)
        break;
      // Allocate result boxes for acc+n and n-1 (two heap cells), as
      // the thunk-per-argument compilation does.
      Acc.reset(new BoxedInt{1, Acc->Value + Cnt->Value});
      Cnt.reset(new BoxedInt{1, Cnt->Value - 1});
    }
    benchmark::DoNotOptimize(Acc->Value);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

BENCHMARK(BM_InterpBoxed)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpUnboxed)->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpUnboxedDouble)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MachineUnboxed)
    ->Name("Machine/SumToUnboxed")
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MachineBoxed)
    ->Name("Machine/SumToBoxed")->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MachineSumList)
    ->Name("Machine/SumList")
    ->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeSumList)
    ->Name("Tree/SumList")->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BytecodeUnboxed)
    ->Name("Bytecode/SumToUnboxed")
    ->Arg(1000)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BytecodeBoxed)
    ->Name("Bytecode/SumToBoxed")->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BytecodeSumList)
    ->Name("Bytecode/SumList")
    ->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeUnboxed)->Arg(10000000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NativeBoxed)->Arg(10000000)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  std::printf("E1 (Section 2.1): sumTo boxed vs unboxed.\n"
              "Expected shape: unboxed >> boxed at both the abstract-"
              "machine and native levels;\nboxed allocates ~4 heap "
              "objects per iteration, unboxed allocates none.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
