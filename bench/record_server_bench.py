#!/usr/bin/env python3
"""Assemble BENCH_server.json from bench_server's Google Benchmark JSON.

Usage:
  record_server_bench.py --server server.json --out BENCH_server.json

Reads the --benchmark_out_format=json file written by bench_server and
records the levityd latency/throughput trajectory: p50/p99 request
latency and req/s at 1, 8, and 64 concurrent clients. Exits non-zero
when any client count is missing or reported wrong answers / protocol
errors, so CI fails when the server stops being correct under load.
"""

import argparse
import json
import sys

NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
}

CLIENT_COUNTS = (1, 8, 64)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue  # skip aggregates; raw iterations carry the counters
        rows.append({
            "name": b["name"],
            "iterations": b["iterations"],
            "counters": {k: v for k, v in b.items()
                         if k not in NON_COUNTER_KEYS},
        })
    return rows, doc.get("context", {})


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--server", required=True)
    ap.add_argument("--out", required=True)
    args = ap.parse_args()

    rows, ctx = load(args.server)

    trajectory = {}
    failures = []
    for n in CLIENT_COUNTS:
        # Modifier suffixes (/process_time, /real_time) depend on the
        # benchmark library version; match the stem.
        stem = f"Server/Load/{n}"
        row = next((r for r in rows
                    if r["name"] == stem
                    or r["name"].startswith(stem + "/")), None)
        if row is None:
            failures.append(f"missing Server/Load/{n}")
            continue
        c = row["counters"]
        trajectory[str(n)] = {
            "req_per_s": round(c.get("req_per_s", 0), 1),
            "p50_us": round(c.get("p50_us", 0), 2),
            "p99_us": round(c.get("p99_us", 0), 2),
            "busy": c.get("busy", 0),
            "timeouts": c.get("timeouts", 0),
            # Worst single-run heap footprint any tenant saw (cells in
            # the executing backend's unit / bytes). Flat across client
            # counts by construction: runs recycle per-executor regions,
            # so load scales throughput, not memory.
            "peak_heap_cells": int(c.get("peak_heap_cells", 0)),
            "peak_heap_bytes": int(c.get("peak_heap_bytes", 0)),
        }
        if c.get("wrong_answers", 0) != 0:
            failures.append(f"{n} clients: wrong answers")
        if c.get("protocol_errors", 0) != 0:
            failures.append(f"{n} clients: protocol errors")

    doc = {
        "schema": "levity-bench-v1",
        "generator": "bench_server "
                     "(Release, --benchmark_out_format=json)",
        "date": ctx.get("date"),
        "host": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
        },
        "headline": {
            "claim": "the full load mix stays correct (zero wrong "
                     "answers, zero protocol errors) at every client "
                     "count; BUSY and fuel TIMEOUTs are typed traffic",
            "trajectory": trajectory,
        },
        "benchmarks": rows,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print(f"wrote {args.out}: " + ", ".join(
        f"{n}c {v['req_per_s']} req/s p99 {v['p99_us']}us"
        for n, v in trajectory.items()))
    if failures:
        print("error: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
