#!/usr/bin/env python3
"""Append one run to the BENCH_server.json latency/throughput trajectory.

Usage:
  record_server_bench.py --server server.json --build-dir build \
      --out BENCH_server.json [--allow-non-release]

Reads the --benchmark_out_format=json file written by bench_server and
appends the levityd latency/throughput run: p50/p99 request latency and
req/s at 1, 8, and 64 concurrent clients. The build type comes from the
build tree's CMakeCache.txt (see record_common); exits non-zero when any
client count is missing or reported wrong answers / protocol errors, so
CI fails when the server stops being correct under load.
"""

import argparse
import datetime
import sys

import record_common as rc

CLIENT_COUNTS = (1, 8, 64)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--server", required=True)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--allow-non-release", action="store_true")
    args = ap.parse_args()

    build_type = rc.resolve_build_type(args.build_dir)
    flagged = rc.check_build_type(build_type, args.allow_non_release)

    rows, ctx = rc.load_gbench(args.server)

    trajectory = {}
    failures = []
    for n in CLIENT_COUNTS:
        # Modifier suffixes (/process_time, /real_time) depend on the
        # benchmark library version; match the stem.
        stem = f"Server/Load/{n}"
        row = next((r for r in rows
                    if r["name"] == stem
                    or r["name"].startswith(stem + "/")), None)
        if row is None:
            failures.append(f"missing Server/Load/{n}")
            continue
        c = row["counters"]
        trajectory[str(n)] = {
            "req_per_s": round(c.get("req_per_s", 0), 1),
            "p50_us": round(c.get("p50_us", 0), 2),
            "p99_us": round(c.get("p99_us", 0), 2),
            "busy": c.get("busy", 0),
            "timeouts": c.get("timeouts", 0),
            # Worst single-run heap footprint any tenant saw (cells in
            # the executing backend's unit / bytes). Flat across client
            # counts by construction: runs recycle per-executor regions,
            # so load scales throughput, not memory.
            "peak_heap_cells": int(c.get("peak_heap_cells", 0)),
            "peak_heap_bytes": int(c.get("peak_heap_bytes", 0)),
        }
        if c.get("wrong_answers", 0) != 0:
            failures.append(f"{n} clients: wrong answers")
        if c.get("protocol_errors", 0) != 0:
            failures.append(f"{n} clients: protocol errors")

    run = {
        "date": ctx.get("date",
                        datetime.datetime.now(datetime.timezone.utc)
                        .isoformat(timespec="seconds")),
        "generator": "bench_server (--benchmark_out_format=json)",
        "host": rc.host_block(ctx, build_type),
        "headline": {
            "claim": "the full load mix stays correct (zero wrong "
                     "answers, zero protocol errors) at every client "
                     "count; BUSY and fuel TIMEOUTs are typed traffic",
            "trajectory": trajectory,
        },
        "benchmarks": rows,
    }
    if flagged:
        run["non_release_build"] = True

    runs = rc.append_run(args.out, run)

    print(f"wrote {args.out} run #{len(runs)}: " + ", ".join(
        f"{n}c {v['req_per_s']} req/s p99 {v['p99_us']}us"
        for n, v in trajectory.items()))
    if failures:
        print("error: " + "; ".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
