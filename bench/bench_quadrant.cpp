//===- bench_quadrant.cpp - E2: Figure 1's boxity/levity quadrant ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 1 from the Rep algebra (the classification is
// computed, not drawn), and benchmarks kind-to-convention derivation —
// the operation a code generator performs at every binder.
//
//===----------------------------------------------------------------------===//

#include "rep/CallingConv.h"
#include "rep/Rep.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace levity;

namespace {

void printFigure1() {
  RepContext RC;
  struct Entry {
    const char *Name;
    const Rep *R;
  };
  const Entry Catalog[] = {
      {"Int", RC.lifted()},          {"Bool", RC.lifted()},
      {"ByteArray#", RC.unlifted()}, {"Int#", RC.intRep()},
      {"Char#", RC.wordRep()},       {"Double#", RC.doubleRep()},
      {"(# Int, Int #)", RC.tuple({RC.lifted(), RC.lifted()})},
      {"(# #)", RC.unitTuple()},
  };

  std::printf("E2 (Figure 1): boxity and levity, computed from Rep:\n\n");
  std::printf("%-18s %-8s %-10s %s\n", "type", "boxed?", "lifted?",
              "registers");
  for (const Entry &E : Catalog) {
    std::vector<RegClass> Regs = E.R->registers();
    std::string RegStr = "[";
    for (size_t I = 0; I != Regs.size(); ++I) {
      if (I)
        RegStr += ",";
      RegStr += regClassName(Regs[I]);
    }
    RegStr += "]";
    std::printf("%-18s %-8s %-10s %s\n", E.Name,
                E.R->isBoxed() ? "yes" : "no",
                E.R->isLifted() ? "yes" : "no", RegStr.c_str());
  }
  std::printf("\nlifted+unboxed corner: uninhabited by construction "
              "(every Rep constructor is boxed or unlifted).\n\n");
}

void BM_FlattenRegisters(benchmark::State &State) {
  RepContext RC;
  const Rep *Nested = RC.tuple(
      {RC.lifted(), RC.tuple({RC.intRep(), RC.doubleRep()}), RC.wordRep()});
  std::vector<RegClass> Out;
  for (auto _ : State) {
    Out.clear();
    Nested->flattenRegisters(Out);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_ComputeCallingConv(benchmark::State &State) {
  RepContext RC;
  const Rep *Args[] = {RC.lifted(), RC.intRep(),
                       RC.tuple({RC.lifted(), RC.doubleRep()})};
  for (auto _ : State) {
    CallingConv CC = CallingConv::compute(Args, RC.intRep());
    benchmark::DoNotOptimize(&CC);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_SameConventionCheck(benchmark::State &State) {
  RepContext RC;
  const Rep *Nested =
      RC.tuple({RC.lifted(), RC.tuple({RC.lifted(), RC.lifted()})});
  const Rep *Flat = RC.tuple({RC.lifted(), RC.lifted(), RC.lifted()});
  for (auto _ : State) {
    bool Same = Nested->sameConvention(Flat);
    benchmark::DoNotOptimize(Same);
  }
}

BENCHMARK(BM_FlattenRegisters);
BENCHMARK(BM_ComputeCallingConv);
BENCHMARK(BM_SameConventionCheck);

} // namespace

int main(int argc, char **argv) {
  printFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
