//===- bench_inference.cpp - E7: rep unification vs sub-kinding -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Section 5.2 claims the rep-metavariable design is "actually a
// simplification over the previous sub-kinding story". This bench runs
// the same synthetic inference workload through both engines:
//
//   * Levity/…   — α :: TYPE ν metas solved by ordinary unification;
//   * Legacy/…   — bounded kind metas on the OpenKind lattice with
//     special-cased constraint propagation.
//
// The correctness deltas (myError losing magic, OpenKind leaks) are
// covered by tests/infer_test.cpp; this measures solver throughput and
// also runs the full surface pipeline as an end-to-end inference load.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "infer/SubKind.h"
#include "infer/Unify.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace levity;

namespace {

// Chain workload: α1 ~ α2 ~ … ~ αn ~ Int# (k-deep application spines
// produce exactly this shape).
void BM_LevityUnifyChain(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    core::CoreContext C;
    DiagnosticEngine D;
    infer::Unifier U(C, D);
    const core::Type *Prev = U.freshOpenMeta();
    const core::Type *First = Prev;
    for (int64_t I = 1; I != N; ++I) {
      const core::Type *Next = U.freshOpenMeta();
      U.unify(Prev, Next);
      Prev = Next;
    }
    U.unify(Prev, C.intHashTy());
    benchmark::DoNotOptimize(C.zonkType(First));
  }
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_LegacyBoundChain(benchmark::State &State) {
  int64_t N = State.range(0);
  for (auto _ : State) {
    core::CoreContext C;
    DiagnosticEngine D;
    infer::LegacyChecker L(C, D);
    std::vector<uint32_t> Metas;
    for (int64_t I = 0; I != N; ++I)
      Metas.push_back(L.freshMeta());
    // Propagate an upper bound down the chain, then default.
    for (uint32_t M : Metas)
      L.constrainUpper(M, infer::LegacyKind::Hash);
    L.defaultMetas();
    benchmark::DoNotOptimize(L.metaValue(Metas.back()));
  }
  State.SetItemsProcessed(State.iterations() * N);
}

// Rep-heavy unification: tuple reps with embedded metas.
void BM_LevityTupleReps(benchmark::State &State) {
  for (auto _ : State) {
    core::CoreContext C;
    DiagnosticEngine D;
    infer::Unifier U(C, D);
    std::vector<const core::RepTy *> Metas;
    for (int I = 0; I != 8; ++I)
      Metas.push_back(C.freshRepMeta());
    const core::RepTy *A = C.repTuple(Metas);
    std::vector<const core::RepTy *> Concrete(8, C.intRep());
    const core::RepTy *B = C.repTuple(Concrete);
    U.unifyRep(A, B);
    benchmark::DoNotOptimize(C.zonkRep(A));
  }
  State.SetItemsProcessed(State.iterations());
}

// End-to-end: infer a small module (the realistic inference workload).
void BM_PipelineInference(benchmark::State &State) {
  const char *Source =
      "compose3 f g h x = f (g (h x)) ;"
      "twice f x = f (f x) ;"
      "sumTo :: Int -> Int -> Int ;"
      "sumTo acc n = case n of { 0 -> acc ;"
      "                          _ -> sumTo (acc + n) (n - 1) } ;"
      "go = twice (\\n -> n + 1) (sumTo 0 3)";
  // Cache off: the point is to measure the front end, not the lookup.
  driver::CompileOptions Opts;
  Opts.EnableCache = false;
  driver::Session S(Opts);
  for (auto _ : State) {
    std::shared_ptr<driver::Compilation> Comp = S.compile(Source);
    benchmark::DoNotOptimize(Comp->ok());
  }
  State.SetItemsProcessed(State.iterations());
}

// The same compile served from the session cache — the facade's win for
// repeated workloads (service processes recompiling identical requests).
void BM_PipelineCached(benchmark::State &State) {
  const char *Source =
      "sumTo :: Int -> Int -> Int ;"
      "sumTo acc n = case n of { 0 -> acc ;"
      "                          _ -> sumTo (acc + n) (n - 1) } ;"
      "go = sumTo 0 3";
  driver::Session S;
  for (auto _ : State) {
    std::shared_ptr<driver::Compilation> Comp = S.compile(Source);
    benchmark::DoNotOptimize(Comp->ok());
  }
  State.counters["cache-hits"] = double(S.stats().CacheHits);
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(BM_LevityUnifyChain)->Arg(16)->Arg(256);
BENCHMARK(BM_LegacyBoundChain)->Arg(16)->Arg(256);
BENCHMARK(BM_LevityTupleReps);
BENCHMARK(BM_PipelineInference)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PipelineCached)->Unit(benchmark::kMicrosecond);

} // namespace

int main(int argc, char **argv) {
  std::printf(
      "E7 (Sections 3.2/5.2): inference with rep metavariables vs the "
      "legacy OpenKind baseline.\nCorrectness deltas (myError, OpenKind "
      "leaks) are asserted in tests/infer_test.cpp;\nthe numbers below "
      "show both solvers' throughput on identical constraint shapes.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
