"""Shared plumbing for the BENCH_*.json recorders.

Every recorder (record_bytecode_bench.py, record_server_bench.py,
record_driver_bench.py) goes through this module for three things:

  * load_gbench()      — normalize a --benchmark_out_format=json file to
                         {name, ns_per_op, iterations, counters} rows.
  * resolve_build_type() — the *real* CMAKE_BUILD_TYPE parsed out of the
                         build tree's CMakeCache.txt. Google Benchmark's
                         context.library_build_type describes how the
                         benchmark *library* was built, not this project
                         — recording it as the build type has produced
                         misleading "debug" entries before. Non-Release
                         recordings are refused unless explicitly forced,
                         and forced ones are loudly flagged in the run.
  * append_run()       — BENCH_*.json files are append-only trajectories:
                         {"schema": "levity-bench-v2", "runs": [...]},
                         oldest first. A recorder never rewrites history;
                         it appends one dated run, and CI gates read the
                         latest entry. A legacy v1 single-snapshot file is
                         converted in place by becoming runs[0].
"""

import json
import os
import re
import sys

NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
}

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

SCHEMA = "levity-bench-v2"


def load_gbench(path, suite=None):
    """Loads one Google Benchmark JSON file.

    Returns (rows, context): rows are the raw per-iteration entries
    normalized to ns/op plus their ledger counters; aggregates are
    skipped (the raw iterations carry the counters).
    """
    with open(path) as f:
        doc = json.load(f)
    rows = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue
        scale = TIME_UNIT_TO_NS[b.get("time_unit", "ns")]
        row = {
            "name": b["name"],
            "ns_per_op": round(b["real_time"] * scale, 1),
            "iterations": b["iterations"],
            "counters": {k: v for k, v in b.items()
                         if k not in NON_COUNTER_KEYS},
        }
        if suite is not None:
            row = {"suite": suite, **row}
        rows.append(row)
    return rows, doc.get("context", {})


def resolve_build_type(build_dir):
    """The project's CMAKE_BUILD_TYPE from <build_dir>/CMakeCache.txt,
    or None if it cannot be determined."""
    cache = os.path.join(build_dir, "CMakeCache.txt")
    try:
        with open(cache) as f:
            for line in f:
                m = re.match(r"CMAKE_BUILD_TYPE:\w+=(.*)$", line.strip())
                if m:
                    return m.group(1) or "unspecified"
    except OSError:
        return None
    return "unspecified"


def check_build_type(build_type, allow_non_release):
    """Refuses (exit 1) or loudly flags a non-Release recording.

    Returns True when the run must carry a non-release flag.
    """
    if build_type is None:
        print("error: cannot read CMAKE_BUILD_TYPE from the build "
              "directory's CMakeCache.txt; pass --build-dir pointing at "
              "the tree the benchmarks were built in", file=sys.stderr)
        sys.exit(1)
    if build_type.lower() == "release":
        return False
    msg = (f"benchmarks were built with CMAKE_BUILD_TYPE={build_type}, "
           "not Release — the numbers are not comparable to the "
           "recorded trajectory")
    if not allow_non_release:
        print(f"error: {msg} (pass --allow-non-release to record "
              "anyway, flagged)", file=sys.stderr)
        sys.exit(1)
    print(f"WARNING: {msg}; the run will be flagged "
          "non_release_build=true", file=sys.stderr)
    return True


def host_block(ctx, build_type):
    """The per-run host/build metadata block."""
    return {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "cmake_build_type": build_type,
        # Kept for honesty about what it is: the benchmark *library*'s
        # build flavor, which older recordings misread as the project's.
        "benchmark_library_build_type": ctx.get("library_build_type"),
    }


def load_trajectory(path):
    """All previously recorded runs at `path`, oldest first ([] if the
    file does not exist). A legacy v1 snapshot counts as one run."""
    if not os.path.exists(path):
        return []
    with open(path) as f:
        old = json.load(f)
    if old.get("schema") == SCHEMA:
        return old.get("runs", [])
    # Legacy v1 single snapshot: the whole document becomes runs[0].
    old.pop("schema", None)
    return [old]


def append_run(path, run):
    """Appends one run to the trajectory file and rewrites it in v2
    form. Returns the full run list after the append."""
    runs = load_trajectory(path)
    runs.append(run)
    doc = {
        "schema": SCHEMA,
        "note": "append-only trajectory, oldest run first; CI gates "
                "read the latest entry",
        "runs": runs,
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return runs
