//===- bench_classlib.cpp - E9: the Section 8.1 table ---------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Prints the recomputed 34-of-76 table (our catalog reconstruction) and
// benchmarks the analysis itself — 76 classes' worth of kind inference.
//
//===----------------------------------------------------------------------===//

#include "classlib/Analysis.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace levity::classlib;

namespace {

void BM_FullClassAnalysis(benchmark::State &State) {
  size_t Generalizable = 0;
  for (auto _ : State) {
    AnalysisReport R = runClassAnalysis();
    Generalizable = R.NumGeneralizable;
    benchmark::DoNotOptimize(R.NumClasses);
  }
  State.counters["generalizable"] = double(Generalizable);
  State.SetItemsProcessed(State.iterations() * 76);
}

BENCHMARK(BM_FullClassAnalysis)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  AnalysisReport R = runClassAnalysis();
  std::printf("%s\n", formatReport(R).c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
