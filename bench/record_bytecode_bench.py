#!/usr/bin/env python3
"""Append one run to the BENCH_bytecode.json perf trajectory.

Usage:
  record_bytecode_bench.py --sumto sumto.json --machine machine.json \
      --build-dir build --out BENCH_bytecode.json \
      [--min-speedup 5.0] [--allow-non-release]

Reads the --benchmark_out_format=json files written by bench_sumto and
bench_machine, normalizes every entry to ns/op plus its ledger counters,
and appends a dated run to the trajectory (see record_common.append_run).
The build type is taken from the build tree's CMakeCache.txt, never from
the benchmark library's context; non-Release recordings are refused
unless --allow-non-release flags them.

Two CI gates, both evaluated on the new run:
  * speed   — Machine/SumToUnboxed over Bytecode/SumToUnboxed must stay
              >= --min-speedup at every loop size.
  * allocs  — Bytecode/SumToUnboxed's heap-allocs/loop must not exceed
              the lowest value any previous run recorded: the VM ledger
              is deterministic, so a single extra allocation in the
              unboxed loop is a hard regression, not noise.
"""

import argparse
import datetime
import sys

import record_common as rc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--sumto", required=True)
    ap.add_argument("--machine", required=True)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--min-speedup", type=float, default=5.0)
    ap.add_argument("--allow-non-release", action="store_true")
    args = ap.parse_args()

    build_type = rc.resolve_build_type(args.build_dir)
    flagged = rc.check_build_type(build_type, args.allow_non_release)

    sumto, ctx = rc.load_gbench(args.sumto, "bench_sumto")
    machine, _ = rc.load_gbench(args.machine, "bench_machine")
    rows = sumto + machine

    def ns(name):
        return next((r["ns_per_op"] for r in rows if r["name"] == name),
                    None)

    speedup = {}
    for arg in ("1000", "10000"):
        m = ns(f"Machine/SumToUnboxed/{arg}")
        b = ns(f"Bytecode/SumToUnboxed/{arg}")
        if m is not None and b is not None and b > 0:
            speedup[f"SumToUnboxed/{arg}"] = round(m / b, 2)

    prior = rc.load_trajectory(args.out)

    def unboxed_allocs(run_rows):
        out = {}
        for r in run_rows:
            if r.get("name", "").startswith("Bytecode/SumToUnboxed/"):
                v = r.get("counters", {}).get("heap-allocs/loop")
                if v is not None:
                    out[r["name"]] = v
        return out

    new_allocs = unboxed_allocs(rows)
    floor = {}
    for run in prior:
        for name, v in unboxed_allocs(run.get("benchmarks", [])).items():
            floor[name] = min(floor.get(name, v), v)

    # Informational: ns/op against the oldest recorded run of the same
    # benchmark (same-class CI machines, so the ratio tracks the real
    # trajectory; the enforced gates are the relative ones above).
    vs_first = {}
    if prior:
        first = {r["name"]: r["ns_per_op"]
                 for r in prior[0].get("benchmarks", [])
                 if "ns_per_op" in r}
        for arg in ("1000", "10000"):
            name = f"Bytecode/SumToUnboxed/{arg}"
            b = ns(name)
            if name in first and b:
                vs_first[name] = round(first[name] / b, 2)

    run = {
        "date": ctx.get("date",
                        datetime.datetime.now(datetime.timezone.utc)
                        .isoformat(timespec="seconds")),
        "generator": "bench_sumto + bench_machine "
                     "(--benchmark_out_format=json)",
        "host": rc.host_block(ctx, build_type),
        "headline": {
            "claim": "Bytecode/SumToUnboxed runs >= "
                     f"{args.min_speedup}x fewer ns/op than "
                     "Machine/SumToUnboxed, and the unboxed loop's "
                     "heap-allocs/loop never exceeds the recorded floor",
            "machine_over_bytecode_speedup": speedup,
            "unboxed_heap_allocs_per_loop": new_allocs,
        },
        "benchmarks": rows,
    }
    if vs_first:
        run["headline"]["bytecode_speedup_vs_first_recorded_run"] = \
            vs_first
    if flagged:
        run["non_release_build"] = True

    runs = rc.append_run(args.out, run)

    if not speedup:
        print("error: no Machine/Bytecode SumToUnboxed pair found",
              file=sys.stderr)
        return 1
    print(f"wrote {args.out} run #{len(runs)}: "
          + ", ".join(f"{k} {v}x" for k, v in speedup.items()))
    if vs_first:
        print("vs first recorded run: "
              + ", ".join(f"{k} {v}x" for k, v in vs_first.items()))

    failures = []
    bad = {k: v for k, v in speedup.items() if v < args.min_speedup}
    if bad:
        failures.append(f"speedup below {args.min_speedup}x bar: {bad}")
    for name, limit in sorted(floor.items()):
        v = new_allocs.get(name)
        if v is None:
            failures.append(f"{name}: heap-allocs/loop missing "
                            f"(recorded floor {limit})")
        elif v > limit:
            failures.append(f"{name}: heap-allocs/loop regressed to "
                            f"{v} (recorded floor {limit})")
    if failures:
        for f in failures:
            print(f"error: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
