#!/usr/bin/env python3
"""Assemble BENCH_bytecode.json from Google Benchmark JSON output.

Usage:
  record_bytecode_bench.py --sumto sumto.json --machine machine.json \
      --out BENCH_bytecode.json [--min-speedup 5.0]

Reads the --benchmark_out_format=json files written by bench_sumto and
bench_machine, normalizes every entry to ns/op plus its ledger counters,
and records the headline Machine/SumToUnboxed over Bytecode/SumToUnboxed
speedup. Exits non-zero if the speedup is below --min-speedup, so CI
fails when the bytecode tier regresses below the PR's acceptance bar.
"""

import argparse
import json
import sys

NON_COUNTER_KEYS = {
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
}

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path, suite):
    with open(path) as f:
        doc = json.load(f)
    rows = []
    for b in doc.get("benchmarks", []):
        if b.get("run_type") != "iteration":
            continue  # skip aggregates; raw iterations carry the counters
        scale = TIME_UNIT_TO_NS[b.get("time_unit", "ns")]
        rows.append({
            "suite": suite,
            "name": b["name"],
            "ns_per_op": round(b["real_time"] * scale, 1),
            "iterations": b["iterations"],
            "counters": {k: v for k, v in b.items()
                         if k not in NON_COUNTER_KEYS},
        })
    return rows, doc.get("context", {})


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--sumto", required=True)
    ap.add_argument("--machine", required=True)
    ap.add_argument("--out", required=True)
    ap.add_argument("--min-speedup", type=float, default=5.0)
    args = ap.parse_args()

    sumto, ctx = load(args.sumto, "bench_sumto")
    machine, _ = load(args.machine, "bench_machine")
    rows = sumto + machine

    def ns(name):
        return next((r["ns_per_op"] for r in rows if r["name"] == name),
                    None)

    speedup = {}
    for arg in ("1000", "10000"):
        m = ns(f"Machine/SumToUnboxed/{arg}")
        b = ns(f"Bytecode/SumToUnboxed/{arg}")
        if m is not None and b is not None and b > 0:
            speedup[f"SumToUnboxed/{arg}"] = round(m / b, 2)

    doc = {
        "schema": "levity-bench-v1",
        "generator": "bench_sumto + bench_machine "
                     "(Release, --benchmark_out_format=json)",
        "date": ctx.get("date"),
        "host": {
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
        },
        "headline": {
            "claim": "Bytecode/SumToUnboxed runs >= "
                     f"{args.min_speedup}x fewer ns/op than "
                     "Machine/SumToUnboxed",
            "machine_over_bytecode_speedup": speedup,
        },
        "benchmarks": rows,
    }
    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    if not speedup:
        print("error: no Machine/Bytecode SumToUnboxed pair found",
              file=sys.stderr)
        return 1
    print(f"wrote {args.out}: "
          + ", ".join(f"{k} {v}x" for k, v in speedup.items()))
    bad = {k: v for k, v in speedup.items() if v < args.min_speedup}
    if bad:
        print(f"error: speedup below {args.min_speedup}x bar: {bad}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
