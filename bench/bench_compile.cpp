//===- bench_compile.cpp - E6: compilation L->M (Figure 7) ----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Throughput of the type-directed ANF compiler on generated well-typed
// terms, plus the end-to-end compile+run and the joinability oracle that
// backs the Simulation theorem's property tests.
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"
#include "anf/Joinability.h"
#include "lcalc/Eval.h"
#include "lcalc/Gen.h"
#include "mcalc/Machine.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

using namespace levity;

namespace {

struct Fixture {
  lcalc::LContext L;
  mcalc::MContext MC;
  anf::Compiler Comp{L, MC};
  std::vector<lcalc::TermGen::Generated> Terms;

  Fixture() {
    lcalc::TermGen Gen(L, 77);
    for (int I = 0; I != 256; ++I)
      Terms.push_back(Gen.generate());
  }
};

Fixture &fixture() {
  static Fixture F;
  return F;
}

void BM_CompileToANF(benchmark::State &State) {
  Fixture &F = fixture();
  size_t I = 0;
  for (auto _ : State) {
    Result<const mcalc::Term *> T =
        F.Comp.compileClosed(F.Terms[I++ % F.Terms.size()].E);
    benchmark::DoNotOptimize(&T);
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_CompileAndRun(benchmark::State &State) {
  Fixture &F = fixture();
  mcalc::Machine M(F.MC);
  size_t I = 0;
  for (auto _ : State) {
    Result<const mcalc::Term *> T =
        F.Comp.compileClosed(F.Terms[I++ % F.Terms.size()].E);
    if (T) {
      mcalc::MachineResult R = M.run(*T, 100000);
      benchmark::DoNotOptimize(R.Value);
    }
  }
  State.SetItemsProcessed(State.iterations());
}

void BM_JoinabilityOracle(benchmark::State &State) {
  Fixture &F = fixture();
  anf::JoinOracle Oracle(F.L, F.MC);
  size_t I = 0;
  for (auto _ : State) {
    const auto &G = F.Terms[I++ % F.Terms.size()];
    Result<const mcalc::Term *> T = F.Comp.compileClosed(G.E);
    if (T) {
      anf::JoinResult J = Oracle.joinable(G.Ty, *T, *T);
      benchmark::DoNotOptimize(&J);
    }
  }
  State.SetItemsProcessed(State.iterations());
}

BENCHMARK(BM_CompileToANF);
BENCHMARK(BM_CompileAndRun);
BENCHMARK(BM_JoinabilityOracle);

} // namespace

int main(int argc, char **argv) {
  std::printf("E6 (Figure 7): ANF compilation throughput; the "
              "Compilation/Simulation theorems are property-tested in "
              "ctest.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
