//===- quickstart.cpp - Five-minute tour of the levity library ------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Compiles and runs a small program in the surface language, then shows
// the kind machinery underneath: kinds as calling conventions, rep
// metavariable inference, and the two levity restrictions.
//
//===----------------------------------------------------------------------===//

#include "rep/CallingConv.h"
#include "runtime/Interp.h"
#include "surface/Elaborate.h"
#include "surface/Parser.h"

#include <cstdio>

using namespace levity;

int main() {
  std::printf("== levity quickstart ==\n\n");

  // 1. Compile a program that mixes boxed and unboxed code.
  const char *Source =
      "square :: Int# -> Int# ;"
      "square x = x *# x ;"
      "answer = square 6# +# 6#";

  core::CoreContext C;
  DiagnosticEngine Diags;
  surface::Elaborator Elab(C, Diags);
  surface::Lexer L(Source, Diags);
  surface::Parser P(L.lexAll(), Diags);
  std::optional<surface::ElabOutput> Out = Elab.run(P.parseModule());
  if (!Out) {
    std::printf("compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }

  runtime::Interp I(C);
  I.loadProgram(Out->Program);
  runtime::InterpResult R = I.eval(C.var(C.sym("answer")));
  std::printf("answer = %s (heap allocations: %llu)\n\n",
              I.show(R.V).c_str(),
              static_cast<unsigned long long>(
                  R.Stats.heapAllocations()));

  // 2. Kinds are calling conventions (Section 4).
  RepContext RC;
  const Rep *Args[] = {RC.intRep(), RC.intRep()};
  CallingConv CC = CallingConv::compute(Args, RC.intRep());
  std::printf("square's convention, derived from its kind: %s\n",
              CC.str().c_str());
  const Rep *Tuple = RC.tuple({RC.intRep(), RC.lifted()});
  std::printf("(# Int#, Bool #) fans out over registers:    [%s]\n\n",
              Tuple->str().c_str());

  // 3. Inference never invents levity polymorphism (Section 5.2).
  std::printf("inferred type of `f x = x`:  %s\n",
              [&] {
                core::CoreContext C2;
                DiagnosticEngine D2;
                surface::Elaborator E2(C2, D2);
                surface::Lexer L2("f x = x", D2);
                surface::Parser P2(L2.lexAll(), D2);
                E2.run(P2.parseModule());
                const core::Type *T = E2.globalType("f");
                return T ? T->str() : std::string("<error>");
              }()
                  .c_str());

  // 4. Declared levity polymorphism is checked — and restricted.
  {
    core::CoreContext C3;
    DiagnosticEngine D3;
    surface::Elaborator E3(C3, D3);
    surface::Lexer L3("bad :: forall r (a :: TYPE r). a -> a ;"
                      "bad x = x",
                      D3);
    surface::Parser P3(L3.lexAll(), D3);
    if (!E3.run(P3.parseModule()))
      std::printf("\n`bad :: forall r (a :: TYPE r). a -> a` rejected:\n%s",
                  D3.str().c_str());
  }

  std::printf("\nSee examples/sum_to and examples/levity_classes next.\n");
  return 0;
}
