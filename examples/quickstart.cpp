//===- quickstart.cpp - Five-minute tour of the levity library ------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Compiles and runs a small program through the driver::Session facade —
// on both backends — then shows the kind machinery underneath: kinds as
// calling conventions, rep metavariable inference, and the two levity
// restrictions.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"
#include "rep/CallingConv.h"

#include <cstdio>

using namespace levity;

int main() {
  std::printf("== levity quickstart ==\n\n");

  // 1. Compile a program that mixes boxed and unboxed code. The Session
  //    runs lex -> parse -> elaborate -> levity-check and hands back a
  //    Compilation with diagnostics, timings, and selectable backends.
  driver::Session S;
  auto Comp = S.compile(
      "square :: Int# -> Int# ;"
      "square x = x *# x ;"
      "answer = square 6# +# 6#");
  if (!Comp->ok()) {
    std::printf("compilation failed:\n%s", Comp->diagText().c_str());
    return 1;
  }

  driver::RunResult Tree = Comp->run("answer");
  std::printf("answer = %s (tree interpreter, heap allocations: %llu)\n",
              Tree.Display.c_str(),
              static_cast<unsigned long long>(Tree.allocations()));

  // The same compiled program, lowered through the paper's formal chain
  // (core -> L -> ANF -> the Figure 6 abstract machine).
  driver::RunResult Mach =
      Comp->run("answer", driver::Backend::AbstractMachine);
  std::printf("answer = %s (abstract machine,  heap allocations: %llu)\n\n",
              Mach.Display.c_str(),
              static_cast<unsigned long long>(Mach.allocations()));

  std::printf("pipeline stages:\n%s\n", Comp->timingReport().c_str());

  // 2. Kinds are calling conventions (Section 4).
  RepContext RC;
  const Rep *Args[] = {RC.intRep(), RC.intRep()};
  CallingConv CC = CallingConv::compute(Args, RC.intRep());
  std::printf("square's convention, derived from its kind: %s\n",
              CC.str().c_str());
  const Rep *Tuple = RC.tuple({RC.intRep(), RC.lifted()});
  std::printf("(# Int#, Bool #) fans out over registers:    [%s]\n\n",
              Tuple->str().c_str());

  // 3. Inference never invents levity polymorphism (Section 5.2).
  {
    auto Inferred = S.compile("f x = x");
    const core::Type *T = Inferred->globalType("f");
    std::printf("inferred type of `f x = x`:  %s\n",
                T ? T->str().c_str() : "<error>");
  }

  // 4. Declared levity polymorphism is checked — and restricted.
  {
    auto Bad = S.compile("bad :: forall r (a :: TYPE r). a -> a ;"
                         "bad x = x");
    if (!Bad->ok())
      std::printf("\n`bad :: forall r (a :: TYPE r). a -> a` rejected:\n%s",
                  Bad->diagText().c_str());
  }

  std::printf("\nSee examples/sum_to and examples/levity_classes next.\n");
  return 0;
}
