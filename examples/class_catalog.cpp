//===- class_catalog.cpp - Print the Section 8.1 analysis table -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Runs the Section 8.1 class-generalizability analysis through the
// driver::Session facade, so it rides the same stage-timing report as
// every other pipeline trip.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <cstdio>

int main() {
  levity::driver::Session S;
  levity::driver::CatalogAnalysis A = S.analyzeCatalog();
  std::printf("%s", A.table().c_str());
  std::printf("\nanalysis stages:\n%s", A.timingReport().c_str());
  return A.ok() ? 0 : 1;
}
