//===- class_catalog.cpp - Print the Section 8.1 analysis table -----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//

#include "classlib/Analysis.h"

#include <cstdio>

int main() {
  levity::classlib::AnalysisReport R =
      levity::classlib::runClassAnalysis();
  std::printf("%s", levity::classlib::formatReport(R).c_str());
  return R.NumClasses == 0 ? 1 : 0;
}
