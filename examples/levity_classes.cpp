//===- levity_classes.cpp - Section 7.3's Num over TYPE r -----------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// One class, three calling conventions: Num (a :: TYPE r) with instances
// at Int (boxed), Int# (integer registers), and Double# (float
// registers); plus the abs1/abs2 η-expansion subtlety. All through the
// driver::Session facade.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <cstdio>
#include <string>

using namespace levity;

static const char *Prelude =
    "class Num (a :: TYPE r) where {"
    "  (+) :: a -> a -> a ;"
    "  abs :: a -> a"
    "} ;"
    "instance Num Int# where {"
    "  (+) x y = x +# y ;"
    "  abs n = case n <# 0# of { 1# -> negateInt# n ; _ -> n }"
    "} ;"
    "instance Num Int where {"
    "  (+) a b = case a of { I# x -> case b of { I# y -> I# (x +# y) } } ;"
    "  abs n = case n < 0 of { True -> 0 - n ; False -> n }"
    "} ;"
    "instance Num Double# where {"
    "  (+) x y = x +## y ;"
    "  abs d = case d <## 0.0## of { 1# -> negateDouble# d ; _ -> d }"
    "} ;";

int main() {
  std::printf("== class Num (a :: TYPE r) — Section 7.3 ==\n\n");

  driver::Session S;
  auto Comp = S.compile(std::string(Prelude) +
                        "atIntHash = 3# + 4# ;"
                        "atInt = 3 + 4 ;"
                        "atDouble = 2.5## + 0.75## ;"
                        "absUnboxed = abs (0# -# 42#) ;"
                        "abs1 :: forall r (a :: TYPE r). Num a => a -> a ;"
                        "abs1 = abs ;"
                        "viaAbs1 = abs1 (0# -# 7#)");
  if (!Comp->ok()) {
    std::printf("compilation failed:\n%s", Comp->diagText().c_str());
    return 1;
  }

  for (const char *Name : {"atIntHash", "atInt", "atDouble", "absUnboxed",
                           "viaAbs1"}) {
    driver::RunResult R = Comp->run(Name);
    std::printf("  %-10s = %s\n", Name, R.Display.c_str());
  }

  // The method's generalized type, as the paper displays it.
  std::printf("\n(+)'s selector type: forall (r :: Rep) (a :: TYPE r). "
              "Num a => a -> a -> a\n");

  // abs2 — the η-expansion that cannot compile (arity 2 binds a
  // levity-polymorphic x).
  {
    auto Bad = S.compile(std::string(Prelude) +
                         "abs2 :: forall r (a :: TYPE r). Num a => a -> a ;"
                         "abs2 x = abs x");
    if (!Bad->ok()) {
      std::printf("\nabs2 x = abs x is rejected (η-equivalent to abs1!):\n");
      std::printf("%s", Bad->diagText().c_str());
    }
  }
  return 0;
}
