//===- formal_pipeline.cpp - The Section 6 calculi, interactively ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Builds an L term (Figure 2), typechecks it (Figure 3), steps it with
// the type-directed semantics (Figure 4), compiles it to M (Figure 7)
// and runs the abstract machine (Figure 6) — the paper's whole formal
// development, on one example.
//
//===----------------------------------------------------------------------===//

#include "anf/Compile.h"
#include "lcalc/Eval.h"
#include "mcalc/Machine.h"

#include <cstdio>

using namespace levity;
using namespace levity::lcalc;

int main() {
  LContext L;
  TypeChecker TC(L);
  Evaluator Ev(L);

  // gen = Λr. Λa:TYPE r. λf:Int → a. f I#[7] — one levity-polymorphic
  // source function, instantiated at both calling conventions.
  Symbol R = L.sym("r"), A = L.sym("a"), F = L.sym("f");
  const Expr *Gen = L.repLam(
      R, L.tyLam(A, LKind::typeVar(R),
                 L.lam(F, L.arrowTy(L.intTy(), L.varTy(A)),
                       L.app(L.var(F), L.con(L.intLit(7))))));

  std::printf("== the L term ==\n%s\n", Gen->str().c_str());
  Result<const Type *> GenTy = TC.typeOfClosed(Gen);
  std::printf(" : %s\n\n", GenTy ? (*GenTy)->str().c_str() : "<ill-typed>");

  // Boxed instantiation: id at Int.
  const Expr *AtP =
      L.app(L.tyApp(L.repApp(Gen, RuntimeRep::pointer()), L.intTy()),
            L.lam(L.sym("n"), L.intTy(), L.var(L.sym("n"))));
  // Unboxed instantiation: unbox at Int#.
  const Expr *AtI =
      L.app(L.tyApp(L.repApp(Gen, RuntimeRep::integer()), L.intHashTy()),
            L.lam(L.sym("n"), L.intTy(),
                  L.caseOf(L.var(L.sym("n")), L.sym("m"),
                           L.var(L.sym("m")))));

  for (const auto &[Name, E] : {std::pair<const char *, const Expr *>{
                                    "instantiated at P/Int", AtP},
                                {"instantiated at I/Int#", AtI}}) {
    std::printf("== %s ==\n", Name);
    Result<const Type *> Ty = TC.typeOfClosed(E);
    std::printf("L type: %s\n", Ty ? (*Ty)->str().c_str() : "<error>");

    // Small-step trace (first few rules).
    const Expr *Cur = E;
    TypeEnv Env;
    for (int Step = 0; Step != 4; ++Step) {
      StepResult S = Ev.step(Env, Cur);
      if (S.Status != StepStatus::Stepped)
        break;
      std::printf("  --%s--> %s\n", std::string(S.Rule).c_str(),
                  S.Next->str().c_str());
      Cur = S.Next;
    }

    // Compile to M (Figure 7) and run the machine (Figure 6).
    mcalc::MContext MC;
    anf::Compiler Comp(L, MC);
    Result<const mcalc::Term *> T = Comp.compileClosed(E);
    if (!T) {
      std::printf("compilation failed: %s\n", T.error().c_str());
      continue;
    }
    std::printf("M code: %s\n", (*T)->str().c_str());
    mcalc::Machine M(MC);
    mcalc::MachineResult MR = M.run(*T);
    std::printf("machine result: %s  (steps=%llu, thunks=%llu, "
                "ptr-calls=%llu, int-calls=%llu)\n\n",
                MR.Value ? MR.Value->str().c_str() : "<bottom>",
                (unsigned long long)MR.Stats.Steps,
                (unsigned long long)MR.Stats.Allocations,
                (unsigned long long)MR.Stats.BetaPtr,
                (unsigned long long)MR.Stats.BetaInt);
  }

  // The restriction in action: a levity-polymorphic binder cannot
  // typecheck (E_LAM's highlighted premise).
  const Expr *Bad = L.repLam(
      R, L.tyLam(A, LKind::typeVar(R),
                 L.lam(L.sym("x"), L.varTy(A), L.var(L.sym("x")))));
  Result<const Type *> BadTy = TC.typeOfClosed(Bad);
  std::printf("== the restriction (Section 5.1) ==\n%s\nrejected: %s\n",
              Bad->str().c_str(),
              BadTy ? "<unexpectedly accepted>" : BadTy.error().c_str());
  return 0;
}
