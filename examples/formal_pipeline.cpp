//===- formal_pipeline.cpp - The Section 6 calculi, interactively ---------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Builds an L term (Figure 2), typechecks it (Figure 3), steps it with
// the type-directed semantics (Figure 4), compiles it to M (Figure 7)
// and runs the abstract machine (Figure 6) — the paper's whole formal
// development, on one example, through the same driver::Session facade
// the surface pipeline uses.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <cstdio>

using namespace levity;
using namespace levity::lcalc;

namespace {

// gen = Λr. Λa:TYPE r. λf:Int → a. f I#[7] — one levity-polymorphic
// source function, instantiated at both calling conventions.
const Expr *buildGen(LContext &L) {
  Symbol R = L.sym("r"), A = L.sym("a"), F = L.sym("f");
  return L.repLam(
      R, L.tyLam(A, LKind::typeVar(R),
                 L.lam(F, L.arrowTy(L.intTy(), L.varTy(A)),
                       L.app(L.var(F), L.con(L.intLit(7))))));
}

} // namespace

int main() {
  driver::Session S;

  // The polymorphic function itself, typechecked through the facade.
  auto Gen = S.compileFormal(buildGen);
  std::printf("== the L term ==\n%s\n", Gen->formalTerm()->str().c_str());
  Result<const Type *> GenTy = Gen->formalType();
  std::printf(" : %s\n\n", GenTy ? (*GenTy)->str().c_str() : "<ill-typed>");

  struct Variant {
    const char *Name;
    const Expr *(*Build)(LContext &);
  };
  const Variant Variants[] = {
      // Boxed instantiation: id at Int.
      {"instantiated at P/Int",
       [](LContext &L) {
         return L.app(
             L.tyApp(L.repApp(buildGen(L), RuntimeRep::pointer()),
                     L.intTy()),
             L.lam(L.sym("n"), L.intTy(), L.var(L.sym("n"))));
       }},
      // Unboxed instantiation: unbox at Int#.
      {"instantiated at I/Int#",
       [](LContext &L) {
         return L.app(
             L.tyApp(L.repApp(buildGen(L), RuntimeRep::integer()),
                     L.intHashTy()),
             L.lam(L.sym("n"), L.intTy(),
                   L.caseOf(L.var(L.sym("n")), L.sym("m"),
                            L.var(L.sym("m")))));
       }},
  };

  for (const Variant &V : Variants) {
    std::printf("== %s ==\n", V.Name);
    auto Comp = S.compileFormal(V.Build);
    Result<const Type *> Ty = Comp->formalType();
    std::printf("L type: %s\n", Ty ? (*Ty)->str().c_str() : "<error>");

    // Small-step trace (first few rules) — Figure 4, driven directly so
    // the rule names are visible.
    Evaluator Ev(Comp->lctx());
    const Expr *Cur = Comp->formalTerm();
    TypeEnv Env;
    for (int Step = 0; Step != 4; ++Step) {
      StepResult R = Ev.step(Env, Cur);
      if (R.Status != StepStatus::Stepped)
        break;
      std::printf("  --%s--> %s\n", std::string(R.Rule).c_str(),
                  R.Next->str().c_str());
      Cur = R.Next;
    }

    // Compile to M (Figure 7) and run the machine (Figure 6) — one
    // facade call.
    driver::RunResult MR =
        Comp->run(driver::Backend::AbstractMachine);
    if (MR.St == driver::RunResult::Status::Unsupported) {
      std::printf("compilation failed: %s\n", MR.Error.c_str());
      continue;
    }
    std::printf("machine result: %s  (steps=%llu, thunks=%llu, "
                "ptr-calls=%llu, int-calls=%llu)\n\n",
                MR.ok() ? MR.Display.c_str() : "<bottom>",
                (unsigned long long)MR.Machine.Steps,
                (unsigned long long)MR.Machine.Allocations,
                (unsigned long long)MR.Machine.BetaPtr,
                (unsigned long long)MR.Machine.BetaInt);
  }

  // The restriction in action: a levity-polymorphic binder cannot
  // typecheck (E_LAM's highlighted premise).
  auto Bad = S.compileFormal([](LContext &L) {
    Symbol R = L.sym("r"), A = L.sym("a");
    return L.repLam(
        R, L.tyLam(A, LKind::typeVar(R),
                   L.lam(L.sym("x"), L.varTy(A), L.var(L.sym("x")))));
  });
  Result<const Type *> BadTy = Bad->formalType();
  std::printf("== the restriction (Section 5.1) ==\n%s\nrejected: %s\n",
              Bad->formalTerm()->str().c_str(),
              BadTy ? "<unexpectedly accepted>" : BadTy.error().c_str());
  return 0;
}
