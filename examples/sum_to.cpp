//===- sum_to.cpp - Section 2.1's boxed vs unboxed loop, end to end -------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Runs the paper's sumTo at both representations through the full
// pipeline and prints the machine-cost ledger: the boxed loop's thunks
// and boxes versus the unboxed loop's zero heap traffic.
//
//===----------------------------------------------------------------------===//

#include "runtime/Interp.h"
#include "surface/Elaborate.h"
#include "surface/Parser.h"

#include <chrono>
#include <cstdio>

using namespace levity;

int main() {
  const char *Source =
      "sumTo :: Int -> Int -> Int ;"
      "sumTo acc n = case n of {"
      "  0 -> acc ;"
      "  _ -> sumTo (acc + n) (n - 1)"
      "} ;"
      "sumToH :: Int# -> Int# -> Int# ;"
      "sumToH acc n = case n of {"
      "  0# -> acc ;"
      "  _  -> sumToH (acc +# n) (n -# 1#)"
      "} ;"
      "boxed = sumTo 0 20000 ;"
      "unboxed = sumToH 0# 20000#";

  core::CoreContext C;
  DiagnosticEngine Diags;
  surface::Elaborator Elab(C, Diags);
  surface::Lexer L(Source, Diags);
  surface::Parser P(L.lexAll(), Diags);
  std::optional<surface::ElabOutput> Out = Elab.run(P.parseModule());
  if (!Out) {
    std::printf("compilation failed:\n%s", Diags.str().c_str());
    return 1;
  }
  runtime::Interp I(C);
  I.loadProgram(Out->Program);

  auto Run = [&](const char *Name) {
    auto Start = std::chrono::steady_clock::now();
    runtime::InterpResult R = I.eval(C.var(C.sym(Name)));
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    std::printf("%-8s = %-12s  %8.2f ms  thunks=%-8llu boxes=%-8llu "
                "forces=%-8llu heap-total=%llu\n",
                Name, I.show(R.V).c_str(), Ms,
                (unsigned long long)R.Stats.ThunkAllocs,
                (unsigned long long)R.Stats.BoxAllocs,
                (unsigned long long)R.Stats.ThunkForces,
                (unsigned long long)R.Stats.heapAllocations());
    return R.Stats;
  };

  std::printf("== sumTo over 20000 iterations (Section 2.1) ==\n\n");
  runtime::InterpStats Boxed = Run("boxed");
  runtime::InterpStats Unboxed = Run("unboxed");

  std::printf("\nThe boxed loop allocates %llu heap objects; the unboxed "
              "loop allocates %llu.\n",
              (unsigned long long)(Boxed.ThunkAllocs + Boxed.BoxAllocs),
              (unsigned long long)(Unboxed.ThunkAllocs +
                                   Unboxed.BoxAllocs));
  std::printf("That gap is the paper's \"enormous\" performance "
              "difference — see bench/bench_sumto for the\n"
              "native-lowered comparison reproducing the 10M-iteration "
              "numbers.\n");
  return 0;
}
