//===- sum_to.cpp - Section 2.1's boxed vs unboxed loop, end to end -------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// Runs the paper's sumTo at both representations through the
// driver::Session facade and prints the machine-cost ledger: the boxed
// loop's thunks and boxes versus the unboxed loop's zero heap traffic.
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

#include <cstdio>

using namespace levity;

int main() {
  driver::Session S;
  auto Comp = S.compile(
      "sumTo :: Int -> Int -> Int ;"
      "sumTo acc n = case n of {"
      "  0 -> acc ;"
      "  _ -> sumTo (acc + n) (n - 1)"
      "} ;"
      "sumToH :: Int# -> Int# -> Int# ;"
      "sumToH acc n = case n of {"
      "  0# -> acc ;"
      "  _  -> sumToH (acc +# n) (n -# 1#)"
      "} ;"
      "boxed = sumTo 0 20000 ;"
      "unboxed = sumToH 0# 20000#");
  if (!Comp->ok()) {
    std::printf("compilation failed:\n%s", Comp->diagText().c_str());
    return 1;
  }

  auto Run = [&](const char *Name) {
    driver::RunResult R = Comp->run(Name);
    std::printf("%-8s = %-12s  %8.2f ms  thunks=%-8llu boxes=%-8llu "
                "forces=%-8llu heap-total=%llu\n",
                Name, R.Display.c_str(), R.Millis,
                (unsigned long long)R.Interp.ThunkAllocs,
                (unsigned long long)R.Interp.BoxAllocs,
                (unsigned long long)R.Interp.ThunkForces,
                (unsigned long long)R.allocations());
    return R.Interp;
  };

  std::printf("== sumTo over 20000 iterations (Section 2.1) ==\n\n");
  runtime::InterpStats Boxed = Run("boxed");
  runtime::InterpStats Unboxed = Run("unboxed");

  std::printf("\nThe boxed loop allocates %llu heap objects; the unboxed "
              "loop allocates %llu.\n",
              (unsigned long long)(Boxed.ThunkAllocs + Boxed.BoxAllocs),
              (unsigned long long)(Unboxed.ThunkAllocs +
                                   Unboxed.BoxAllocs));

  // The same loop on the formal backend: core → L (fix) → ANF → the
  // Figure 6 machine, which ties the recursion through a heap knot
  // (RECLET). Identical value, and the machine's own ledger shows the
  // unboxed loop allocating nothing per iteration.
  driver::RunResult M =
      Comp->run("unboxed", driver::Backend::AbstractMachine);
  if (M.ok())
    std::printf("\nabstract machine: unboxed = %-12s %8.2f ms  "
                "machine-steps=%llu heap-allocs=%llu knots=%llu\n",
                M.Display.c_str(), M.Millis,
                (unsigned long long)M.Machine.Steps,
                (unsigned long long)M.Machine.Allocations,
                (unsigned long long)M.Machine.Knots);
  else
    std::printf("\nabstract machine: unsupported (%s)\n", M.Error.c_str());
  std::printf("That gap is the paper's \"enormous\" performance "
              "difference — see bench/bench_sumto for the\n"
              "native-lowered comparison reproducing the 10M-iteration "
              "numbers.\n");
  return 0;
}
