//===- levityd.cpp - The levity compile-and-run daemon --------------------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The multi-tenant server the driver stack was built toward: one shared
// Session (in-memory compilation cache + optional on-disk `.levc` store)
// behind the LEVP/1 line protocol (docs/SERVER.md).
//
//   levityd                         # REPL over stdin/stdout
//   levityd --socket /tmp/levity.sock   # Unix-domain socket daemon
//
// Try it interactively:
//
//   $ ./levityd
//   LEVP/1 COMPILE alice answer 64
//   square :: Int# -> Int# ; square x = x *# x ; answer = square 12#
//   LEVP/1 OK 17
//   outcome=front-end
//   LEVP/1 RUN alice answer bytecode
//   LEVP/1 OK 3
//   144
//   LEVP/1 STATS alice
//   ...
//   LEVP/1 SHUTDOWN
//   LEVP/1 BYE 13
//   shutting down
//
// examples/load_driver.cpp is the matching client; CI smoke-tests the
// daemon + load driver pair at 8 concurrent clients.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

using namespace levity;
using namespace levity::driver;
using namespace levity::server;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --socket PATH       listen on a Unix-domain socket (default:\n"
      "                      serve the LEVP/1 REPL on stdin/stdout)\n"
      "  --store DIR         on-disk artifact store (the L2 cache)\n"
      "  --workers N         session worker threads (0 = hardware)\n"
      "  --queue-depth N     admission cap on in-flight requests\n"
      "                      (0 = unbounded; default 128)\n"
      "  --default-fuel N    per-run step deadline when RUN names none\n"
      "  --cache N           LRU bound on cached compilations (0 = none)\n"
      "  --max-store-bytes N   on-disk store byte budget (0 = none)\n"
      "  --max-store-entries N on-disk store entry budget (0 = none)\n",
      Argv0);
  return 2;
}

bool parseSize(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int argc, char **argv) {
  ServerOptions Opts;
  std::string SocketPath;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t V = 0;
    const char *Val;
    if (Arg == "--socket" && (Val = Next())) {
      SocketPath = Val;
    } else if (Arg == "--store" && (Val = Next())) {
      Opts.Compile.StorePath = Val;
    } else if (Arg == "--workers" && (Val = Next()) && parseSize(Val, V)) {
      Opts.Compile.AsyncWorkers = static_cast<unsigned>(V);
    } else if (Arg == "--queue-depth" && (Val = Next()) &&
               parseSize(Val, V)) {
      Opts.MaxQueueDepth = static_cast<size_t>(V);
    } else if (Arg == "--default-fuel" && (Val = Next()) &&
               parseSize(Val, V)) {
      Opts.DefaultRunFuel = V;
    } else if (Arg == "--cache" && (Val = Next()) && parseSize(Val, V)) {
      Opts.Compile.MaxCachedCompilations = static_cast<size_t>(V);
    } else if (Arg == "--max-store-bytes" && (Val = Next()) &&
               parseSize(Val, V)) {
      Opts.Compile.MaxStoreBytes = V;
    } else if (Arg == "--max-store-entries" && (Val = Next()) &&
               parseSize(Val, V)) {
      Opts.Compile.MaxStoredArtifacts = static_cast<size_t>(V);
    } else {
      return usage(argv[0]);
    }
  }

  Server Srv(Opts);

  if (!SocketPath.empty()) {
    Result<bool> L = Srv.listenUnix(SocketPath);
    if (!L) {
      std::fprintf(stderr, "levityd: %s\n", L.error().c_str());
      return 1;
    }
    std::fprintf(stderr, "levityd: listening on %s (queue depth %zu)\n",
                 SocketPath.c_str(), Opts.MaxQueueDepth);
    Srv.waitForShutdown();
  } else {
    Srv.serveStream(std::cin, std::cout);
  }

  // A parting server-wide snapshot on stderr (stdout is the protocol).
  Request Stats;
  Stats.K = Request::Kind::Stats;
  Stats.Tenant = "*";
  std::fprintf(stderr, "levityd: final stats\n%s",
               Srv.handle(Stats).Payload.c_str());
  return 0;
}
