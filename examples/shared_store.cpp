//===- shared_store.cpp - Two processes sharing one compilation store -----===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The fleet story the on-disk store exists for, demonstrated (and
// CI-enforced) with two separate processes:
//
//   shared_store --populate <dir>   # process A: compile the whole
//                                   # differential corpus into <dir>
//   shared_store --consume <dir>    # process B: a *cold* process must
//                                   # compile the same corpus with 100%
//                                   # disk hits and ZERO front-end runs,
//                                   # then run every program on the
//                                   # abstract machine.
//
// The consume step exits non-zero unless Session::Stats reports
// DiskHits == corpus size and Compilations == 0 — compiling has
// collapsed to deserializing the `.levc` artifacts process A published.
// CMake registers both steps as a ctest fixture pair, so `ctest` runs
// the cross-process contract on every build (and CI has a dedicated
// job for it).
//
//===----------------------------------------------------------------------===//

#include "driver/Session.h"

// The example deliberately shares the test corpus so the two-process
// demo and the in-process differential/round-trip suites always cover
// the same programs.
#include "../tests/DifferentialCorpus.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace levity;
using namespace levity::driver;
using levity::testing::Corpus;
using levity::testing::CorpusProgram;
using levity::testing::CorpusSize;

namespace {

int fail(const char *Msg) {
  std::fprintf(stderr, "shared_store: FAIL: %s\n", Msg);
  return 1;
}

int populate(const std::string &Dir) {
  // Start from scratch so repeated runs are deterministic.
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);

  CompileOptions Opts;
  Opts.StorePath = Dir;
  Session S(Opts);
  for (const CorpusProgram &P : Corpus) {
    if (!S.compile(P.Source)->ok())
      return fail(P.Label);
  }
  S.flushStoreWrites(); // The hand-off barrier before process B starts.

  Session::Stats St = S.stats();
  std::printf("populate: %zu programs compiled, %llu store misses, "
              "store at %s\n",
              CorpusSize, static_cast<unsigned long long>(St.DiskMisses),
              Dir.c_str());
  return 0;
}

int consume(const std::string &Dir) {
  CompileOptions Opts;
  Opts.StorePath = Dir;
  Session S(Opts);

  size_t Ran = 0, Unsupported = 0;
  for (const CorpusProgram &P : Corpus) {
    auto Comp = S.compile(P.Source);
    if (!Comp->ok())
      return fail(P.Label);
    if (!Comp->hydrated())
      return fail((std::string(P.Label) + ": expected a disk hit").c_str());
    RunResult R = Comp->run(P.Global, Backend::AbstractMachine);
    if (P.InFragment && R.St == RunResult::Status::Unsupported)
      return fail((std::string(P.Label) + ": " + R.Error).c_str());
    if (!P.InFragment) {
      if (R.St != RunResult::Status::Unsupported)
        return fail((std::string(P.Label) +
                     ": out-of-fragment program must stay Unsupported")
                        .c_str());
      ++Unsupported;
    }
    ++Ran;
  }

  Session::Stats St = S.stats();
  std::printf("consume: %zu programs (%zu unsupported-by-design), "
              "disk hits %llu, disk misses %llu, front-end runs %llu\n",
              Ran, Unsupported,
              static_cast<unsigned long long>(St.DiskHits),
              static_cast<unsigned long long>(St.DiskMisses),
              static_cast<unsigned long long>(St.Compilations));

  // The acceptance contract: a cold process on a warm store compiles
  // the full corpus by deserialization alone.
  if (St.DiskHits != CorpusSize)
    return fail("expected 100% disk hits");
  if (St.DiskMisses != 0)
    return fail("expected zero disk misses");
  if (St.Compilations != 0)
    return fail("expected zero front-end runs in the cold process");
  std::printf("consume: OK — compiling collapsed to deserialization\n");
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc == 3 && std::strcmp(argv[1], "--populate") == 0)
    return populate(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "--consume") == 0)
    return consume(argv[2]);
  std::fprintf(stderr,
               "usage: %s --populate <store-dir> | --consume <store-dir>\n",
               argv[0]);
  return 2;
}
