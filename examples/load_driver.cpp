//===- load_driver.cpp - Multi-client load generator for levityd ----------===//
//
// Part of the levity project: a C++ reproduction of "Levity Polymorphism"
// (Eisenberg & Peyton Jones, PLDI 2017).
//
//===----------------------------------------------------------------------===//
//
// The client half of the server smoke story: N concurrent clients fire a
// deterministic cold/warm/run mix (with fuel-starved RUNs that must come
// back as typed TIMEOUTs) at a server and verify every answer against the
// workload's known values.
//
//   load_driver --inprocess --clients 8          # embedded Server
//   load_driver --socket /tmp/levity.sock --clients 64 --shutdown
//
// Exit status is the acceptance contract: nonzero when any answer was
// wrong, any frame was malformed, or any unexpected error came back —
// BUSY (admission control) and expected TIMEOUTs are part of normal
// operation and do not fail the run. CI runs the daemon + this driver at
// 8 clients in both the Release and TSan matrices.
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"
#include "server/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace levity;
using namespace levity::server;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--inprocess | --socket PATH) [options]\n"
      "  --clients N        concurrent clients (default 8)\n"
      "  --requests N       traffic requests per client (default 200)\n"
      "  --programs N       distinct workload programs (default 32)\n"
      "  --pipeline N       RUNs per pipelined batch (default 4)\n"
      "  --queue-depth N    admission cap (in-process server only)\n"
      "  --no-timeouts      skip the fuel-starved TIMEOUT traffic\n"
      "  --json             machine-readable report on stdout\n"
      "  --shutdown         send SHUTDOWN when done (socket mode)\n",
      Argv0);
  return 2;
}

bool parseSize(const char *S, size_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (End == S || *End != '\0')
    return false;
  Out = static_cast<size_t>(V);
  return true;
}

/// Owns a SocketClient for the factory's unique_ptr<Client> shape.
std::unique_ptr<Client> connectClient(const std::string &Path) {
  Result<std::unique_ptr<SocketClient>> C = SocketClient::connect(Path);
  if (!C) {
    std::fprintf(stderr, "load_driver: %s\n", C.error().c_str());
    return nullptr;
  }
  return std::move(*C);
}

} // namespace

int main(int argc, char **argv) {
  LoadOptions Load;
  std::string SocketPath;
  bool InProcess = false, Json = false, SendShutdown = false;
  size_t QueueDepth = 128;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    const char *Val;
    if (Arg == "--inprocess") {
      InProcess = true;
    } else if (Arg == "--socket" && (Val = Next())) {
      SocketPath = Val;
    } else if (Arg == "--clients" && (Val = Next()) &&
               parseSize(Val, Load.Clients)) {
    } else if (Arg == "--requests" && (Val = Next()) &&
               parseSize(Val, Load.RequestsPerClient)) {
    } else if (Arg == "--programs" && (Val = Next()) &&
               parseSize(Val, Load.Programs)) {
    } else if (Arg == "--pipeline" && (Val = Next()) &&
               parseSize(Val, Load.PipelineDepth)) {
    } else if (Arg == "--queue-depth" && (Val = Next()) &&
               parseSize(Val, QueueDepth)) {
    } else if (Arg == "--no-timeouts") {
      Load.TimeoutPeriod = 0;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--shutdown") {
      SendShutdown = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (InProcess == !SocketPath.empty())
    return usage(argv[0]); // Exactly one transport.

  LoadReport Report;
  if (InProcess) {
    ServerOptions SOpts;
    SOpts.MaxQueueDepth = QueueDepth;
    Server Srv(SOpts);
    Report = runLoad(
        [&](size_t) { return std::make_unique<InProcessClient>(Srv); },
        Load);
  } else {
    Report = runLoad(
        [&](size_t) { return connectClient(SocketPath); }, Load);
    if (SendShutdown) {
      if (std::unique_ptr<Client> Cl = connectClient(SocketPath)) {
        Request R;
        R.K = Request::Kind::Shutdown;
        Result<std::vector<Response>> Resp = Cl->exchange({R});
        if (!Resp || Resp->size() != 1 ||
            (*Resp)[0].St != Response::Status::Bye)
          ++Report.ProtocolErrors;
      } else {
        ++Report.ProtocolErrors;
      }
    }
  }

  std::printf("%s\n", formatReport(Report, Json).c_str());
  if (!Report.clean()) {
    std::fprintf(stderr, "load_driver: FAIL: wrong answers %llu, "
                         "protocol errors %llu, errors %llu\n",
                 static_cast<unsigned long long>(Report.WrongAnswers),
                 static_cast<unsigned long long>(Report.ProtocolErrors),
                 static_cast<unsigned long long>(Report.Errors));
    return 1;
  }
  return 0;
}
